#include "serve/server.hpp"

#include <algorithm>
#include <limits>

#include "device/backends.hpp"
#include "device/latency.hpp"
#include "net/framing.hpp"
#include "nn/checksum.hpp"
#include "nn/zoo.hpp"
#include "util/log.hpp"

namespace gauge::serve {

namespace {

// Poll cadence for loops that must notice shutdown while blocked on I/O.
constexpr std::chrono::milliseconds kIoTick{200};
// Budget for reading a request's length-framed payload and for writing a
// response to a slow client before the connection is declared poisoned.
constexpr std::chrono::milliseconds kPayloadDeadline{5000};
constexpr std::chrono::milliseconds kSendDeadline{2000};

Response err_response(const std::string& id, int code, std::string reason) {
  Response response;
  response.kind = Response::Kind::Err;
  response.id = id;
  response.code = code;
  response.reason = std::move(reason);
  return response;
}

// Measures latency(b) by actually running the interpreter, giving real-exec
// lanes a frontier driven by measured batch latencies instead of the
// analytic device model. One warm-up at batch 1, then one timed run per
// candidate batch.
BatchCurve measure_interpreter_curve(nn::Interpreter& interpreter,
                                     const nn::Graph& graph,
                                     const std::vector<int>& batches) {
  BatchCurve curve;
  bool warmed = false;
  for (int batch : batches) {
    auto inputs = nn::random_inputs(graph, /*seed=*/17, batch);
    if (!inputs.ok()) continue;
    if (!warmed) {
      (void)interpreter.run(inputs.value());
      warmed = true;
    }
    const auto start = std::chrono::steady_clock::now();
    auto outputs = interpreter.run(inputs.value());
    const double secs =
        std::chrono::duration<double>{std::chrono::steady_clock::now() - start}
            .count();
    if (!outputs.ok() || secs <= 0.0) continue;
    curve.batches.push_back(batch);
    curve.latency_s.push_back(secs);
    curve.throughput_ips.push_back(static_cast<double>(batch) / secs);
  }
  return curve;
}

}  // namespace

InferenceServer::InferenceServer(const ServeOptions& options)
    : options_{options},
      device_{device::make_device(options.device)},
      registry_{telemetry::current_registry()},
      epoch_{std::chrono::steady_clock::now()} {}

util::Result<std::unique_ptr<InferenceServer>> InferenceServer::start(
    const ServeOptions& options) {
  using R = util::Result<std::unique_ptr<InferenceServer>>;
  std::unique_ptr<InferenceServer> server{new InferenceServer{options}};
  if (auto status = server->init(); !status.ok()) {
    return R::failure(status.error());
  }
  return server;
}

util::Status InferenceServer::init() {
  if (options_.real_exec && options_.real_backend != "auto") {
    const auto parsed = nn::kernels::parse_exec_backend(options_.real_backend);
    if (!parsed) {
      return util::Status::failure("unknown exec backend: " +
                                   options_.real_backend);
    }
    fixed_exec_ = *parsed;
  }
  breaker_cooldown_ns_ = static_cast<std::uint64_t>(
      std::max(0.0, options_.breaker_cooldown_ms) * 1e6);
  if (!options_.fault_plan.empty()) {
    auto plan = parse_serve_fault_plan(options_.fault_plan);
    if (!plan.ok()) return util::Status::failure(plan.error());
    if (!plan.value().empty()) {
      faults_ = std::make_unique<ServeFaultInjector>(std::move(plan).take());
    }
  }
  auto names = options_.models.empty() ? nn::zoo_archetypes() : options_.models;
  for (const auto& name : names) {
    const auto& archetypes = nn::zoo_archetypes();
    if (std::find(archetypes.begin(), archetypes.end(), name) ==
        archetypes.end()) {
      return util::Status::failure("unknown zoo archetype: " + name);
    }
    nn::ZooSpec spec;
    spec.archetype = name;
    spec.name = name;
    auto entry = std::make_unique<ModelEntry>();
    entry->name = name;
    entry->graph = nn::build_model(spec);
    auto trace = nn::trace_model(entry->graph);
    if (!trace.ok()) {
      return util::Status::failure("trace failed for " + name + ": " +
                                   trace.error());
    }
    entry->trace = std::move(trace).take();
    entry->checksum = nn::model_checksum(entry->graph);
    entry->lanes.resize(static_cast<std::size_t>(device::Backend::kCount));
    if (options_.real_exec) {
      // One interpreter per exec backend the server can route to; a fixed
      // --real-backend needs only that one, "auto" needs all of them.
      entry->interpreters.resize(
          static_cast<std::size_t>(nn::kernels::ExecBackend::kCount));
      for (const auto exec : nn::kernels::exec_backends()) {
        if (fixed_exec_ && exec != *fixed_exec_) continue;
        entry->interpreters[static_cast<std::size_t>(exec)] =
            std::make_unique<nn::Interpreter>(entry->graph, 1, exec);
      }
    }
    entry->latency_ms =
        &registry_.histogram("gauge.serve.request_latency_ms." + name);
    entry->queue_ms = &registry_.histogram("gauge.serve.queue_ms." + name);
    entry->batch_size = &registry_.histogram("gauge.serve.batch_size." + name);
    entry->served = &registry_.counter("gauge.serve.served." + name);
    entry->queue_depth = &registry_.gauge("gauge.serve.queue_depth." + name);
    model_index_[name] = entry.get();
    model_names_.push_back(name);
    models_.push_back(std::move(entry));
  }
  if (models_.empty()) return util::Status::failure("no models to serve");

  requests_ = &registry_.counter("gauge.serve.requests");
  served_total_ = &registry_.counter("gauge.serve.served");
  shed_ = &registry_.counter("gauge.serve.shed");
  errors_ = &registry_.counter("gauge.serve.errors");
  deadline_miss_ = &registry_.counter("gauge.serve.deadline_miss");
  fallback_ = &registry_.counter("gauge.serve.fallback");
  batches_ = &registry_.counter("gauge.serve.batches");
  conn_rejected_ = &registry_.counter("gauge.serve.conn_rejected");
  connections_ = &registry_.gauge("gauge.serve.connections");
  breaker_opens_ = &registry_.counter("gauge.serve.breaker.opens");
  breaker_closes_ = &registry_.counter("gauge.serve.breaker.closes");
  breaker_fallback_ = &registry_.counter("gauge.serve.breaker.fallback");
  redispatched_ = &registry_.counter("gauge.serve.redispatched");
  watchdog_restarts_ = &registry_.counter("gauge.serve.watchdog.restarts");
  dropped_conns_ = &registry_.counter("gauge.serve.fault.dropped_conns");
  corrupt_frames_ = &registry_.counter("gauge.serve.fault.corrupt_frames");

  auto listener = net::TcpListener::bind(options_.port, options_.accept_backlog);
  if (!listener.ok()) return util::Status::failure(listener.error());
  port_ = listener.value().port();
  listener_.emplace(std::move(listener).take());

  pool_ = std::make_unique<nn::ThreadPool>(std::max(1u, options_.exec_threads));
  dispatch_thread_ = std::thread{[this] { dispatch_loop(); }};
  watchdog_thread_ = std::thread{[this] { watchdog_loop(); }};
  const unsigned workers = std::max(1u, options_.conn_workers);
  conn_threads_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    conn_threads_.emplace_back([this] { connection_loop(); });
  }
  accept_thread_ = std::thread{[this] { accept_loop(); }};
  return {};
}

InferenceServer::~InferenceServer() { shutdown(); }

std::uint64_t InferenceServer::now_ns() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void InferenceServer::accept_loop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    auto connection = listener_->accept_for(kIoTick);
    if (!connection.ok()) {
      if (!net::is_timeout(connection.error()) &&
          !stop_.load(std::memory_order_relaxed)) {
        util::log_warn("serve: accept failed: " + connection.error());
      }
      continue;
    }
    if (faults_ && faults_->drop_connection()) {
      // Injected connection drop: closed before a worker ever sees it; the
      // client observes a reset and reconnects through its retry policy.
      dropped_conns_->increment();
      continue;
    }
    {
      const std::lock_guard<std::mutex> lock{conn_mutex_};
      // A shallow pending queue: with every worker busy and a queue already
      // two deep per worker, new connections are better refused (closed)
      // than parked — the client's connect+deadline sees the failure fast.
      if (pending_conns_.size() >= conn_threads_.size() * 2) {
        conn_rejected_->increment();
        continue;  // connection drops as the stream goes out of scope
      }
      pending_conns_.push_back(std::move(connection).take());
    }
    conn_cv_.notify_one();
  }
}

void InferenceServer::connection_loop() {
  for (;;) {
    std::optional<net::TcpStream> stream;
    {
      std::unique_lock<std::mutex> lock{conn_mutex_};
      conn_cv_.wait(lock, [this] {
        return stop_.load(std::memory_order_relaxed) || !pending_conns_.empty();
      });
      if (pending_conns_.empty()) return;  // stop_ set and nothing pending
      stream.emplace(std::move(pending_conns_.front()));
      pending_conns_.pop_front();
    }
    connections_->add(1.0);
    serve_connection(*stream);
    connections_->add(-1.0);
  }
}

void InferenceServer::serve_connection(net::TcpStream& stream) {
  while (!stop_.load(std::memory_order_relaxed)) {
    auto line = stream.recv_line_for(kIoTick);
    if (!line.ok()) {
      if (net::is_timeout(line.error())) continue;  // idle; poll stop_
      // Peer gone. A clean close is normal; a mid-line close is a truncated
      // request frame and counts as a protocol error.
      if (line.error().rfind("truncated line", 0) == 0) errors_->increment();
      return;
    }
    auto request = parse_request(line.value());
    if (!request.ok()) {
      errors_->increment();
      const int code = request.error() == "payload_too_large" ? 413 : 400;
      (void)stream.send_line_for(
          format_response(err_response("0", code, request.error())),
          kSendDeadline);
      if (code == 413) return;  // cannot resync past an unread payload
      continue;
    }
    if (request.value().payload_bytes > 0) {
      // Input tensor as one shared-codec frame (net/framing.hpp). The
      // device-model executor does not interpret it, but it must decode —
      // magic, version, CRC — and match the announced size for the
      // connection to stay framed. Any framing failure (truncation,
      // corruption, version skew) poisons the connection: close it.
      auto payload =
          net::recv_frame_for(stream, kMaxPayloadBytes, kPayloadDeadline);
      if (!payload.ok()) {
        errors_->increment();
        return;
      }
      if (faults_ && faults_->corrupt_frame()) {
        // Injected frame corruption: poisoned exactly as a CRC failure —
        // the connection closes, the request is never admitted.
        corrupt_frames_->increment();
        errors_->increment();
        return;
      }
      if (payload.value().size() != request.value().payload_bytes) {
        // A well-framed payload of the wrong size is a protocol error, but
        // the stream is still in sync — answer and keep serving.
        errors_->increment();
        (void)stream.send_line_for(
            format_response(
                err_response(request.value().id, 400, "payload_mismatch")),
            kSendDeadline);
        continue;
      }
    }
    switch (request.value().verb) {
      case Request::Verb::Ping: {
        Response pong;
        pong.kind = Response::Kind::Pong;
        if (!stream.send_line_for(format_response(pong), kSendDeadline).ok())
          return;
        break;
      }
      case Request::Verb::Stats: {
        Response stats;
        stats.kind = Response::Kind::Stats;
        stats.requests = static_cast<std::uint64_t>(requests_->value());
        stats.served = static_cast<std::uint64_t>(served_total_->value());
        stats.shed = static_cast<std::uint64_t>(shed_->value());
        stats.errors = static_cast<std::uint64_t>(errors_->value());
        {
          // Lane health triples: breaker state + in-flight batches for
          // every lane that has seen traffic.
          const std::lock_guard<std::mutex> lock{mutex_};
          const std::uint64_t now = now_ns();
          for (const auto& entry : models_) {
            for (const auto& lane : entry->lanes) {
              if (!lane) continue;
              LaneHealth health;
              health.model = entry->name;
              health.backend = device::backend_name(lane->backend);
              health.state = breaker_state_name(lane->breaker.state(now));
              health.inflight =
                  static_cast<std::uint64_t>(lane->queue.inflight());
              stats.lanes.push_back(std::move(health));
            }
          }
        }
        if (!stream.send_line_for(format_response(stats), kSendDeadline).ok())
          return;
        break;
      }
      case Request::Verb::Quit:
        return;
      case Request::Verb::Infer: {
        const Response response = handle_infer(request.value());
        if (!stream.send_line_for(format_response(response), kSendDeadline)
                 .ok()) {
          return;
        }
        break;
      }
    }
  }
}

nn::kernels::ExecBackend InferenceServer::exec_backend_of(
    device::Backend backend) const {
  return fixed_exec_ ? *fixed_exec_ : device::exec_backend_for(backend);
}

nn::Interpreter* InferenceServer::interpreter_for(
    ModelEntry& entry, device::Backend backend) const {
  const auto idx = static_cast<std::size_t>(exec_backend_of(backend));
  if (idx >= entry.interpreters.size()) return nullptr;
  return entry.interpreters[idx].get();
}

InferenceServer::Lane& InferenceServer::lane_locked(ModelEntry& entry,
                                                    device::Backend backend) {
  auto& slot = entry.lanes[static_cast<std::size_t>(backend)];
  if (!slot) {
    const auto candidates = candidate_batches(std::max(1, options_.max_batch));
    BatchCurve curve;
    double time_scale = options_.time_scale;
    nn::Interpreter* interpreter =
        options_.real_exec ? interpreter_for(entry, backend) : nullptr;
    if (interpreter) {
      // Real execution: drive the frontier with measured interpreter batch
      // latencies (one-time cost on lane creation). exec_mutex keeps the
      // measurement from racing a concurrent batch; execute() never holds it
      // while taking mutex_, so the mutex_ -> exec_mutex order is safe.
      const std::lock_guard<std::mutex> exec_lock{entry.exec_mutex};
      curve = measure_interpreter_curve(*interpreter, entry.graph, candidates);
      time_scale = 1.0;  // measured seconds already are wall seconds
    }
    if (curve.batches.empty()) {
      device::RunConfig base;
      base.threads = device::ThreadConfig{options_.device_threads, 0};
      base.backend = backend;
      curve = measure_batch_curve(device_, entry.trace, base, entry.checksum,
                                  candidates);
      time_scale = options_.time_scale;
    }
    auto frontier = choose_frontier(curve, options_.default_slo_ms, time_scale,
                                    options_.max_batch);
    BreakerConfig breaker_config;
    breaker_config.failure_threshold = std::max(1, options_.breaker_threshold);
    breaker_config.cooldown_ns = breaker_cooldown_ns_;
    breaker_config.probe_successes = std::max(1, options_.breaker_probes);
    slot = std::make_unique<Lane>(backend, std::move(frontier),
                                  options_.queue_capacity, breaker_config);
    const std::string backend_label = device::backend_name(backend);
    slot->breaker_state = &registry_.gauge("gauge.serve.breaker.state." +
                                           entry.name + "." + backend_label);
    slot->batches =
        &registry_.counter("gauge.serve.lane.batches." + backend_label);
    slot->failures =
        &registry_.counter("gauge.serve.lane.failures." + backend_label);
  }
  return *slot;
}

std::uint64_t InferenceServer::watchdog_budget_ns(const Lane& lane,
                                                  int batch) const {
  if (options_.watchdog_budget_ms > 0) {
    return static_cast<std::uint64_t>(options_.watchdog_budget_ms * 1e6);
  }
  // Auto: well past the frontier's expected wall latency plus scheduling
  // slack, so only a genuinely wedged executor trips it.
  return 4 * lane.queue.frontier().latency_ns_at(batch) + 100'000'000ull;
}

void InferenceServer::record_lane_failure_locked(Lane& lane,
                                                 std::uint64_t now) {
  const std::uint64_t opens_before = lane.breaker.opens();
  lane.breaker.record_failure(now);
  if (lane.breaker.opens() != opens_before) {
    breaker_opens_->increment();
    // Fresh open: brownout — inflate admission estimates until the
    // half-open probe can re-establish the lane's capacity.
    brownout_until_ns_ =
        std::max(brownout_until_ns_, now + breaker_cooldown_ns_);
  }
  sync_breaker_gauge_locked(lane, now);
}

void InferenceServer::record_lane_success_locked(Lane& lane,
                                                 std::uint64_t now) {
  const std::uint64_t closes_before = lane.breaker.closes();
  lane.breaker.record_success(now);
  if (lane.breaker.closes() != closes_before) breaker_closes_->increment();
  sync_breaker_gauge_locked(lane, now);
}

void InferenceServer::sync_breaker_gauge_locked(Lane& lane,
                                                std::uint64_t now) {
  if (lane.breaker_state) {
    lane.breaker_state->set(
        static_cast<double>(static_cast<int>(lane.breaker.state(now))));
  }
}

void InferenceServer::redispatch_locked(ModelEntry& entry, Lane& failed_lane,
                                        const std::vector<Ticket>& tickets,
                                        std::vector<PendingVerdict>* verdicts) {
  std::vector<Ticket> fresh;
  fresh.reserve(tickets.size());
  for (const Ticket& ticket : tickets) {
    if (ticket.retried) {
      // Second failure: the error is this request's one verdict.
      auto it = waiters_.find(ticket.id);
      if (it != waiters_.end()) {
        verdicts->emplace_back(std::move(it->second), ticket);
        waiters_.erase(it);
      }
      continue;
    }
    Ticket moved = ticket;
    moved.retried = true;
    moved.fallback =
        moved.fallback || failed_lane.backend != device::Backend::CpuFp32;
    fresh.push_back(moved);
  }
  if (fresh.empty()) return;
  Lane& cpu = lane_locked(entry, device::Backend::CpuFp32);
  cpu.queue.requeue(fresh);
  redispatched_->increment(static_cast<std::int64_t>(fresh.size()));
  entry.queue_depth->set(static_cast<double>(cpu.queue.depth()));
}

Response InferenceServer::handle_infer(const Request& request) {
  requests_->increment();
  const auto it = model_index_.find(request.model);
  if (it == model_index_.end()) {
    errors_->increment();
    return err_response(request.id, 404, "unknown_model");
  }
  ModelEntry& entry = *it->second;

  device::Backend requested = device::Backend::CpuFp32;
  if (!request.backend.empty()) {
    const auto parsed = parse_backend(request.backend);
    if (!parsed) {
      errors_->increment();
      return err_response(request.id, 400, "unknown_backend");
    }
    requested = *parsed;
  }
  const bool availability_fallback =
      !device::backend_available(requested, device_);
  const device::Backend resolved =
      availability_fallback ? device::Backend::CpuFp32 : requested;
  if (availability_fallback) fallback_->increment();

  const std::uint64_t enqueue_ns = now_ns();
  const double deadline_ms = request.deadline_ms > 0 ? request.deadline_ms
                                                     : options_.default_slo_ms;
  const std::uint64_t deadline_ns =
      enqueue_ns + static_cast<std::uint64_t>(deadline_ms * 1e6);

  const std::uint64_t ticket_id =
      next_ticket_.fetch_add(1, std::memory_order_relaxed);
  auto waiter = std::make_shared<Waiter>();
  std::future<BatchResult> future = waiter->promise.get_future();
  bool breaker_fallback = false;
  {
    const std::lock_guard<std::mutex> lock{mutex_};
    if (stopping_) return err_response(request.id, 503, "shutting_down");
    Lane* lane = &lane_locked(entry, resolved);
    bool probe = false;
    if (!lane->breaker.allow(enqueue_ns, &probe)) {
      // Lane breaker open: route around the dead backend onto the CPU
      // reference lane; with no healthy alternative, brownout-shed with a
      // hint for when the cooldown elapses.
      sync_breaker_gauge_locked(*lane, enqueue_ns);
      Lane* cpu = resolved != device::Backend::CpuFp32
                      ? &lane_locked(entry, device::Backend::CpuFp32)
                      : nullptr;
      if (cpu != nullptr && cpu->breaker.allow(enqueue_ns, &probe)) {
        breaker_fallback = true;
        breaker_fallback_->increment();
        fallback_->increment();
        lane = cpu;
      } else {
        shed_->increment();
        Response response;
        response.kind = Response::Kind::Shed;
        response.id = request.id;
        response.code = 429;
        response.depth = lane->queue.depth();
        std::uint64_t until = lane->breaker.open_until_ns();
        if (cpu != nullptr) until = std::max(until, cpu->breaker.open_until_ns());
        response.retry_after_ms = until > enqueue_ns
                                      ? (until - enqueue_ns + 999'999) / 1'000'000
                                      : 1;
        response.est_wait_us = response.retry_after_ms * 1000;
        return response;
      }
    }
    const double pressure = enqueue_ns < brownout_until_ns_
                                ? std::max(1.0, options_.brownout_factor)
                                : 1.0;
    const auto admission = lane->queue.offer(
        enqueue_ns, {ticket_id, enqueue_ns, deadline_ns}, pressure);
    if (!admission.accepted) {
      // A granted half-open probe that is shed never executed: release the
      // probe slot so the next request can claim it.
      if (probe) lane->breaker.cancel_probe();
      shed_->increment();
      Response response;
      response.kind = Response::Kind::Shed;
      response.id = request.id;
      response.code = 429;
      response.est_wait_us = admission.est_wait_ns / 1000;
      response.depth = lane->queue.depth();
      std::uint64_t retry_ms = admission.est_wait_ns / 1'000'000;
      if (brownout_until_ns_ > enqueue_ns) {
        retry_ms = std::max(retry_ms,
                            (brownout_until_ns_ - enqueue_ns) / 1'000'000);
      }
      response.retry_after_ms = std::max<std::uint64_t>(1, retry_ms);
      return response;
    }
    waiters_[ticket_id] = waiter;
    entry.queue_depth->set(static_cast<double>(lane->queue.depth()));
  }
  cv_.notify_all();

  // The executor always fulfils accepted tickets (shutdown drains the
  // queues through it); the long stop is pure defence against a wedged
  // pool, after which the waiter is withdrawn so nothing dangles.
  const auto wait_budget =
      std::chrono::milliseconds{static_cast<std::int64_t>(deadline_ms)} +
      std::chrono::seconds{30};
  if (future.wait_for(wait_budget) != std::future_status::ready) {
    const std::lock_guard<std::mutex> lock{mutex_};
    if (future.wait_for(std::chrono::seconds{0}) != std::future_status::ready) {
      waiters_.erase(ticket_id);
      errors_->increment();
      return err_response(request.id, 503, "exec_timeout");
    }
  }
  const BatchResult result = future.get();
  if (!result.status.ok()) {
    errors_->increment();
    return err_response(request.id, 500, "exec_failed");
  }

  const std::uint64_t done_ns = now_ns();
  const std::uint64_t total_ns = done_ns - enqueue_ns;
  const std::uint64_t queue_ns =
      total_ns > result.infer_ns ? total_ns - result.infer_ns : 0;
  entry.latency_ms->observe(static_cast<double>(total_ns) * 1e-6);
  entry.queue_ms->observe(static_cast<double>(queue_ns) * 1e-6);
  entry.served->increment();
  served_total_->increment();
  if (done_ns > deadline_ns) deadline_miss_->increment();

  Response response;
  response.kind = Response::Kind::Ok;
  response.id = request.id;
  response.model = entry.name;
  response.backend = device::backend_name(result.backend);
  response.fallback = availability_fallback || breaker_fallback ||
                      result.cpu_fallback || result.fallback;
  response.retried = result.retried;
  response.batch = result.batch;
  response.queue_us = queue_ns / 1000;
  response.infer_us = result.infer_ns / 1000;
  response.total_us = total_ns / 1000;
  return response;
}

std::uint64_t InferenceServer::collect_due_locked(
    std::uint64_t now, std::vector<Launch>* launches) {
  std::uint64_t next = std::numeric_limits<std::uint64_t>::max();
  for (const auto& entry : models_) {
    for (const auto& lane : entry->lanes) {
      if (!lane) continue;
      for (;;) {
        auto tickets = lane->queue.pop_due(now);
        if (tickets.empty()) break;
        lane->queue.note_batch_start();
        Launch launch{next_launch_.fetch_add(1, std::memory_order_relaxed),
                      entry.get(), lane.get(), std::move(tickets)};
        watchdog_.note_start(
            launch.id, now,
            watchdog_budget_ns(*lane,
                               static_cast<int>(launch.tickets.size())));
        inflight_[launch.id] = launch;  // the watchdog may need the tickets
        launches->push_back(std::move(launch));
      }
      next = std::min(next, lane->queue.next_flush_ns());
      entry->queue_depth->set(static_cast<double>(lane->queue.depth()));
    }
  }
  return next;
}

void InferenceServer::dispatch_loop() {
  std::unique_lock<std::mutex> lock{mutex_};
  for (;;) {
    std::vector<Launch> launches;
    const std::uint64_t next = collect_due_locked(now_ns(), &launches);
    if (!launches.empty()) {
      lock.unlock();
      for (auto& launch : launches) {
        // With 0 pool workers submit() runs inline, which is why the lock
        // must not be held here.
        pool_->submit(
            [this, launch = std::move(launch)] { execute(launch); });
      }
      lock.lock();
      cv_.notify_all();  // wake the watchdog: new deadlines registered
      continue;
    }
    if (stopping_) {
      // Tickets queued but not yet due stay behind; shutdown() drains them
      // through the executor after this thread is joined.
      return;
    }
    if (next == std::numeric_limits<std::uint64_t>::max()) {
      cv_.wait(lock);
    } else {
      cv_.wait_until(lock, epoch_ + std::chrono::nanoseconds{next});
    }
  }
}

void InferenceServer::execute(const Launch& launch) {
  ModelEntry& entry = *launch.entry;
  const int batch = static_cast<int>(launch.tickets.size());
  BatchResult result;
  result.backend = launch.lane->backend;
  result.batch = batch;

  // Chaos seam (DESIGN.md §16): consulted exactly once per batch, before it
  // runs, so a given plan always fails the same batches.
  ServeFaultInjector::ExecFault fault;
  if (faults_) fault = faults_->on_batch(entry.name, launch.lane->backend);
  if (fault.stall_ms > 0) {
    // A wedged executor: sleep past the watchdog budget, then carry on —
    // the late result is discarded by the first-finisher claim below.
    std::this_thread::sleep_for(
        std::chrono::duration<double>{fault.stall_ms * 1e-3});
  }

  const std::uint64_t start_ns = now_ns();
  std::string exec_label = "device-model";
  if (fault.fail) {
    result.status = util::Status::failure(fault.reason);
  } else if (options_.real_exec) {
    exec_label =
        nn::kernels::exec_backend_name(exec_backend_of(launch.lane->backend));
    const std::lock_guard<std::mutex> exec_lock{entry.exec_mutex};
    nn::Interpreter* interpreter =
        interpreter_for(entry, launch.lane->backend);
    auto inputs = nn::random_inputs(entry.graph, /*seed=*/start_ns, batch);
    if (!interpreter) {
      result.status = util::Status::failure("no interpreter for backend");
    } else if (!inputs.ok()) {
      result.status = util::Status::failure(inputs.error());
    } else if (auto outputs = interpreter->run(inputs.value());
               !outputs.ok()) {
      result.status = util::Status::failure(outputs.error());
    }
  } else {
    device::RunConfig config;
    config.threads = device::ThreadConfig{options_.device_threads, 0};
    config.backend = launch.lane->backend;
    config.batch = batch;
    const auto run =
        device::simulate_inference(device_, entry.trace, config, entry.checksum);
    result.cpu_fallback = run.cpu_fallback;
    if (options_.time_scale > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double>{
          run.latency_s * options_.time_scale});
    }
  }
  result.infer_ns = now_ns() - start_ns;

  std::vector<PendingVerdict> verdicts;
  verdicts.reserve(launch.tickets.size());
  {
    const std::lock_guard<std::mutex> lock{mutex_};
    if (!watchdog_.note_done(launch.id)) {
      // The watchdog expired this launch and already recovered its tickets;
      // the late result is discarded (exactly one verdict per request).
      return;
    }
    inflight_.erase(launch.id);
    launch.lane->queue.note_batch_done();
    if (launch.lane->batches) launch.lane->batches->increment();
    const std::uint64_t now = now_ns();
    if (result.status.ok()) {
      record_lane_success_locked(*launch.lane, now);
      for (const Ticket& ticket : launch.tickets) {
        auto it = waiters_.find(ticket.id);
        if (it == waiters_.end()) continue;  // requester gave up
        verdicts.emplace_back(std::move(it->second), ticket);
        waiters_.erase(it);
      }
    } else {
      if (launch.lane->failures) launch.lane->failures->increment();
      record_lane_failure_locked(*launch.lane, now);
      redispatch_locked(entry, *launch.lane, launch.tickets, &verdicts);
    }
  }
  if (result.status.ok()) {
    batches_->increment();
    registry_.counter("gauge.serve.exec." + exec_label).increment();
    entry.batch_size->observe(static_cast<double>(batch));
  }
  for (auto& [waiter, ticket] : verdicts) {
    BatchResult verdict = result;
    verdict.retried = ticket.retried;
    verdict.fallback = ticket.fallback;
    waiter->promise.set_value(verdict);
  }
  cv_.notify_all();
}

void InferenceServer::watchdog_loop() {
  std::unique_lock<std::mutex> lock{mutex_};
  while (!stopping_) {
    const std::uint64_t now = now_ns();
    const auto expired = watchdog_.expired(now);
    if (!expired.empty()) {
      std::vector<PendingVerdict> verdicts;
      for (const std::uint64_t id : expired) {
        auto it = inflight_.find(id);
        if (it == inflight_.end()) continue;
        Launch launch = std::move(it->second);
        inflight_.erase(it);
        // Restart the lane executor: the wedged pool task keeps running,
        // but note_done() will tell it the launch was abandoned and its
        // late result is discarded. Accounting and the tickets move on now.
        launch.lane->queue.note_batch_done();
        if (launch.lane->batches) launch.lane->batches->increment();
        if (launch.lane->failures) launch.lane->failures->increment();
        watchdog_restarts_->increment();
        record_lane_failure_locked(*launch.lane, now);
        brownout_until_ns_ =
            std::max(brownout_until_ns_, now + breaker_cooldown_ns_);
        redispatch_locked(*launch.entry, *launch.lane, launch.tickets,
                          &verdicts);
      }
      cv_.notify_all();  // redispatched tickets sit at a queue front
      if (!verdicts.empty()) {
        lock.unlock();
        BatchResult failed;
        failed.status = util::Status::failure("watchdog_restart");
        for (auto& [waiter, ticket] : verdicts) {
          BatchResult verdict = failed;
          verdict.retried = ticket.retried;
          verdict.fallback = ticket.fallback;
          waiter->promise.set_value(verdict);
        }
        lock.lock();
      }
      continue;
    }
    const std::uint64_t next = watchdog_.next_deadline_ns();
    if (next == std::numeric_limits<std::uint64_t>::max()) {
      cv_.wait_for(lock, std::chrono::milliseconds{200});
    } else {
      cv_.wait_until(lock, epoch_ + std::chrono::nanoseconds{next});
    }
  }
}

void InferenceServer::shutdown() {
  // exchange() makes the stop idempotent even when a destructor races an
  // explicit shutdown() — only one caller tears down.
  if (joined_.exchange(true)) return;
  {
    const std::lock_guard<std::mutex> lock{mutex_};
    stopping_ = true;
  }
  stop_.store(true, std::memory_order_relaxed);
  cv_.notify_all();
  conn_cv_.notify_all();
  if (accept_thread_.joinable()) accept_thread_.join();
  if (dispatch_thread_.joinable()) dispatch_thread_.join();
  // The watchdog joins before the drain: from here on the executor always
  // wins the finisher claim, so a restart can never race the drain's
  // accounting.
  if (watchdog_thread_.joinable()) watchdog_thread_.join();
  // Run every batch the dispatcher already handed to the pool to
  // completion. A batch failing in here redispatches its fresh tickets
  // back onto the CPU queue — never lost, never double-answered — which is
  // why the drain below loops until the queues stay empty.
  pool_.reset();
  // Drain: anything still queued — leftovers the dispatcher never flushed
  // plus tickets redispatched by failing batches — executes inline until
  // every accepted request has its verdict. Terminates because a
  // redispatched ticket never redispatches again.
  for (;;) {
    std::vector<Launch> launches;
    {
      const std::lock_guard<std::mutex> lock{mutex_};
      const std::uint64_t now = now_ns();
      for (const auto& entry : models_) {
        for (const auto& lane : entry->lanes) {
          if (!lane) continue;
          auto tickets = lane->queue.drain();
          const auto full = static_cast<std::size_t>(
              std::max(1, lane->queue.frontier().batch));
          for (std::size_t i = 0; i < tickets.size(); i += full) {
            const auto end = std::min(tickets.size(), i + full);
            lane->queue.note_batch_start();
            Launch launch{
                next_launch_.fetch_add(1, std::memory_order_relaxed),
                entry.get(), lane.get(),
                {tickets.begin() + static_cast<std::ptrdiff_t>(i),
                 tickets.begin() + static_cast<std::ptrdiff_t>(end)}};
            // No watchdog thread any more: register with an effectively
            // infinite budget so execute()'s claim always succeeds.
            watchdog_.note_start(
                launch.id, now,
                std::numeric_limits<std::uint64_t>::max() - now);
            inflight_[launch.id] = launch;
            launches.push_back(std::move(launch));
          }
        }
      }
    }
    if (launches.empty()) break;
    for (const auto& launch : launches) execute(launch);
  }
  conn_cv_.notify_all();
  for (auto& thread : conn_threads_) {
    if (thread.joinable()) thread.join();
  }
  listener_.reset();
}

}  // namespace gauge::serve
