// SLO accounting for the inference service: the server records every
// request into the telemetry registry (metric names below), and this module
// renders the registry back into the service-level report printed at
// shutdown and asserted by scripts/check.sh.
//
// Metric names (DESIGN.md §11):
//   gauge.serve.requests / served / shed / errors / deadline_miss /
//     fallback / batches / conn_rejected            (counters)
//   gauge.serve.exec.<backend>                      (counter per batch, the
//     executor that ran it: device-model | reference | optimised | quantised)
//   gauge.serve.served.<model>                      (counter per model)
//   gauge.serve.queue_depth.<model>                 (gauge)
//   gauge.serve.connections                         (gauge)
//   gauge.serve.request_latency_ms.<model>          (histogram, wall)
//   gauge.serve.queue_ms.<model>                    (histogram, wall)
//   gauge.serve.batch_size.<model>                  (histogram)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/metrics.hpp"

namespace gauge::serve {

inline constexpr const char* kLatencyHistogramPrefix =
    "gauge.serve.request_latency_ms.";

struct ModelSlo {
  std::string model;
  std::uint64_t served = 0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double mean_ms = 0.0;
  double mean_batch = 0.0;
};

struct ExecSlo {
  std::string backend;  // device-model | reference | optimised | quantised
  std::int64_t batches = 0;
};

struct SloSummary {
  std::vector<ModelSlo> models;  // name-sorted
  std::vector<ExecSlo> exec;     // execution backends that ran batches
  std::int64_t requests = 0;
  std::int64_t served = 0;
  std::int64_t shed = 0;
  std::int64_t errors = 0;
  std::int64_t deadline_miss = 0;
  std::int64_t fallbacks = 0;
  std::int64_t batches = 0;
};

SloSummary summarize_slo(const telemetry::MetricsRegistry& registry);

// One "SLO model=..." line per served model plus a closing "SLO total ..."
// line; stable key=value tokens so scripts can grep and parse them.
std::string slo_report(const telemetry::MetricsRegistry& registry);

}  // namespace gauge::serve
