// SLO accounting for the inference service: the server records every
// request into the telemetry registry (metric names below), and this module
// renders the registry back into the service-level report printed at
// shutdown and asserted by scripts/check.sh.
//
// Metric names (DESIGN.md §11, availability additions §16):
//   gauge.serve.requests / served / shed / errors / deadline_miss /
//     fallback / batches / conn_rejected            (counters)
//   gauge.serve.exec.<backend>                      (counter per batch, the
//     executor that ran it: device-model | reference | optimised | quantised)
//   gauge.serve.served.<model>                      (counter per model)
//   gauge.serve.queue_depth.<model>                 (gauge)
//   gauge.serve.connections                         (gauge)
//   gauge.serve.request_latency_ms.<model>          (histogram, wall)
//   gauge.serve.queue_ms.<model>                    (histogram, wall)
//   gauge.serve.batch_size.<model>                  (histogram)
// Availability (chaos recovery, DESIGN.md §16):
//   gauge.serve.breaker.opens / closes / fallback   (counters)
//   gauge.serve.breaker.state.<model>.<backend>     (gauge: 0 closed,
//     1 open, 2 half_open)
//   gauge.serve.redispatched                        (tickets re-queued onto
//     the CPU lane after a mid-batch failure)
//   gauge.serve.watchdog.restarts                   (stalled lane executors
//     abandoned and restarted)
//   gauge.serve.fault.dropped_conns / corrupt_frames (injected faults)
//   gauge.serve.lane.batches.<backend> /
//   gauge.serve.lane.failures.<backend>             (per-backend error rates)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/metrics.hpp"

namespace gauge::serve {

inline constexpr const char* kLatencyHistogramPrefix =
    "gauge.serve.request_latency_ms.";

struct ModelSlo {
  std::string model;
  std::uint64_t served = 0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double mean_ms = 0.0;
  double mean_batch = 0.0;
};

struct ExecSlo {
  std::string backend;  // device-model | reference | optimised | quantised
  std::int64_t batches = 0;
};

// Per device-backend lane outcomes (CPU, GPU, SNPE-DSP, ...): how many
// batches each backend ran and how many failed or stalled — the per-backend
// error rates of the availability report.
struct BackendSlo {
  std::string backend;
  std::int64_t batches = 0;
  std::int64_t failures = 0;
};

struct SloSummary {
  std::vector<ModelSlo> models;  // name-sorted
  std::vector<ExecSlo> exec;     // execution backends that ran batches
  std::vector<BackendSlo> lanes; // device backends that saw traffic
  std::int64_t requests = 0;
  std::int64_t served = 0;
  std::int64_t shed = 0;
  std::int64_t errors = 0;
  std::int64_t deadline_miss = 0;
  std::int64_t fallbacks = 0;
  std::int64_t batches = 0;
  // Availability counters (chaos recovery, DESIGN.md §16).
  std::int64_t breaker_opens = 0;
  std::int64_t breaker_closes = 0;
  std::int64_t breaker_fallbacks = 0;
  std::int64_t redispatched = 0;
  std::int64_t watchdog_restarts = 0;
};

SloSummary summarize_slo(const telemetry::MetricsRegistry& registry);

// One "SLO model=..." line per served model plus a closing "SLO total ..."
// line; stable key=value tokens so scripts can grep and parse them.
std::string slo_report(const telemetry::MetricsRegistry& registry);

}  // namespace gauge::serve
