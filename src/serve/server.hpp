// gaugenn_serve's engine (DESIGN.md §11): a TCP inference service over the
// net::socket layer that loads a nn::zoo population at startup and answers
// the line/length-framed protocol of serve/protocol.hpp.
//
// Request path: connection worker parses the line → per-request backend
// resolution (requested device::Backend, falling back to the CPU reference
// profile when backend_available says no) → admission control against the
// (model, backend) lane's BatchQueue (bounded queue, 429-style SHED once
// the estimated queue delay overruns the request deadline) → the dispatcher
// thread coalesces tickets up to the Fig. 11-derived frontier and executes
// whole batches on the nn::ThreadPool → the worker answers with queue/infer
// timings. Every request lands in the telemetry registry (serve/slo.hpp
// names the metrics), and slo_report() renders the shutdown SLO lines.
//
// Execution is the analytic device latency model by default (batch latency
// scaled into wall time by `time_scale`, slept on the pool — deterministic
// and device-faithful); `real_exec` runs the interpreter instead.
//
// Chaos hardening (DESIGN.md §16): a deterministic ServeFaultPlan can kill
// a backend mid-batch, stall a lane, fail an inference, drop a connection
// or corrupt a payload frame. The recovery machinery it validates: a
// per-(model, backend) circuit breaker (serve/health.hpp) gating admission,
// mid-batch redispatch of a failed batch's tickets onto the CPU-fallback
// lane (once, marked `retried=1`), a lane watchdog that abandons stalled
// batch executions and re-queues their tickets, and brownout admission
// (inflated wait estimates + `retry_after_ms` hints) while a breaker is
// open or a watchdog restart is fresh. Every accepted request receives
// exactly one verdict under any plan.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "device/soc.hpp"
#include "net/socket.hpp"
#include "nn/graph.hpp"
#include "nn/interp.hpp"
#include "nn/threadpool.hpp"
#include "nn/trace.hpp"
#include "serve/batch.hpp"
#include "serve/fault.hpp"
#include "serve/health.hpp"
#include "serve/protocol.hpp"
#include "telemetry/metrics.hpp"
#include "util/result.hpp"

namespace gauge::serve {

struct ServeOptions {
  std::uint16_t port = 0;          // 0 = ephemeral
  std::string device = "S21";      // Table 1 device the service emulates
  std::vector<std::string> models; // zoo archetypes to load; empty = all
  int max_batch = 8;               // 1 disables coalescing
  std::size_t queue_capacity = 256;  // per-lane admission bound
  double default_slo_ms = 250.0;   // deadline for requests that send none
  int device_threads = 4;          // RunConfig thread count for the model
  unsigned exec_threads = 4;       // nn::ThreadPool executing batches
  unsigned conn_workers = 32;      // concurrent connections served
  int accept_backlog = 64;         // kernel accept-queue bound
  // Simulated seconds → wall seconds for the default (device-model)
  // executor. 0 makes execution instantaneous (unit tests).
  double time_scale = 0.05;
  bool real_exec = false;          // run the interpreter instead
  // Interpreter execution backend for real_exec: "auto" mirrors each lane's
  // device backend via device::exec_backend_for; otherwise a fixed
  // nn::kernels backend name (reference | optimised | quantised).
  std::string real_backend = "auto";
  // Lane health & chaos recovery (DESIGN.md §16).
  int breaker_threshold = 3;         // consecutive failures that open a lane
  double breaker_cooldown_ms = 500;  // open → half-open probe delay (wall)
  int breaker_probes = 1;            // half-open successes that re-close
  double watchdog_budget_ms = 0;     // batch completion budget; 0 = auto
  double brownout_factor = 2.0;      // admission estimate inflation under
                                     // breaker-open / watchdog pressure
  std::string fault_plan;            // serve/fault.hpp grammar; "" = none
};

class InferenceServer {
 public:
  // Binds, loads the model population and starts all threads. The returned
  // server records into the telemetry registry that was current at start().
  static util::Result<std::unique_ptr<InferenceServer>> start(
      const ServeOptions& options);
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  std::uint16_t port() const { return port_; }
  const std::vector<std::string>& model_names() const { return model_names_; }

  // Stops accepting, drains queued requests through the executor, joins all
  // threads. Idempotent; the destructor calls it.
  void shutdown();

 private:
  struct BatchResult {
    util::Status status;
    device::Backend backend = device::Backend::CpuFp32;
    bool cpu_fallback = false;
    bool retried = false;   // ticket was redispatched after a batch failure
    bool fallback = false;  // redispatch moved it to a different backend
    int batch = 1;
    std::uint64_t infer_ns = 0;
  };

  struct Waiter {
    std::promise<BatchResult> promise;
  };

  struct Lane {
    device::Backend backend = device::Backend::CpuFp32;
    BatchQueue queue;
    CircuitBreaker breaker;
    // Cached instruments (registry lookups are mutex-guarded maps).
    telemetry::Gauge* breaker_state = nullptr;
    telemetry::Counter* batches = nullptr;
    telemetry::Counter* failures = nullptr;
    Lane(device::Backend backend, Frontier frontier, std::size_t capacity,
         const BreakerConfig& breaker_config)
        : backend{backend},
          queue{std::move(frontier), capacity},
          breaker{breaker_config} {}
  };

  struct ModelEntry {
    std::string name;
    nn::Graph graph;
    nn::ModelTrace trace;
    std::string checksum;
    // Lanes indexed by backend enum value, created on first use (mutex_).
    std::vector<std::unique_ptr<Lane>> lanes;
    // real_exec only: one interpreter per nn::kernels::ExecBackend (index =
    // enum value), created at init for every backend the server can route to.
    std::vector<std::unique_ptr<nn::Interpreter>> interpreters;
    std::mutex exec_mutex;  // serialises interpreter use
    // Cached instruments (registry lookups are mutex-guarded maps).
    telemetry::Histogram* latency_ms = nullptr;
    telemetry::Histogram* queue_ms = nullptr;
    telemetry::Histogram* batch_size = nullptr;
    telemetry::Counter* served = nullptr;
    telemetry::Gauge* queue_depth = nullptr;
  };

  struct Launch {
    std::uint64_t id = 0;  // watchdog / in-flight registry key
    ModelEntry* entry = nullptr;
    Lane* lane = nullptr;
    std::vector<Ticket> tickets;
  };

  // A waiter pulled out of waiters_ under mutex_, fulfilled after unlock.
  using PendingVerdict = std::pair<std::shared_ptr<Waiter>, Ticket>;

  explicit InferenceServer(const ServeOptions& options);

  util::Status init();
  std::uint64_t now_ns() const;

  void accept_loop();
  void connection_loop();
  void serve_connection(net::TcpStream& stream);
  Response handle_infer(const Request& request);
  void dispatch_loop();
  void watchdog_loop();
  // Pops every due batch (marking them in-flight, registering it with the
  // watchdog) and reports the earliest future flush time. Caller holds
  // mutex_.
  std::uint64_t collect_due_locked(std::uint64_t now,
                                   std::vector<Launch>* launches);
  void execute(const Launch& launch);
  Lane& lane_locked(ModelEntry& entry, device::Backend backend);
  // Watchdog completion budget for a batch on this lane.
  std::uint64_t watchdog_budget_ns(const Lane& lane, int batch) const;
  // Breaker bookkeeping: records the outcome, mirrors the state gauge, and
  // (on a fresh open) starts a brownout window. Caller holds mutex_.
  void record_lane_failure_locked(Lane& lane, std::uint64_t now);
  void record_lane_success_locked(Lane& lane, std::uint64_t now);
  void sync_breaker_gauge_locked(Lane& lane, std::uint64_t now);
  // Mid-batch recovery: fresh tickets of a failed batch are re-queued once
  // onto the CPU-fallback lane (marked retried/fallback); already-retried
  // tickets get their error verdict appended to *verdicts. Caller holds
  // mutex_; the caller fulfils *verdicts after unlocking.
  void redispatch_locked(ModelEntry& entry, Lane& failed_lane,
                         const std::vector<Ticket>& tickets,
                         std::vector<PendingVerdict>* verdicts);
  // Interpreter exec backend serving a lane (fixed override or auto map).
  nn::kernels::ExecBackend exec_backend_of(device::Backend backend) const;
  nn::Interpreter* interpreter_for(ModelEntry& entry,
                                   device::Backend backend) const;

  ServeOptions options_;
  std::optional<nn::kernels::ExecBackend> fixed_exec_;
  device::Device device_;
  telemetry::MetricsRegistry& registry_;
  std::chrono::steady_clock::time_point epoch_;

  std::optional<net::TcpListener> listener_;
  std::uint16_t port_ = 0;

  std::vector<std::unique_ptr<ModelEntry>> models_;
  std::map<std::string, ModelEntry*> model_index_;
  std::vector<std::string> model_names_;

  std::unique_ptr<nn::ThreadPool> pool_;

  // Deterministic chaos seam; null when no --fault-plan was given.
  std::unique_ptr<ServeFaultInjector> faults_;

  // Dispatch state: lanes, waiters, the watchdog and the stopping flag share
  // one mutex so admission, flush, recovery and drain decisions are
  // serialised.
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::map<std::uint64_t, std::shared_ptr<Waiter>> waiters_;
  std::atomic<std::uint64_t> next_ticket_{1};
  std::atomic<std::uint64_t> next_launch_{1};
  // Launches handed to the pool but not yet claimed by a finisher. The
  // watchdog and the executor race to claim (LaneWatchdog::note_done /
  // expired); whoever wins owns the tickets' verdicts.
  std::map<std::uint64_t, Launch> inflight_;
  LaneWatchdog watchdog_;
  std::uint64_t brownout_until_ns_ = 0;
  std::uint64_t breaker_cooldown_ns_ = 0;

  // Accepted connections waiting for a worker.
  std::mutex conn_mutex_;
  std::condition_variable conn_cv_;
  std::deque<net::TcpStream> pending_conns_;

  std::atomic<bool> stop_{false};
  std::thread accept_thread_;
  std::thread dispatch_thread_;
  std::thread watchdog_thread_;
  std::vector<std::thread> conn_threads_;
  std::atomic<bool> joined_{false};

  // Cached global instruments.
  telemetry::Counter* requests_ = nullptr;
  telemetry::Counter* served_total_ = nullptr;
  telemetry::Counter* shed_ = nullptr;
  telemetry::Counter* errors_ = nullptr;
  telemetry::Counter* deadline_miss_ = nullptr;
  telemetry::Counter* fallback_ = nullptr;
  telemetry::Counter* batches_ = nullptr;
  telemetry::Counter* conn_rejected_ = nullptr;
  telemetry::Gauge* connections_ = nullptr;
  // Availability instruments (DESIGN.md §16).
  telemetry::Counter* breaker_opens_ = nullptr;
  telemetry::Counter* breaker_closes_ = nullptr;
  telemetry::Counter* breaker_fallback_ = nullptr;
  telemetry::Counter* redispatched_ = nullptr;
  telemetry::Counter* watchdog_restarts_ = nullptr;
  telemetry::Counter* dropped_conns_ = nullptr;
  telemetry::Counter* corrupt_frames_ = nullptr;
};

}  // namespace gauge::serve
