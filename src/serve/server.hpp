// gaugenn_serve's engine (DESIGN.md §11): a TCP inference service over the
// net::socket layer that loads a nn::zoo population at startup and answers
// the line/length-framed protocol of serve/protocol.hpp.
//
// Request path: connection worker parses the line → per-request backend
// resolution (requested device::Backend, falling back to the CPU reference
// profile when backend_available says no) → admission control against the
// (model, backend) lane's BatchQueue (bounded queue, 429-style SHED once
// the estimated queue delay overruns the request deadline) → the dispatcher
// thread coalesces tickets up to the Fig. 11-derived frontier and executes
// whole batches on the nn::ThreadPool → the worker answers with queue/infer
// timings. Every request lands in the telemetry registry (serve/slo.hpp
// names the metrics), and slo_report() renders the shutdown SLO lines.
//
// Execution is the analytic device latency model by default (batch latency
// scaled into wall time by `time_scale`, slept on the pool — deterministic
// and device-faithful); `real_exec` runs the interpreter instead.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "device/soc.hpp"
#include "net/socket.hpp"
#include "nn/graph.hpp"
#include "nn/interp.hpp"
#include "nn/threadpool.hpp"
#include "nn/trace.hpp"
#include "serve/batch.hpp"
#include "serve/protocol.hpp"
#include "telemetry/metrics.hpp"
#include "util/result.hpp"

namespace gauge::serve {

struct ServeOptions {
  std::uint16_t port = 0;          // 0 = ephemeral
  std::string device = "S21";      // Table 1 device the service emulates
  std::vector<std::string> models; // zoo archetypes to load; empty = all
  int max_batch = 8;               // 1 disables coalescing
  std::size_t queue_capacity = 256;  // per-lane admission bound
  double default_slo_ms = 250.0;   // deadline for requests that send none
  int device_threads = 4;          // RunConfig thread count for the model
  unsigned exec_threads = 4;       // nn::ThreadPool executing batches
  unsigned conn_workers = 32;      // concurrent connections served
  int accept_backlog = 64;         // kernel accept-queue bound
  // Simulated seconds → wall seconds for the default (device-model)
  // executor. 0 makes execution instantaneous (unit tests).
  double time_scale = 0.05;
  bool real_exec = false;          // run the interpreter instead
  // Interpreter execution backend for real_exec: "auto" mirrors each lane's
  // device backend via device::exec_backend_for; otherwise a fixed
  // nn::kernels backend name (reference | optimised | quantised).
  std::string real_backend = "auto";
};

class InferenceServer {
 public:
  // Binds, loads the model population and starts all threads. The returned
  // server records into the telemetry registry that was current at start().
  static util::Result<std::unique_ptr<InferenceServer>> start(
      const ServeOptions& options);
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  std::uint16_t port() const { return port_; }
  const std::vector<std::string>& model_names() const { return model_names_; }

  // Stops accepting, drains queued requests through the executor, joins all
  // threads. Idempotent; the destructor calls it.
  void shutdown();

 private:
  struct BatchResult {
    util::Status status;
    device::Backend backend = device::Backend::CpuFp32;
    bool cpu_fallback = false;
    int batch = 1;
    std::uint64_t infer_ns = 0;
  };

  struct Waiter {
    std::promise<BatchResult> promise;
  };

  struct Lane {
    device::Backend backend = device::Backend::CpuFp32;
    BatchQueue queue;
    Lane(device::Backend backend, Frontier frontier, std::size_t capacity)
        : backend{backend}, queue{std::move(frontier), capacity} {}
  };

  struct ModelEntry {
    std::string name;
    nn::Graph graph;
    nn::ModelTrace trace;
    std::string checksum;
    // Lanes indexed by backend enum value, created on first use (mutex_).
    std::vector<std::unique_ptr<Lane>> lanes;
    // real_exec only: one interpreter per nn::kernels::ExecBackend (index =
    // enum value), created at init for every backend the server can route to.
    std::vector<std::unique_ptr<nn::Interpreter>> interpreters;
    std::mutex exec_mutex;  // serialises interpreter use
    // Cached instruments (registry lookups are mutex-guarded maps).
    telemetry::Histogram* latency_ms = nullptr;
    telemetry::Histogram* queue_ms = nullptr;
    telemetry::Histogram* batch_size = nullptr;
    telemetry::Counter* served = nullptr;
    telemetry::Gauge* queue_depth = nullptr;
  };

  struct Launch {
    ModelEntry* entry = nullptr;
    Lane* lane = nullptr;
    std::vector<Ticket> tickets;
  };

  explicit InferenceServer(const ServeOptions& options);

  util::Status init();
  std::uint64_t now_ns() const;

  void accept_loop();
  void connection_loop();
  void serve_connection(net::TcpStream& stream);
  Response handle_infer(const Request& request);
  void dispatch_loop();
  // Pops every due batch (marking them in-flight) and reports the earliest
  // future flush time. Caller holds mutex_.
  std::uint64_t collect_due_locked(std::uint64_t now,
                                   std::vector<Launch>* launches);
  void execute(const Launch& launch);
  Lane& lane_locked(ModelEntry& entry, device::Backend backend);
  // Interpreter exec backend serving a lane (fixed override or auto map).
  nn::kernels::ExecBackend exec_backend_of(device::Backend backend) const;
  nn::Interpreter* interpreter_for(ModelEntry& entry,
                                   device::Backend backend) const;

  ServeOptions options_;
  std::optional<nn::kernels::ExecBackend> fixed_exec_;
  device::Device device_;
  telemetry::MetricsRegistry& registry_;
  std::chrono::steady_clock::time_point epoch_;

  std::optional<net::TcpListener> listener_;
  std::uint16_t port_ = 0;

  std::vector<std::unique_ptr<ModelEntry>> models_;
  std::map<std::string, ModelEntry*> model_index_;
  std::vector<std::string> model_names_;

  std::unique_ptr<nn::ThreadPool> pool_;

  // Dispatch state: lanes, waiters and the stopping flag share one mutex so
  // admission, flush and drain decisions are serialised.
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::map<std::uint64_t, std::shared_ptr<Waiter>> waiters_;
  std::atomic<std::uint64_t> next_ticket_{1};

  // Accepted connections waiting for a worker.
  std::mutex conn_mutex_;
  std::condition_variable conn_cv_;
  std::deque<net::TcpStream> pending_conns_;

  std::atomic<bool> stop_{false};
  std::thread accept_thread_;
  std::thread dispatch_thread_;
  std::vector<std::thread> conn_threads_;
  bool joined_ = false;

  // Cached global instruments.
  telemetry::Counter* requests_ = nullptr;
  telemetry::Counter* served_total_ = nullptr;
  telemetry::Counter* shed_ = nullptr;
  telemetry::Counter* errors_ = nullptr;
  telemetry::Counter* deadline_miss_ = nullptr;
  telemetry::Counter* fallback_ = nullptr;
  telemetry::Counter* batches_ = nullptr;
  telemetry::Counter* conn_rejected_ = nullptr;
  telemetry::Gauge* connections_ = nullptr;
};

}  // namespace gauge::serve
