// Shared plumbing for the bench binaries: one crawled snapshot per process
// (memoised), plus small formatting helpers. Every bench prints the rows or
// series of one paper table/figure; see DESIGN.md's per-experiment index.
#pragma once

#include <cstdio>

#include "core/analysis.hpp"
#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "core/runtime.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace gauge::bench {

inline const android::PlayStore& play_store() {
  static const android::PlayStore kStore{android::StoreConfig{}};
  return kStore;
}

inline const core::SnapshotDataset& snapshot21() {
  static const core::SnapshotDataset kDataset =
      core::run_pipeline(play_store(), {});
  return kDataset;
}

inline const core::SnapshotDataset& snapshot20() {
  static const core::SnapshotDataset kDataset = [] {
    core::PipelineOptions options;
    options.snapshot = android::Snapshot::Feb2020;
    return core::run_pipeline(play_store(), options);
  }();
  return kDataset;
}

// Quantile row of an ECDF for the textual figures (p10/25/50/75/90).
inline std::vector<std::string> ecdf_quantiles(std::vector<double> sample,
                                               int precision = 2) {
  util::Ecdf ecdf{std::move(sample)};
  std::vector<std::string> out;
  for (double q : {0.10, 0.25, 0.50, 0.75, 0.90}) {
    out.push_back(util::Table::num(ecdf.quantile(q), precision));
  }
  return out;
}

inline void print_header(const char* experiment, const char* paper_claim) {
  std::printf("=============================================================\n");
  std::printf("%s\n", experiment);
  std::printf("paper: %s\n", paper_claim);
  std::printf("=============================================================\n");
}

}  // namespace gauge::bench
