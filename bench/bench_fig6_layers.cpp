// Fig. 6 — model layer composition per input modality.
#include "bench/common.hpp"

int main() {
  using namespace gauge;
  bench::print_header(
      "Fig. 6: layer composition per input modality",
      "convolutions dominate (34%/10%/20% of image/text/audio layers); "
      "dense layers concentrate in audio (19%) and text (9%); depthwise "
      "convolutions appear mostly in image models");

  util::print_section(
      "Op-family share of layers per modality",
      core::fig6_layer_composition(bench::snapshot21()).render());

  // Focused view of the paper's headline rows.
  const auto& data = bench::snapshot21();
  std::map<std::string, std::map<std::string, std::int64_t>> counts;
  std::map<std::string, std::int64_t> totals;
  for (const auto& model : data.models) {
    const std::string modality = nn::modality_name(model.modality);
    for (const auto& [family, count] : model.op_family_counts()) {
      counts[modality][family] += count;
      totals[modality] += count;
    }
  }
  util::Table headline{{"modality", "conv share", "depth_conv share",
                        "dense share", "activation share"}};
  for (const char* modality : {"image", "text", "audio"}) {
    if (!totals.count(modality)) continue;
    auto share = [&](const char* family) {
      return util::Table::pct(
          static_cast<double>(counts[modality][family]) /
          static_cast<double>(totals[modality]));
    };
    headline.add_row({modality, share("conv"), share("depth_conv"),
                      share("dense"), share("activation")});
  }
  util::print_section("Headline families", headline.render());
  return 0;
}
