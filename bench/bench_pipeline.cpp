// End-to-end pipeline throughput: the same ML-heavy category slice crawled
// serially, with 1/2/4/8 worker threads, and sharded over 2/4 forked worker
// processes (the coordinator/worker cluster, DESIGN.md §15). Reports
// apps/sec and models/sec per configuration plus the speedup over the serial
// baseline, and emits one machine-readable JSON row per configuration.
// Scaling is bounded by the host's core count (a single-core container shows
// ~1.0x by construction); the dataset is verified identical across all
// configurations either way.
#include "bench/common.hpp"

#include <chrono>
#include <string>
#include <vector>

#include "util/strings.hpp"

int main() {
  using namespace gauge;
  bench::print_header(
      "Pipeline throughput: parallel crawl -> extract -> analyse",
      "app-granular fan-out with a once-only analysis cache; identical "
      "dataset at any thread or worker count");

  core::PipelineOptions base;
  base.categories = {"communication", "finance", "photography", "social"};

  const auto run_once = [&](unsigned threads, unsigned workers) {
    auto options = base;
    options.threads = threads;
    options.workers = workers;
    if (workers > 0) options.worker_launcher = core::process_worker_launcher();
    const auto start = std::chrono::steady_clock::now();
    auto data = core::run_pipeline(bench::play_store(), options);
    const auto stop = std::chrono::steady_clock::now();
    const double seconds =
        std::chrono::duration<double>(stop - start).count();
    return std::pair{std::move(data), seconds};
  };

  // Warm the store's model-file cache so serialisation cost does not favour
  // whichever configuration runs first. Worker processes are forked after
  // this, so they inherit the warm cache too.
  (void)run_once(0, 0);

  const auto [serial, serial_s] = run_once(0, 0);
  const double serial_apps_ps = static_cast<double>(serial.apps.size()) / serial_s;

  util::Table table{{"threads", "workers", "seconds", "apps/sec", "models/sec",
                     "speedup", "identical"}};
  std::vector<std::string> json_rows;
  const auto report = [&](const char* label, unsigned workers,
                          const core::SnapshotDataset& data, double seconds) {
    const bool identical =
        data.apps.size() == serial.apps.size() &&
        data.models.size() == serial.models.size() &&
        data.model_docs.query().to_jsonl() ==
            serial.model_docs.query().to_jsonl() &&
        data.app_docs.query().to_jsonl() == serial.app_docs.query().to_jsonl();
    const double apps_ps = static_cast<double>(data.apps.size()) / seconds;
    const double models_ps = static_cast<double>(data.models.size()) / seconds;
    const double speedup = apps_ps / serial_apps_ps;
    table.add_row({label, std::to_string(workers), util::Table::num(seconds, 3),
                   util::Table::num(apps_ps, 1), util::Table::num(models_ps, 1),
                   util::Table::num(speedup, 2), identical ? "yes" : "NO"});
    json_rows.push_back(util::format(
        "{\"bench\":\"pipeline\",\"threads\":\"%s\",\"workers\":%u,"
        "\"seconds\":%.4f,\"apps_per_sec\":%.2f,\"models_per_sec\":%.2f,"
        "\"speedup\":%.3f,\"identical\":%s}",
        label, workers, seconds, apps_ps, models_ps, speedup,
        identical ? "true" : "false"));
  };

  report("serial", 0, serial, serial_s);
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    const auto [data, seconds] = run_once(threads, 0);
    report(std::to_string(threads).c_str(), 0, data, seconds);
  }
  // The cluster axis: forked worker processes, two analysis threads each.
  for (unsigned workers : {2u, 4u}) {
    const auto [data, seconds] = run_once(2, workers);
    report("2", workers, data, seconds);
  }

  util::print_section("Throughput by thread and worker count", table.render());
  for (const auto& row : json_rows) std::printf("%s\n", row.c_str());
  return 0;
}
