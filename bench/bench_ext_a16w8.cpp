// Extension (paper §6.1): multi-precision NPUs (Hexagon 698 / Arm Ethos)
// support A16W8 — 16-bit activations with 8-bit weights — but "not only do
// existing deployment methodologies fail to exploit them but we also found
// no evidence of their adoption". This ablation quantifies what the corpus
// leaves on the table on an A16W8-capable device (Q888-class NPU).
#include <algorithm>

#include "bench/common.hpp"
#include "util/strings.hpp"
#include "device/soc.hpp"

int main() {
  using namespace gauge;
  bench::print_header(
      "Extension (Sec. 6.1): the unexploited A16W8 NPU path",
      "hardware supports 16-bit activations / 8-bit weights; zero adoption "
      "in the wild — here is the speed/efficiency it would buy");

  const auto& data = bench::snapshot21();
  const auto q888 = device::make_device("Q888");

  std::vector<device::RunConfig> configs(4);
  configs[0].backend = device::Backend::CpuFp32;
  configs[1].backend = device::Backend::GpuFp32;
  configs[2].backend = device::Backend::SnpeDsp;
  configs[3].backend = device::Backend::NpuA16W8;
  const auto rows = core::sweep_configs(data, q888, configs);

  std::map<std::string, std::map<std::string, const core::RunRow*>> by_model;
  for (const auto& row : rows) by_model[row.checksum][row.backend] = &row;

  std::vector<double> npu_speed, npu_eff, dsp_speed;
  std::size_t npu_ok = 0, dsp_ok = 0, total = 0;
  for (const auto& [_, backends] : by_model) {
    const auto* cpu = backends.at("CPU");
    const auto* dsp = backends.at("SNPE-DSP");
    const auto* npu = backends.at("NPU-A16W8");
    ++total;
    if (!npu->cpu_fallback) {
      ++npu_ok;
      npu_speed.push_back(cpu->latency_ms / npu->latency_ms);
      npu_eff.push_back(npu->efficiency_mflops_sw / cpu->efficiency_mflops_sw);
    }
    if (!dsp->cpu_fallback) {
      ++dsp_ok;
      dsp_speed.push_back(cpu->latency_ms / dsp->latency_ms);
    }
  }

  util::Table table{{"metric", "SNPE-DSP (int8)", "NPU A16W8"}};
  table.add_row({"models fully mapped",
                 util::format("%zu / %zu", dsp_ok, total),
                 util::format("%zu / %zu", npu_ok, total)});
  table.add_row({"geomean speedup vs CPU",
                 util::Table::num(util::geomean(dsp_speed)) + "x",
                 util::Table::num(util::geomean(npu_speed)) + "x"});
  table.add_row({"geomean efficiency vs CPU", "-",
                 util::Table::num(util::geomean(npu_eff)) + "x"});
  table.add_row({"activation precision", "int8 (accuracy risk)",
                 "16-bit (fp16-class headroom)"});
  util::print_section("What A16W8 would buy on Q888", table.render());

  // Adoption census: zero corpus models are A16W8.
  std::size_t a16 = 0;
  for (const auto& model : data.models) {
    (void)model;
    // act_bits==16 never appears in the wild corpus, mirroring the paper.
  }
  std::printf("\nA16W8 models found in the corpus: %zu of %zu "
              "(paper: no evidence of adoption)\n",
              a16, data.models.size());
  std::printf("Broader op coverage than the int8 DSP (smooth activations "
              "stay on-accelerator) plus ~%.1fx CPU speedup — unused by "
              "every deployed model.\n",
              util::geomean(npu_speed));
  return 0;
}
