// Fig. 12 — throughput vs thread count (2/4/8) and core affinity (2a2, 4a4,
// 4a2, 8a4) per phone, with the time-sharing ablation DESIGN.md calls out.
#include <algorithm>
#include <array>
#include <cmath>

#include "bench/common.hpp"
#include "device/sched.hpp"
#include "device/soc.hpp"

int main() {
  using namespace gauge;
  bench::print_header(
      "Fig. 12: throughput vs threads and affinity",
      "optimal threads differ per device (A20: 4, A70: 2, S21: 4); 8 "
      "threads collapse; oversubscribed pinning (4a2, 8a4) degrades badly; "
      "matching pinning (4a4, 2a2) is no win; tuned settings gain up to 2x");

  const auto& data = bench::snapshot21();
  const std::vector<device::ThreadConfig> setups = {
      {2, 0}, {4, 0}, {8, 0}, {2, 2}, {4, 4}, {4, 2}, {8, 4}};

  util::Table table{{"device", "2", "4", "8", "2a2", "4a4", "4a2", "8a4",
                     "best/default gain"}};
  for (const auto& dev : device::phones()) {
    std::vector<device::RunConfig> configs;
    for (const auto& setup : setups) {
      device::RunConfig config;
      config.threads = setup;
      configs.push_back(config);
    }
    const auto rows = core::sweep_configs(data, dev, configs);
    std::map<std::string, std::vector<double>> tput;
    for (const auto& row : rows) {
      tput[row.thread_label].push_back(row.throughput_ips);
    }
    std::vector<std::string> cells{dev.name};
    double best = 0.0;
    for (const auto& setup : setups) {
      const double g = util::geomean(tput[setup.label()]);
      best = std::max(best, g);
      cells.push_back(util::Table::num(g, 1));
    }
    const double default4 = util::geomean(tput["4"]);
    cells.push_back(util::Table::num(best / default4) + "x");
    table.add_row(std::move(cells));
  }
  util::print_section("Geomean throughput (inferences/s) per setup",
                      table.render());

  // Ablation: the 4a2/8a4 degradation exists because of time-sharing; show
  // the raw scheduler throughput with and without oversubscription.
  util::Table ablation{{"device", "sched GFLOPS 4", "sched GFLOPS 4a2",
                        "penalty"}};
  for (const auto& dev : device::phones()) {
    const double g4 = device::schedule(dev, {4, 0}).effective_gflops;
    const double g4a2 = device::schedule(dev, {4, 2}).effective_gflops;
    ablation.add_row({dev.name, util::Table::num(g4, 1),
                      util::Table::num(g4a2, 1),
                      util::Table::pct(1.0 - g4a2 / g4)});
  }
  util::print_section("Ablation: time-sharing cost of oversubscription",
                      ablation.render());
  return 0;
}
