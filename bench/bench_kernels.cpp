// Microbenchmark of the kernel engine (DESIGN.md §13): times every zoo
// archetype through the interpreter under each selectable execution backend
// (reference / optimised / quantised) and prints one machine-readable JSON
// row per configuration — arch, dtype, backend, threads, ms, MFLOP/s and
// the speedup over the scalar reference backend. A closing
// "measured_vs_model" row compares the measured optimised latency against
// the S21 roofline device model so the two latency sources stay visibly
// anchored to each other.
//
//   bench_kernels [--res N] [--arch NAME] [--threads a,b] [--iters N]
//
// --res 224 runs the vision archetypes at the paper's 224-px input (the
// acceptance shape for the >=3x conv/GEMM speedup claim); default is 64 so
// the full matrix stays fast enough for CI.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "device/latency.hpp"
#include "device/soc.hpp"
#include "nn/checksum.hpp"
#include "nn/interp.hpp"
#include "nn/kernels/kernels.hpp"
#include "nn/trace.hpp"
#include "nn/zoo.hpp"
#include "util/strings.hpp"

namespace {

using namespace gauge;

struct Timing {
  double ms = 0.0;
  bool ok = false;
};

// Times `interp.run` on `graph`: one warm-up pass (also triggers lazy page
// faults on the packed panels), then up to `max_iters` timed passes or
// ~0.5 s of wall clock, whichever comes first. The reference backend at
// 224 px takes seconds per pass, so callers cap its iterations low.
Timing time_interpreter(const nn::Graph& graph, unsigned threads,
                        nn::kernels::ExecBackend backend, int max_iters) {
  Timing timing;
  nn::Interpreter interp{graph, threads, backend};
  const auto inputs = nn::random_inputs(graph, 42);
  if (!inputs.ok()) return timing;
  if (!interp.run(inputs.value()).ok()) return timing;  // warm-up
  double total_s = 0.0;
  int iters = 0;
  while (iters < max_iters && (iters == 0 || total_s < 0.5)) {
    const auto start = std::chrono::steady_clock::now();
    const auto out = interp.run(inputs.value());
    const auto end = std::chrono::steady_clock::now();
    if (!out.ok()) return timing;
    total_s += std::chrono::duration<double>{end - start}.count();
    ++iters;
  }
  timing.ms = total_s / static_cast<double>(iters) * 1e3;
  timing.ok = timing.ms > 0.0;
  return timing;
}

void print_row(const std::string& arch, int res, const char* dtype,
               nn::kernels::ExecBackend backend, unsigned threads,
               const Timing& timing, double flops, double reference_ms) {
  if (!timing.ok) return;
  const double mflops_s = flops / 1e6 / (timing.ms / 1e3);
  std::string row = util::format(
      "{\"bench\":\"kernels\",\"arch\":\"%s\",\"res\":%d,\"dtype\":\"%s\","
      "\"backend\":\"%s\",\"threads\":%u,\"ms\":%.4f,\"mflops_s\":%.1f",
      arch.c_str(), res, dtype, nn::kernels::exec_backend_name(backend),
      threads, timing.ms, mflops_s);
  if (reference_ms > 0.0) {
    row += util::format(",\"speedup_vs_reference\":%.2f",
                        reference_ms / timing.ms);
  }
  row += "}";
  std::printf("JSON %s\n", row.c_str());
}

int usage() {
  std::fprintf(stderr,
               "usage: bench_kernels [--res N] [--arch NAME] "
               "[--threads a,b] [--iters N]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gauge;
  namespace kernels = nn::kernels;

  int res = 64;
  int max_iters = 8;
  std::string only_arch;
  std::vector<unsigned> thread_counts{1, 4};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--res") == 0 && i + 1 < argc) {
      const auto parsed = util::parse_double(argv[++i]);
      if (!parsed || *parsed < 1) return usage();
      res = static_cast<int>(*parsed);
    } else if (std::strcmp(argv[i], "--arch") == 0 && i + 1 < argc) {
      only_arch = argv[++i];
    } else if (std::strcmp(argv[i], "--iters") == 0 && i + 1 < argc) {
      const auto parsed = util::parse_double(argv[++i]);
      if (!parsed || *parsed < 1) return usage();
      max_iters = static_cast<int>(*parsed);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      thread_counts.clear();
      for (const auto& token : util::split(argv[++i], ',')) {
        const auto parsed = util::parse_double(token);
        if (!parsed || *parsed < 1) return usage();
        thread_counts.push_back(static_cast<unsigned>(*parsed));
      }
    } else {
      return usage();
    }
  }

  std::printf("Kernel engine microbenchmarks (res=%d)\n", res);

  // (archetype, resolution): vision archetypes follow --res, the text /
  // audio / sensor ones keep their natural input sizes.
  const std::vector<std::pair<std::string, int>> models{
      {"mobilenet", res}, {"unet", res},     {"fssd", res},
      {"audiocnn", 32},   {"sensormlp", 16}, {"wordrnn", 16}};

  double mobilenet_optimised_ms = 0.0;
  for (const auto& [arch, model_res] : models) {
    if (!only_arch.empty() && arch != only_arch) continue;
    nn::ZooSpec spec;
    spec.archetype = arch;
    spec.resolution = model_res;
    spec.seed = 7;
    const nn::Graph graph = nn::build_model(spec);
    const auto trace = nn::trace_model(graph);
    const double flops =
        trace.ok() ? static_cast<double>(trace.value().total_flops) : 0.0;

    for (const unsigned threads : thread_counts) {
      // The scalar reference pass is the denominator of every speedup
      // column; cap it at two timed iterations so 224-px runs stay sane.
      const auto reference =
          time_interpreter(graph, threads, kernels::ExecBackend::Reference,
                           std::min(max_iters, 2));
      print_row(arch, model_res, "f32", kernels::ExecBackend::Reference,
                threads, reference, flops, 0.0);
      for (const auto backend : {kernels::ExecBackend::Optimised,
                                 kernels::ExecBackend::Quantised}) {
        const auto timing =
            time_interpreter(graph, threads, backend, max_iters);
        print_row(arch, model_res, "f32", backend, threads, timing, flops,
                  reference.ms);
        if (arch == "mobilenet" && threads == 1 &&
            backend == kernels::ExecBackend::Optimised && timing.ok) {
          mobilenet_optimised_ms = timing.ms;
        }
      }
    }

    // True int8 activation path: the quantised-stem variant runs its first
    // conv on int8 tensors (i8 x i8 -> i32 accumulate + requantise).
    const nn::Graph stem = nn::with_quantized_stem(graph);
    for (const auto backend : {kernels::ExecBackend::Reference,
                               kernels::ExecBackend::Quantised}) {
      const int iters = backend == kernels::ExecBackend::Reference
                            ? std::min(max_iters, 2)
                            : max_iters;
      const auto timing = time_interpreter(stem, 1, backend, iters);
      print_row(arch, model_res, "int8", backend, 1, timing, flops, 0.0);
    }
  }

  // Anchor the measured optimised path to the roofline device model: the
  // simulated S21 CpuFp32 latency for mobilenet vs what we just measured.
  if (mobilenet_optimised_ms > 0.0) {
    nn::ZooSpec spec;
    spec.archetype = "mobilenet";
    spec.resolution = res;
    spec.seed = 7;
    const nn::Graph graph = nn::build_model(spec);
    const auto trace = nn::trace_model(graph);
    if (trace.ok()) {
      for (const auto& dev : device::phones()) {
        if (dev.name != "S21") continue;
        device::RunConfig config;
        config.threads = {1, 0};
        config.backend = device::Backend::CpuFp32;
        const auto sim = device::simulate_inference(
            dev, trace.value(), config, nn::model_checksum(graph));
        std::printf(
            "JSON {\"bench\":\"measured_vs_model\",\"arch\":\"mobilenet\","
            "\"res\":%d,\"device\":\"S21\",\"measured_ms\":%.4f,"
            "\"model_ms\":%.4f,\"ratio\":%.2f}\n",
            res, mobilenet_optimised_ms, sim.latency_s * 1e3,
            mobilenet_optimised_ms / (sim.latency_s * 1e3));
      }
    }
  }
  return 0;
}
