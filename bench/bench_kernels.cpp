// google-benchmark microbenchmarks of the inference interpreter kernels —
// the substrate every example actually executes. Not a paper figure; kept
// for regression tracking of the executing path.
#include <benchmark/benchmark.h>

#include "nn/interp.hpp"
#include "nn/trace.hpp"
#include "nn/zoo.hpp"

namespace {

using namespace gauge;

nn::Graph model_for(const std::string& arch, int res, bool quantized = false) {
  nn::ZooSpec spec;
  spec.archetype = arch;
  spec.resolution = res;
  spec.seed = 7;
  nn::Graph g = nn::build_model(spec);
  if (quantized) nn::quantize_weights(g);
  return g;
}

void run_model(benchmark::State& state, const nn::Graph& graph,
               unsigned threads) {
  nn::Interpreter interp{graph, threads};
  auto inputs = nn::random_inputs(graph, 42);
  if (!inputs.ok()) {
    state.SkipWithError("input build failed");
    return;
  }
  for (auto _ : state) {
    auto out = interp.run(inputs.value());
    benchmark::DoNotOptimize(out);
  }
  const auto trace = nn::trace_model(graph);
  if (trace.ok()) {
    state.counters["MFLOP"] = static_cast<double>(trace.value().total_flops) / 1e6;
  }
}

void BM_MobileNetF32(benchmark::State& state) {
  const auto g = model_for("mobilenet", 64);
  run_model(state, g, static_cast<unsigned>(state.range(0)));
}
BENCHMARK(BM_MobileNetF32)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_MobileNetHybridInt8(benchmark::State& state) {
  const auto g = model_for("mobilenet", 64, /*quantized=*/true);
  run_model(state, g, 1);
}
BENCHMARK(BM_MobileNetHybridInt8)->Unit(benchmark::kMillisecond);

void BM_UnetSegmentation(benchmark::State& state) {
  const auto g = model_for("unet", 64);
  run_model(state, g, static_cast<unsigned>(state.range(0)));
}
BENCHMARK(BM_UnetSegmentation)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_FssdDetector(benchmark::State& state) {
  const auto g = model_for("fssd", 64);
  run_model(state, g, 1);
}
BENCHMARK(BM_FssdDetector)->Unit(benchmark::kMillisecond);

void BM_WordRnn(benchmark::State& state) {
  const auto g = model_for("wordrnn", 16);
  run_model(state, g, 1);
}
BENCHMARK(BM_WordRnn)->Unit(benchmark::kMillisecond);

void BM_AudioCnn(benchmark::State& state) {
  const auto g = model_for("audiocnn", 32);
  run_model(state, g, 1);
}
BENCHMARK(BM_AudioCnn)->Unit(benchmark::kMillisecond);

void BM_SensorMlp(benchmark::State& state) {
  const auto g = model_for("sensormlp", 16);
  run_model(state, g, 1);
}
BENCHMARK(BM_SensorMlp)->Unit(benchmark::kMicrosecond);

void BM_BatchedMobileNet(benchmark::State& state) {
  const auto g = model_for("mobilenet", 48);
  nn::Interpreter interp{g, 4};
  auto inputs = nn::random_inputs(g, 42, state.range(0));
  if (!inputs.ok()) {
    state.SkipWithError("input build failed");
    return;
  }
  for (auto _ : state) {
    auto out = interp.run(inputs.value());
    benchmark::DoNotOptimize(out);
  }
  state.counters["ips"] = benchmark::Counter(
      static_cast<double>(state.range(0)) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BatchedMobileNet)->Arg(1)->Arg(5)->Arg(25)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
