// Fig. 14 — ECDF of model latency and energy per hardware target with SNPE
// (CPU/GPU/DSP) vs the vanilla CPU and GPU baselines, on the Q845 board.
#include <algorithm>
#include <array>
#include <cmath>

#include "bench/common.hpp"
#include "device/soc.hpp"

int main() {
  using namespace gauge;
  bench::print_header(
      "Fig. 14: SNPE hardware targets on Q845",
      "SNPE DSP 5.72x faster / 20.3x more efficient and SNPE GPU 2.28x "
      "faster / 8.39x more efficient than CPU; vs the GPU baseline the DSP "
      "is 2.97x faster / 2.69x more efficient; SNPE CPU lags the baseline; "
      "DSP runs int8");

  const auto& data = bench::snapshot21();
  const auto q845 = device::make_device("Q845");

  std::vector<device::RunConfig> configs(5);
  configs[0].backend = device::Backend::CpuFp32;
  configs[1].backend = device::Backend::GpuFp32;
  configs[2].backend = device::Backend::SnpeCpu;
  configs[3].backend = device::Backend::SnpeGpu;
  configs[4].backend = device::Backend::SnpeDsp;
  const auto rows = core::sweep_configs(data, q845, configs);

  // TFLite + caffe models, as in the paper's SNPE conversion set.
  auto eligible = [](const core::RunRow& row) {
    return row.framework == "TFLite" || row.framework == "caffe";
  };

  std::map<std::string, std::vector<double>> lat;
  for (const auto& row : rows) {
    if (eligible(row)) lat[row.backend].push_back(row.latency_ms);
  }
  util::Table table{{"target", "models", "lat p10", "p25", "p50", "p75",
                     "p90 (ms)"}};
  for (const char* backend :
       {"CPU", "GPU", "SNPE-CPU", "SNPE-GPU", "SNPE-DSP"}) {
    std::vector<std::string> cells{backend,
                                   std::to_string(lat[backend].size())};
    for (const auto& q : bench::ecdf_quantiles(lat[backend])) cells.push_back(q);
    table.add_row(std::move(cells));
  }
  util::print_section("Latency ECDF summary", table.render());

  // Paired factors over fully-mapped models (no CPU fallback), the set the
  // paper's averages describe.
  std::map<std::string, std::map<std::string, const core::RunRow*>> by_model;
  for (const auto& row : rows) {
    if (eligible(row)) by_model[row.checksum][row.backend] = &row;
  }
  auto factors = [&](const char* target) {
    std::vector<double> speed_cpu, eff_cpu, speed_gpu, eff_gpu;
    for (const auto& [_, backends] : by_model) {
      const auto* cpu = backends.at("CPU");
      const auto* gpu = backends.at("GPU");
      const auto* t = backends.at(target);
      if (t->cpu_fallback) continue;
      speed_cpu.push_back(cpu->latency_ms / t->latency_ms);
      eff_cpu.push_back(t->efficiency_mflops_sw / cpu->efficiency_mflops_sw);
      speed_gpu.push_back(gpu->latency_ms / t->latency_ms);
      eff_gpu.push_back(t->efficiency_mflops_sw / gpu->efficiency_mflops_sw);
    }
    return std::array<double, 4>{
        util::geomean(speed_cpu), util::geomean(eff_cpu),
        util::geomean(speed_gpu), util::geomean(eff_gpu)};
  };

  util::Table avg{{"target", "speed vs CPU", "eff vs CPU", "speed vs GPU",
                   "eff vs GPU", "paper (vs CPU)"}};
  const auto dsp = factors("SNPE-DSP");
  const auto gpu = factors("SNPE-GPU");
  const auto scpu = factors("SNPE-CPU");
  avg.add_row({"SNPE-DSP", util::Table::num(dsp[0]) + "x",
               util::Table::num(dsp[1]) + "x", util::Table::num(dsp[2]) + "x",
               util::Table::num(dsp[3]) + "x", "5.72x / 20.3x"});
  avg.add_row({"SNPE-GPU", util::Table::num(gpu[0]) + "x",
               util::Table::num(gpu[1]) + "x", util::Table::num(gpu[2]) + "x",
               util::Table::num(gpu[3]) + "x", "2.28x / 8.39x"});
  avg.add_row({"SNPE-CPU", util::Table::num(scpu[0]) + "x",
               util::Table::num(scpu[1]) + "x", util::Table::num(scpu[2]) + "x",
               util::Table::num(scpu[3]) + "x", "<1x (unoptimised drivers)"});
  util::print_section("Average factors over fully-mapped models",
                      avg.render());

  // Operator-coverage note (the generality-vs-performance tension).
  std::size_t fallback = 0, total = 0;
  for (const auto& row : rows) {
    if (row.backend != "SNPE-DSP" || !eligible(row)) continue;
    ++total;
    if (row.cpu_fallback) ++fallback;
  }
  std::printf("\nDSP op coverage: %zu of %zu models needed CPU fallback "
              "(rudimentary operator support, as in the paper)\n",
              fallback, total);
  return 0;
}
