// Fig. 7 — FLOPs and parameters per DNN task (trace-based, random input).
#include <cmath>

#include "bench/common.hpp"

int main() {
  using namespace gauge;
  bench::print_header(
      "Fig. 7: FLOPs and parameters per task",
      "four orders of magnitude of spread across the corpus; segmentation/"
      "classification among the heaviest vision tasks; auto-completion "
      "heaviest in NLP, sound recognition in audio");

  const auto& data = bench::snapshot21();
  util::print_section("Per-task distribution",
                      core::fig7_flops_params(data).render());

  double min_flops = 1e300, max_flops = 0.0;
  for (const auto& model : data.models) {
    const auto flops = static_cast<double>(model.trace().total_flops);
    min_flops = std::min(min_flops, flops);
    max_flops = std::max(max_flops, flops);
  }
  std::printf("\nFLOPs spread: %.0f .. %.0f (%.1f orders of magnitude; "
              "paper: ~4 orders)\n",
              min_flops, max_flops, std::log10(max_flops / min_flops));
  return 0;
}
