// Ablation (paper §5.1 confounders): thermal throttling under sustained
// inference. The paper attributes part of the phone-vs-open-deck gap to
// heat dissipation; this bench traces the latency degradation curve on a
// sealed phone vs an open-deck board running the same model continuously.
#include <algorithm>

#include "bench/common.hpp"
#include "device/latency.hpp"
#include "device/soc.hpp"

int main() {
  using namespace gauge;
  bench::print_header(
      "Ablation: thermal throttling under sustained inference",
      "phones throttle towards their floor within minutes; open-deck boards "
      "barely move — one of the paper's explanations for Q888 > S21 despite "
      "the identical SoC");

  const auto& data = bench::snapshot21();
  const auto models = core::distinct_models(data);
  // The heaviest segmentation model, the Table 4 video-call workload.
  const core::ModelRecord* heavy = nullptr;
  for (const auto* m : models) {
    if (m->task != "semantic segmentation") continue;
    if (heavy == nullptr || m->trace().total_flops > heavy->trace().total_flops) {
      heavy = m;
    }
  }
  if (heavy == nullptr) heavy = models.front();

  util::Table table{{"sustained min", "S21 ms", "S21 throttle", "Q888 ms",
                     "Q888 throttle"}};
  const auto s21 = device::make_device("S21");
  const auto q888 = device::make_device("Q888");
  for (double minutes : {0.0, 1.0, 5.0, 15.0, 30.0, 60.0}) {
    device::RunConfig config;
    config.sustained_seconds = minutes * 60.0;
    const auto rs = device::simulate_inference(s21, heavy->trace(), config,
                                               heavy->checksum);
    const auto rq = device::simulate_inference(q888, heavy->trace(), config,
                                               heavy->checksum);
    table.add_row({util::Table::num(minutes, 0),
                   util::Table::num(rs.latency_s * 1e3, 3),
                   util::Table::num(device::thermal_factor(s21, config.sustained_seconds)),
                   util::Table::num(rq.latency_s * 1e3, 3),
                   util::Table::num(device::thermal_factor(q888, config.sustained_seconds))});
  }
  util::print_section(
      "Sustained '" + heavy->task + "' inference (same SoC, sealed vs open)",
      table.render());

  // The S21/Q888 gap widens with sustained load — quantify it.
  device::RunConfig cold, hot;
  hot.sustained_seconds = 3600.0;
  const double gap_cold =
      device::simulate_inference(s21, heavy->trace(), cold, heavy->checksum).latency_s /
      device::simulate_inference(q888, heavy->trace(), cold, heavy->checksum).latency_s;
  const double gap_hot =
      device::simulate_inference(s21, heavy->trace(), hot, heavy->checksum).latency_s /
      device::simulate_inference(q888, heavy->trace(), hot, heavy->checksum).latency_s;
  std::printf("\nS21/Q888 latency gap: %.2fx cold -> %.2fx after an hour "
              "(heat dissipation of the open deck)\n",
              gap_cold, gap_hot);
  return 0;
}
