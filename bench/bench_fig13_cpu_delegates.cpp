// Fig. 13 — ECDF of TFLite model latency and energy per CPU runtime
// (baseline CPU vs XNNPACK vs NNAPI) on the Q845 board.
#include <algorithm>
#include <array>
#include <cmath>

#include "bench/common.hpp"
#include "device/soc.hpp"

int main() {
  using namespace gauge;
  bench::print_header(
      "Fig. 13: TFLite CPU runtimes on Q845 (CPU vs XNNPACK vs NNAPI)",
      "XNNPACK: 1.03x faster, 1.13x more efficient than CPU on average; "
      "NNAPI: 0.49x the speed, 1.66x less efficient (immature NN drivers)");

  const auto& data = bench::snapshot21();
  const auto q845 = device::make_device("Q845");

  std::vector<device::RunConfig> configs(3);
  configs[0].backend = device::Backend::CpuFp32;
  configs[1].backend = device::Backend::CpuXnnpack;
  configs[2].backend = device::Backend::Nnapi;
  const auto rows = core::sweep_configs(data, q845, configs);

  // TFLite models only, matching the paper's experiment.
  std::map<std::string, std::vector<double>> lat, energy;
  for (const auto& row : rows) {
    if (row.framework != "TFLite") continue;
    lat[row.backend].push_back(row.latency_ms);
    energy[row.backend].push_back(row.energy_mj);
  }

  util::Table table{{"runtime", "models", "lat p10", "p25", "p50", "p75",
                     "p90 (ms)", "median mJ"}};
  for (const char* backend : {"CPU", "XNNPACK", "NNAPI"}) {
    std::vector<std::string> cells{backend,
                                   std::to_string(lat[backend].size())};
    for (const auto& q : bench::ecdf_quantiles(lat[backend])) cells.push_back(q);
    cells.push_back(util::Table::num(util::median(energy[backend])));
    table.add_row(std::move(cells));
  }
  util::print_section("Latency / energy ECDF summary", table.render());

  // Per-model paired speedups & efficiency, the paper's averages.
  std::map<std::string, std::map<std::string, const core::RunRow*>> by_model;
  for (const auto& row : rows) {
    if (row.framework != "TFLite") continue;
    by_model[row.checksum][row.backend] = &row;
  }
  std::vector<double> xnn_speed, xnn_eff, nnapi_speed, nnapi_eff;
  for (const auto& [_, backends] : by_model) {
    const auto* cpu = backends.at("CPU");
    const auto* xnn = backends.at("XNNPACK");
    const auto* nnapi = backends.at("NNAPI");
    xnn_speed.push_back(cpu->latency_ms / xnn->latency_ms);
    xnn_eff.push_back(xnn->efficiency_mflops_sw / cpu->efficiency_mflops_sw);
    nnapi_speed.push_back(cpu->latency_ms / nnapi->latency_ms);
    nnapi_eff.push_back(nnapi->efficiency_mflops_sw / cpu->efficiency_mflops_sw);
  }
  util::Table avg{{"runtime", "speed vs CPU", "efficiency vs CPU", "paper"}};
  avg.add_row({"XNNPACK", util::Table::num(util::geomean(xnn_speed)) + "x",
               util::Table::num(util::geomean(xnn_eff)) + "x",
               "1.03x faster, 1.13x more efficient"});
  avg.add_row({"NNAPI", util::Table::num(util::geomean(nnapi_speed)) + "x",
               util::Table::num(util::geomean(nnapi_eff)) + "x",
               "0.49x speed, 1.66x less efficient"});
  util::print_section("Average factors (paired per model)", avg.render());
  return 0;
}
