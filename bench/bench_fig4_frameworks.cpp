// Fig. 4 — number of models extracted & validated per framework and Play
// category, plus the validation-funnel ablation (extension matching alone
// vs signature validation).
#include "bench/common.hpp"

int main() {
  using namespace gauge;
  bench::print_header(
      "Fig. 4: models per framework x category",
      "TFLite 1436 (86.2%), caffe 176 (10.6%), ncnn 46 (2.8%), TF 5, SNPE 3; "
      "communication & finance lead, then photography/beauty");

  const auto& data = bench::snapshot21();
  util::print_section("Framework totals",
                      core::fig4_framework_totals(data).render());
  util::print_section("Per category (categories with >= 20 models)",
                      core::fig4_frameworks(data, 20).render());

  // Ablation: candidate files vs validated models. The gap is the paper's
  // "obfuscated, encrypted or lazily downloaded" remainder plus generic-
  // extension decoys (.json/.bin/.pb config files).
  std::int64_t candidates = 0, validated = 0;
  for (const auto& app : data.apps) {
    candidates += app.candidate_files;
    validated += app.validated_models;
  }
  util::Table funnel{{"stage", "files"}};
  funnel.add_row({"extension-matched candidates", std::to_string(candidates)});
  funnel.add_row({"signature-validated + parsed", std::to_string(validated)});
  util::print_section("Validation funnel (ablation)", funnel.render());

  const double benchmarkable_apps =
      static_cast<double>(data.apps_with_models()) /
      static_cast<double>(data.ml_apps());
  std::printf("\nML apps with extractable models: %.2f%% (paper: 90.72%%)\n",
              benchmarkable_apps * 100.0);
  return 0;
}
