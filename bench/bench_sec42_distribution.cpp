// §4.2 — model distribution to devices: sweep of OBB expansion files and
// asset packs, plus the old-device-profile crawl comparison.
#include <set>

#include "bench/common.hpp"
#include "nn/checksum.hpp"

int main() {
  using namespace gauge;
  bench::print_header(
      "Sec. 4.2: model distribution to devices",
      "no models distributed outside the base APK; an extra crawl with a "
      "3-generation-older device profile (S7 edge) finds no device-specific "
      "model customisation");

  util::print_section("Post-install deliverables sweep",
                      core::sec42_distribution(bench::snapshot21()).render());

  // Old-profile crawl over the ML-heavy categories.
  core::PipelineOptions old_profile;
  old_profile.device_profile = "SM-G935F";  // Galaxy S7 edge
  old_profile.categories = {"communication", "finance", "photography",
                            "beauty"};
  core::PipelineOptions new_profile = old_profile;
  new_profile.device_profile = "SM-G977B";  // Galaxy S10 5G
  const auto old_data = core::run_pipeline(bench::play_store(), old_profile);
  const auto new_data = core::run_pipeline(bench::play_store(), new_profile);

  std::multiset<std::string> old_sums, new_sums;
  for (const auto& model : old_data.models) old_sums.insert(model.checksum);
  for (const auto& model : new_data.models) new_sums.insert(model.checksum);

  util::Table table{{"profile", "models", "identical model sets"}};
  table.add_row({"SM-G977B (S10 5G)", std::to_string(new_data.models.size()),
                 old_sums == new_sums ? "yes" : "NO"});
  table.add_row({"SM-G935F (S7 edge)", std::to_string(old_data.models.size()),
                 old_sums == new_sums ? "yes" : "NO"});
  util::print_section("Device-profile comparison", table.render());
  return 0;
}
