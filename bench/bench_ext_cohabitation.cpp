// Extension (paper §8 "DNN co-habitation"): with more and more apps
// shipping DNNs, several models will run concurrently. This bench
// quantifies the anticipated problem on the simulated devices: per-model
// latency and aggregate efficiency as 1-4 models co-reside.
#include <algorithm>

#include "bench/common.hpp"
#include "device/latency.hpp"
#include "device/soc.hpp"

int main() {
  using namespace gauge;
  bench::print_header(
      "Extension (Sec. 8): DNN co-habitation",
      "the paper anticipates co-existing DNNs needing OS/hardware support; "
      "this ablation shows the super-fair-share slowdown models inflict on "
      "each other");

  const auto& data = bench::snapshot21();
  const auto models = core::distinct_models(data);
  // Four representative co-residents: the most common vision tasks.
  std::vector<const core::ModelRecord*> residents;
  for (const char* task : {"object detection", "face detection",
                           "semantic segmentation", "sound recognition"}) {
    for (const auto* m : models) {
      if (m->task == task) {
        residents.push_back(m);
        break;
      }
    }
  }

  for (const auto& dev : {device::make_device("A20"),
                          device::make_device("S21")}) {
    util::Table table{{"co-resident models", "model-0 latency ms",
                       "slowdown vs solo", "slowdown vs fair share",
                       "model-0 MFLOP/sW"}};
    const auto solo = device::simulate_inference(
        dev, residents[0]->trace(), {}, residents[0]->checksum);
    for (std::size_t n = 1; n <= residents.size(); ++n) {
      std::vector<const nn::ModelTrace*> traces;
      std::vector<std::string> keys;
      for (std::size_t i = 0; i < n; ++i) {
        traces.push_back(&residents[i]->trace());
        keys.push_back(residents[i]->checksum);
      }
      const auto co = device::simulate_cohabitation(dev, traces, {}, keys);
      const double slowdown = co[0].latency_s / solo.latency_s;
      table.add_row({std::to_string(n),
                     util::Table::num(co[0].latency_s * 1e3, 3),
                     util::Table::num(slowdown) + "x",
                     util::Table::num(slowdown / static_cast<double>(n)) + "x",
                     util::Table::num(co[0].efficiency_mflops_sw, 0)});
    }
    util::print_section("Co-habitation on " + dev.name, table.render());
  }
  std::printf("\nslowdown vs fair share > 1x is pure contention — the cost "
              "the paper expects OS/hardware co-scheduling to address.\n");
  return 0;
}
