// Harness throughput under injected fault rates: a three-device fleet runs
// the same job queue under increasingly hostile FaultPlans (flaky pushes,
// dead daemons, a reconnect-refusing hub) and reports jobs/sec plus what the
// recovery layer did about each fault — one JSON row per scenario. The
// fault-free row is the baseline the recovery machinery must not tax.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "harness/workflow.hpp"
#include "nn/trace.hpp"
#include "nn/zoo.hpp"
#include "telemetry/metrics.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace gauge;

nn::ModelTrace small_trace() {
  nn::ZooSpec spec;
  spec.archetype = "mobilenet";
  spec.resolution = 32;
  spec.seed = 7;
  auto trace = nn::trace_model(nn::build_model(spec));
  return std::move(trace).take();
}

harness::BenchmarkJob make_job(const std::string& id,
                               const nn::ModelTrace& trace) {
  harness::BenchmarkJob job;
  job.job_id = id;
  job.model_key = "bench-harness-32";
  job.trace = trace;
  job.warmup_iterations = 2;
  job.iterations = 5;
  job.sleep_between_s = 0.01;
  return job;
}

struct Scenario {
  const char* name;
  harness::FaultPlan device_faults;  // applied to every agent
  harness::FaultPlan hub_faults;
};

std::int64_t counter_value(telemetry::MetricsRegistry& registry,
                           const char* name) {
  for (const auto& [key, value] : registry.counters()) {
    if (key == name) return value;
  }
  return 0;
}

}  // namespace

int main() {
  std::printf("=============================================================\n");
  std::printf("Harness fault tolerance: jobs/sec under injected fault rates\n");
  std::printf("paper: the SS3.3 master-slave platform must survive flaky adb,\n");
  std::printf("dead daemons and power-cut hubs without manual babysitting\n");
  std::printf("=============================================================\n");

  const nn::ModelTrace trace = small_trace();
  constexpr int kJobsPerDevice = 4;

  std::vector<Scenario> scenarios;
  scenarios.push_back({"fault-free", {}, {}});
  {
    Scenario s{"flaky-push", {}, {}};
    // Two dropped push calls per device, recovered by in-place retries.
    s.device_faults.drop_pushes = {1, 4};
    scenarios.push_back(s);
  }
  {
    Scenario s{"dead-daemon-job", {}, {}};
    // One job per device whose daemon dies: costs a deadline wait per
    // attempt, ends quarantined.
    s.device_faults.kill_daemon_for_jobs = {"j-2"};
    scenarios.push_back(s);
  }
  {
    Scenario s{"flaky-hub", {}, {}};
    s.hub_faults.refuse_reconnects = 2;  // first reconnects refused hub-wide
    scenarios.push_back(s);
  }

  util::Table table{{"scenario", "jobs", "ok", "quarantined", "requeues",
                     "deadline hits", "push retries", "hub retries",
                     "jobs/sec"}};
  std::vector<std::string> json_rows;

  for (const auto& scenario : scenarios) {
    telemetry::MetricsRegistry registry;
    telemetry::ScopedRegistry scope{registry};

    harness::UsbHub hub{3};
    hub.inject_faults(scenario.hub_faults);
    harness::DeviceAgent q845{device::make_device("Q845"), 101};
    harness::DeviceAgent q855{device::make_device("Q855"), 102};
    harness::DeviceAgent q888{device::make_device("Q888"), 103};
    std::vector<harness::FleetDevice> fleet;
    for (harness::DeviceAgent* agent : {&q845, &q855, &q888}) {
      agent->inject_faults(scenario.device_faults);
      std::vector<harness::BenchmarkJob> jobs;
      for (int j = 0; j < kJobsPerDevice; ++j) {
        jobs.push_back(make_job("j-" + std::to_string(j), trace));
      }
      fleet.push_back({agent, std::move(jobs)});
    }

    harness::HarnessOptions options;
    options.job_deadline_s = 0.2;  // keep dead-daemon waits cheap

    const auto start = std::chrono::steady_clock::now();
    const auto results = harness::run_fleet(hub, std::move(fleet), options);
    const double seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start)
                               .count();

    int total = 0;
    int ok = 0;
    for (const auto& device : results) {
      for (const auto& outcome : device.outcomes) {
        ++total;
        if (outcome.ok()) ++ok;
      }
    }
    const auto quarantined =
        counter_value(registry, "gauge.harness.quarantined_jobs");
    const auto requeues = counter_value(registry, "gauge.harness.requeues");
    const auto deadline_hits =
        counter_value(registry, "gauge.harness.deadline_hits");
    const auto push_retries =
        counter_value(registry, "gauge.harness.push_retries");
    const auto hub_retries =
        counter_value(registry, "gauge.harness.hub_reconnect_retries");
    const double jobs_per_sec =
        seconds > 0.0 ? static_cast<double>(total) / seconds : 0.0;

    table.add_row({scenario.name, std::to_string(total), std::to_string(ok),
                   std::to_string(quarantined), std::to_string(requeues),
                   std::to_string(deadline_hits), std::to_string(push_retries),
                   std::to_string(hub_retries),
                   util::Table::num(jobs_per_sec, 2)});
    json_rows.push_back(util::format(
        "{\"bench\":\"harness\",\"scenario\":\"%s\",\"jobs\":%d,\"ok\":%d,"
        "\"quarantined\":%lld,\"requeues\":%lld,\"deadline_hits\":%lld,"
        "\"push_retries\":%lld,\"hub_reconnect_retries\":%lld,"
        "\"seconds\":%.4f,\"jobs_per_sec\":%.2f}",
        scenario.name, total, ok, static_cast<long long>(quarantined),
        static_cast<long long>(requeues),
        static_cast<long long>(deadline_hits),
        static_cast<long long>(push_retries),
        static_cast<long long>(hub_retries), seconds, jobs_per_sec));
  }

  std::printf("%s", table.render().c_str());
  for (const auto& row : json_rows) std::printf("%s\n", row.c_str());
  return 0;
}
