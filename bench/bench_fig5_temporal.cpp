// Fig. 5 — individual models removed/added per category between the two
// snapshots, sorted by the difference.
#include "bench/common.hpp"

int main() {
  using namespace gauge;
  bench::print_header(
      "Fig. 5: models added/removed between snapshots (Feb'20 -> Apr'21)",
      "communication gains most (overtaking photography), then finance & "
      "health/medical; lifestyle, food & drink and Android Wear decline");

  util::print_section(
      "Per-category diff",
      core::fig5_temporal(bench::snapshot20(), bench::snapshot21()).render());

  const auto rows =
      core::temporal_diff(bench::snapshot20(), bench::snapshot21());
  std::int64_t added = 0, removed = 0;
  for (const auto& row : rows) {
    added += row.added;
    removed += row.removed;
  }
  std::printf("\nTotal added: %lld, removed: %lld, net: %+lld "
              "(paper: net roughly +845, models doubling in 12 months)\n",
              static_cast<long long>(added), static_cast<long long>(removed),
              static_cast<long long>(added - removed));
  std::printf("Top gainer: %s (+%d), top decliner: %s (%+d)\n",
              rows.front().category.c_str(), rows.front().delta(),
              rows.back().category.c_str(), rows.back().delta());
  return 0;
}
