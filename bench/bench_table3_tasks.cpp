// Table 3 — DNN task classification (three-classifier majority vote over
// model names, I/O dimensions and layer structure).
#include "core/taskclassify.hpp"

#include "bench/common.hpp"

int main() {
  using namespace gauge;
  bench::print_header(
      "Table 3: DNN task classification",
      "vision 1495 (obj-det 52.7%, face-det 13.2%, contour 12.8%, OCR 12.4%), "
      "NLP 17 (auto-complete 52.9%), audio 15 (sound rec 80%), sensor 4; "
      "91.9% of models identified");

  const auto& data = bench::snapshot21();
  util::print_section("Task classification",
                      core::table3_tasks(data).render());

  std::size_t identified = 0;
  std::map<std::string, std::size_t> modality_counts;
  for (const auto& model : data.models) {
    if (model.task != core::kUnidentified) ++identified;
    modality_counts[nn::modality_name(model.modality)]++;
  }
  std::printf("\nIdentified: %zu / %zu (%.1f%%; paper: 91.9%%)\n", identified,
              data.models.size(),
              100.0 * static_cast<double>(identified) /
                  static_cast<double>(data.models.size()));
  std::printf("Vision share: %.1f%% (paper: >89%%)\n",
              100.0 * static_cast<double>(modality_counts["image"]) /
                  static_cast<double>(data.models.size()));
  return 0;
}
