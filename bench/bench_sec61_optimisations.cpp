// §6.1 — model-level optimisation census: clustering, pruning, quantisation
// and near-zero weight sparsity.
#include "bench/common.hpp"

int main() {
  using namespace gauge;
  bench::print_header(
      "Sec. 6.1: model-level optimisation adoption",
      "no cluster_/prune_ layers in the wild; 10.3% of models use the "
      "dequantize layer; 20.27% int8 weights; 10.31% int8 activations; "
      "3.15% of weights near zero (little pruning headroom)");

  const auto report = core::analyze_optimisations(bench::snapshot21());
  util::print_section("Optimisation census",
                      core::sec61_optimisations(report).render());

  // Quantisation by framework: only the TFLite-family containers carry it.
  const auto& data = bench::snapshot21();
  util::Table by_fw{{"framework", "models", "int8 weights", "int8 acts"}};
  std::map<std::string, std::array<int, 3>> counts;
  for (const auto& model : data.models) {
    auto& c = counts[formats::framework_name(model.framework)];
    c[0]++;
    if (model.int8_weights) c[1]++;
    if (model.int8_activations) c[2]++;
  }
  for (const auto& [fw, c] : counts) {
    by_fw.add_row({fw, std::to_string(c[0]), std::to_string(c[1]),
                   std::to_string(c[2])});
  }
  util::print_section("Quantisation by framework", by_fw.render());
  return 0;
}
