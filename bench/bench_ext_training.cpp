// Extension (paper §4.5 + §8): the corpus shows developers fine-tune only
// the last layers of off-the-shelf models (4.2% differ in <=3 layers) and
// the paper attributes this to the "significantly smaller training
// footprint". This ablation quantifies that footprint on device: a training
// step of full training vs head-only fine-tuning, costed on the Table 1
// devices.
#include <algorithm>

#include "bench/common.hpp"
#include "util/strings.hpp"
#include "device/latency.hpp"
#include "device/soc.hpp"
#include "nn/training.hpp"

int main() {
  using namespace gauge;
  bench::print_header(
      "Extension (Sec. 8): on-device training footprint",
      "full training costs ~3x inference per step; fine-tuning the last <=3 "
      "layers (what 4.2% of unique models in the wild did offline) cuts the "
      "backward cost by >50% and the trainable parameters by orders of "
      "magnitude");

  const auto& data = bench::snapshot21();
  const auto models = core::distinct_models(data);
  // The most-shipped vision model is the natural fine-tuning base.
  const core::ModelRecord* subject = nullptr;
  for (const auto* m : models) {
    if (m->task == "object detection") {
      subject = m;
      break;
    }
  }
  if (subject == nullptr) subject = models.front();

  util::Table table{{"regime", "trainable params", "step GFLOPs",
                     "vs inference", "activation stash"}};
  const double inference_gflops =
      static_cast<double>(subject->trace().total_flops) / 1e9;
  for (const auto& [label, layers] :
       std::vector<std::pair<std::string, int>>{
           {"inference only", 0},
           {"head fine-tune (1 layer)", 1},
           {"transfer learning (3 layers)", 3},
           {"full training", -1}}) {
    const auto cost = nn::training_step_cost(subject->trace(), layers);
    table.add_row(
        {label, std::to_string(cost.trainable_params),
         util::Table::num(static_cast<double>(cost.total_flops()) / 1e9, 4),
         util::Table::num(static_cast<double>(cost.total_flops()) / 1e9 /
                          inference_gflops) +
             "x",
         util::human_bytes(static_cast<std::uint64_t>(
             std::max<std::int64_t>(0, cost.activation_stash_bytes)))});
  }
  util::print_section("Training-step cost ('" + subject->task + "' model)",
                      table.render());

  // Wall-clock framing: a 1000-step personalisation run per device, using
  // the device model with training FLOPs folded into the trace totals.
  util::Table wall{{"device", "1000 full steps (s)", "1000 head steps (s)"}};
  const auto full = nn::training_step_cost(subject->trace(), -1);
  const auto head = nn::training_step_cost(subject->trace(), 3);
  for (const auto& dev : device::phones()) {
    const auto inf =
        device::simulate_inference(dev, subject->trace(), {}, subject->checksum);
    const double per_flop_s = inf.latency_s /
                              static_cast<double>(subject->trace().total_flops);
    wall.add_row(
        {dev.name,
         util::Table::num(per_flop_s * static_cast<double>(full.total_flops()) *
                          1000.0),
         util::Table::num(per_flop_s * static_cast<double>(head.total_flops()) *
                          1000.0)});
  }
  util::print_section("Personalisation wall-clock (device model)",
                      wall.render());
  return 0;
}
