// Fig. 9 — latency ECDF per device.
#include "bench/common.hpp"
#include "device/soc.hpp"

int main() {
  using namespace gauge;
  bench::print_header(
      "Fig. 9: latency ECDF per device",
      "A20 3.4x and A70 1.51x slower than S21; board generations improve "
      "76 -> 58 -> 35 ms mean (Q845/Q855/Q888); Q888 edges out the S21 "
      "despite the same SoC (open deck, vanilla OS)");

  const auto& data = bench::snapshot21();
  const auto devices = device::all_devices();
  const auto rows = core::sweep_devices(data, devices);

  util::Table table{
      {"device", "mean ms", "p10", "p25", "p50", "p75", "p90"}};
  std::map<std::string, double> means;
  for (const auto& dev : devices) {
    std::vector<double> lat;
    for (const auto& row : rows) {
      if (row.device == dev.name) lat.push_back(row.latency_ms);
    }
    means[dev.name] = util::mean(lat);
    std::vector<std::string> cells{dev.name, util::Table::num(means[dev.name])};
    for (const auto& q : bench::ecdf_quantiles(lat)) cells.push_back(q);
    table.add_row(std::move(cells));
  }
  util::print_section("Latency distribution (CPU, 4 threads)", table.render());

  util::Table ratios{{"comparison", "ratio", "paper"}};
  ratios.add_row({"A20 / S21", util::Table::num(means["A20"] / means["S21"]),
                  "3.4x"});
  ratios.add_row({"A70 / S21", util::Table::num(means["A70"] / means["S21"]),
                  "1.51x"});
  ratios.add_row({"Q845 / Q888",
                  util::Table::num(means["Q845"] / means["Q888"]),
                  "2.17x (76/35 ms)"});
  ratios.add_row({"Q855 / Q888",
                  util::Table::num(means["Q855"] / means["Q888"]),
                  "1.66x (58/35 ms)"});
  ratios.add_row({"S21 / Q888", util::Table::num(means["S21"] / means["Q888"]),
                  ">1 (same SoC, open deck wins)"});
  ratios.add_row({"A70 / Q845", util::Table::num(means["A70"] / means["Q845"]),
                  "<1 (next-gen mid-tier beats old flagship)"});
  util::print_section("Tier & generation ratios", ratios.render());
  return 0;
}
