// Open-loop load generator for gaugenn_serve (DESIGN.md §11).
//
// Replays store-calibrated traffic against a running server: each arrival
// picks an ML app by zipf rank over the install-sorted top charts (app
// popularity is power-law, §4), then one of that app's shipped models, so
// the request mix is category-skewed exactly the way the crawl snapshot is.
// Arrivals follow a Poisson process at the offered rate and are timestamped
// *when scheduled*, not when sent — latency includes any client-side
// convoying, so a saturated server cannot hide behind coordinated omission.
//
//   bench_serve --port N [--host 127.0.0.1] [--rates 50,200,800]
//               [--duration-s 5] [--conns 16] [--deadline-ms 250]
//               [--models a,b,c] [--backend B] [--seed 21]
//
// Client-side resilience mirrors a well-behaved mobile client: a SHED
// response's retry_after_ms hint is honoured (sleep, then one retry), and
// a connection that dies mid-run (reset / refused — e.g. the server's
// chaos plan dropped it) is reconnected through util::RetryPolicy before
// the request is retried once. --backend adds backend=<B> to every INFER
// so chaos runs can steer load onto the lane the fault plan targets.
//
// Emits one human table plus one machine-readable JSON row per offered
// rate: offered load vs achieved throughput vs tail latency, the
// shed/error split and the retried/gave_up recovery counts. check.sh greps
// the JSON rows.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "net/socket.hpp"
#include "serve/protocol.hpp"
#include "util/result.hpp"
#include "util/retry.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace {

using namespace gauge;

struct Arrival {
  double at_s = 0.0;    // offset from run start
  std::string model;    // zoo archetype to request
};

struct Outcome {
  enum class Kind { Ok, Shed, Err, Timeout } kind = Kind::Err;
  double latency_ms = 0.0;  // scheduled arrival → response parsed
};

// The store-calibrated request mix: every archetype shipped by an ML app in
// the Apr'21 snapshot, weighted by zipf-ranked app popularity. Returns the
// per-app archetype lists, install-sorted (rank 0 = most installed).
std::vector<std::vector<std::string>> app_model_mix(
    const std::vector<std::string>& allowed) {
  const auto& store = bench::play_store();
  const auto& instances = store.instances();
  const auto& unique = store.unique_models();
  const std::set<std::string> filter{allowed.begin(), allowed.end()};

  std::vector<const android::AppEntry*> ml_apps;
  for (const auto& app : store.apps()) {
    if (!app.present_2021 || app.model_instances.empty()) continue;
    ml_apps.push_back(&app);
  }
  std::sort(ml_apps.begin(), ml_apps.end(),
            [](const android::AppEntry* a, const android::AppEntry* b) {
              return a->installs > b->installs;
            });

  std::vector<std::vector<std::string>> mix;
  for (const auto* app : ml_apps) {
    std::vector<std::string> archetypes;
    for (int idx : app->model_instances) {
      const auto& archetype = unique[instances[idx].unique_id].archetype;
      if (!filter.empty() && !filter.count(archetype)) continue;
      archetypes.push_back(archetype);
    }
    if (!archetypes.empty()) mix.push_back(std::move(archetypes));
  }
  return mix;
}

// Poisson arrivals over `duration_s` at `rate_ips`, each tagged with the
// model of a zipf-popular app's randomly chosen shipped instance.
std::vector<Arrival> schedule(const std::vector<std::vector<std::string>>& mix,
                              double rate_ips, double duration_s,
                              util::Rng& rng) {
  std::vector<Arrival> arrivals;
  double t = 0.0;
  while (true) {
    t += -std::log(1.0 - rng.uniform()) / rate_ips;
    if (t >= duration_s) break;
    // zipf ranks are 1-based; rank 1 = the most-installed ML app.
    const auto& app = mix[rng.zipf(mix.size(), 1.1) - 1];
    arrivals.push_back({t, app[rng.uniform_u64(app.size())]});
  }
  return arrivals;
}

struct RunTotals {
  std::uint64_t ok = 0, shed = 0, err = 0, timeout = 0;
  std::uint64_t retried = 0;  // second attempts (after SHED or a dead conn)
  std::uint64_t gave_up = 0;  // second attempts that still did not get OK
  std::vector<double> ok_latency_ms;
};

// One closed connection per worker, all workers pulling from the shared
// open-loop schedule. Client-side resilience mirrors the harness: connects
// (including mid-run reconnects after a reset) go through
// util::RetryPolicy, every send/recv carries a socket deadline, and a
// SHED's retry_after_ms hint is slept before the one retry.
RunTotals replay(const std::string& host, std::uint16_t port,
                 const std::vector<Arrival>& arrivals, double deadline_ms,
                 unsigned conns, const std::string& backend) {
  std::atomic<std::size_t> cursor{0};
  std::mutex mutex;
  RunTotals totals;
  const auto start = std::chrono::steady_clock::now();
  const auto io_deadline =
      std::chrono::milliseconds{static_cast<long>(deadline_ms) + 2000};

  std::vector<std::thread> workers;
  for (unsigned w = 0; w < conns; ++w) {
    workers.emplace_back([&] {
      std::optional<net::TcpStream> conn;
      const auto reconnect = [&]() -> bool {
        conn.reset();
        util::RetryPolicy retry;
        return retry
            .run([&] {
              auto attempt = net::TcpStream::connect(host, port);
              if (!attempt.ok()) return util::Status::failure(attempt.error());
              conn.emplace(std::move(attempt).take());
              return util::Status{};
            })
            .ok();
      };
      if (!reconnect()) return;  // unclaimed arrivals count as timeouts

      std::vector<Outcome> local;
      std::uint64_t local_retried = 0, local_gave_up = 0;
      bool conn_dead = false;
      while (!conn_dead) {
        const std::size_t i = cursor.fetch_add(1);
        if (i >= arrivals.size()) break;
        const auto& arrival = arrivals[i];
        const auto due = start + std::chrono::duration_cast<
                                     std::chrono::steady_clock::duration>(
                                     std::chrono::duration<double>{arrival.at_s});
        std::this_thread::sleep_until(due);

        auto line = util::format("INFER %s id=%zu deadline_ms=%.0f",
                                 arrival.model.c_str(), i, deadline_ms);
        if (!backend.empty()) line += " backend=" + backend;
        Outcome outcome;
        outcome.kind = Outcome::Kind::Timeout;
        const std::uint64_t retried_before = local_retried;
        for (int attempt = 0; attempt < 2; ++attempt) {
          if (attempt == 1) ++local_retried;
          bool replied = false;
          if (conn && conn->send_line_for(line, io_deadline).ok()) {
            if (auto reply = conn->recv_line_for(io_deadline); reply.ok()) {
              replied = true;
              if (auto parsed = serve::parse_response(reply.value());
                  parsed.ok()) {
                using K = serve::Response::Kind;
                switch (parsed.value().kind) {
                  case K::Ok: outcome.kind = Outcome::Kind::Ok; break;
                  case K::Shed: outcome.kind = Outcome::Kind::Shed; break;
                  default: outcome.kind = Outcome::Kind::Err; break;
                }
                if (outcome.kind == Outcome::Kind::Shed && attempt == 0) {
                  // Honour the brownout hint, capped at the deadline — a
                  // longer wait than that cannot save this request anyway.
                  const double wait_ms = std::min(
                      static_cast<double>(parsed.value().retry_after_ms),
                      deadline_ms);
                  std::this_thread::sleep_for(
                      std::chrono::duration<double, std::milli>{wait_ms});
                  continue;
                }
              } else {
                outcome.kind = Outcome::Kind::Err;
              }
            }
          }
          if (!replied) {
            // Dead or desynced connection (reset, refused, stuck): the only
            // safe recovery is a fresh connection. Retry the request once.
            outcome.kind = Outcome::Kind::Timeout;
            if (reconnect()) {
              if (attempt == 0) continue;
            } else {
              conn_dead = true;  // server gone; stop claiming arrivals
            }
          }
          break;
        }
        if (local_retried > retried_before &&
            outcome.kind != Outcome::Kind::Ok) {
          ++local_gave_up;
        }
        // Open-loop latency: from the scheduled arrival, not the send.
        outcome.latency_ms =
            std::chrono::duration<double, std::milli>{
                std::chrono::steady_clock::now() - due}
                .count();
        local.push_back(outcome);
      }

      std::lock_guard<std::mutex> lock{mutex};
      totals.retried += local_retried;
      totals.gave_up += local_gave_up;
      for (const auto& outcome : local) {
        switch (outcome.kind) {
          case Outcome::Kind::Ok:
            ++totals.ok;
            totals.ok_latency_ms.push_back(outcome.latency_ms);
            break;
          case Outcome::Kind::Shed: ++totals.shed; break;
          case Outcome::Kind::Err: ++totals.err; break;
          case Outcome::Kind::Timeout: ++totals.timeout; break;
        }
      }
    });
  }
  for (auto& worker : workers) worker.join();
  // Arrivals no worker claimed (all connects failed) are timeouts.
  const std::size_t claimed = std::min(cursor.load(), arrivals.size());
  totals.timeout += arrivals.size() - claimed;
  return totals;
}

int usage() {
  std::fprintf(stderr,
               "usage: bench_serve --port N [--host H] [--rates r1,r2,...] "
               "[--duration-s X] [--conns N] [--deadline-ms X] "
               "[--models a,b,c] [--backend B] [--seed N]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::vector<double> rates{50, 200, 800};
  double duration_s = 5.0;
  unsigned conns = 16;
  double deadline_ms = 250.0;
  std::vector<std::string> models;
  std::string backend;
  std::uint64_t seed = 21;

  for (int i = 1; i < argc; ++i) {
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (std::strcmp(argv[i], "--host") == 0) {
      const char* v = next();
      if (!v) return usage();
      host = v;
    } else if (std::strcmp(argv[i], "--port") == 0) {
      const char* v = next();
      const auto parsed = v ? util::parse_int(v) : std::nullopt;
      if (!parsed) return usage();
      port = static_cast<std::uint16_t>(*parsed);
    } else if (std::strcmp(argv[i], "--rates") == 0) {
      const char* v = next();
      if (!v) return usage();
      rates.clear();
      for (const auto& token : util::split(v, ',')) {
        const auto parsed = util::parse_double(token);
        if (!parsed) return usage();
        rates.push_back(*parsed);
      }
    } else if (std::strcmp(argv[i], "--duration-s") == 0) {
      const char* v = next();
      const auto parsed = v ? util::parse_double(v) : std::nullopt;
      if (!parsed) return usage();
      duration_s = *parsed;
    } else if (std::strcmp(argv[i], "--conns") == 0) {
      const char* v = next();
      const auto parsed = v ? util::parse_int(v) : std::nullopt;
      if (!parsed) return usage();
      conns = static_cast<unsigned>(*parsed);
    } else if (std::strcmp(argv[i], "--deadline-ms") == 0) {
      const char* v = next();
      const auto parsed = v ? util::parse_double(v) : std::nullopt;
      if (!parsed) return usage();
      deadline_ms = *parsed;
    } else if (std::strcmp(argv[i], "--models") == 0) {
      const char* v = next();
      if (!v) return usage();
      models = util::split(v, ',');
    } else if (std::strcmp(argv[i], "--backend") == 0) {
      const char* v = next();
      if (!v || !serve::parse_backend(v)) return usage();
      backend = v;
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      const char* v = next();
      const auto parsed = v ? util::parse_int(v) : std::nullopt;
      if (!parsed) return usage();
      seed = static_cast<std::uint64_t>(*parsed);
    } else {
      return usage();
    }
  }
  if (port == 0) return usage();

  bench::print_header(
      "gaugenn_serve load test: offered load vs throughput vs tail latency",
      "batching amortises per-layer dispatch overhead (Fig. 11), so the "
      "batched server sustains higher offered load before shedding");

  const auto mix = app_model_mix(models);
  if (mix.empty()) {
    std::fprintf(stderr, "bench_serve: no ML apps match the model filter\n");
    return 1;
  }
  std::printf("mix: %zu ML apps (zipf-ranked by installs), deadline %.0f ms, "
              "%u connections\n\n", mix.size(), deadline_ms, conns);

  util::Table table{{"offered ips", "sent", "ok", "shed", "err", "timeout",
                     "retried", "achieved ips", "p50 ms", "p95 ms", "p99 ms"}};
  for (double rate : rates) {
    util::Rng rng{seed};
    const auto arrivals = schedule(mix, rate, duration_s, rng);
    const auto t0 = std::chrono::steady_clock::now();
    auto totals = replay(host, port, arrivals, deadline_ms, conns, backend);
    const double elapsed_s =
        std::chrono::duration<double>{std::chrono::steady_clock::now() - t0}
            .count();

    double p50 = 0, p95 = 0, p99 = 0;
    if (!totals.ok_latency_ms.empty()) {
      util::Ecdf ecdf{totals.ok_latency_ms};
      p50 = ecdf.quantile(0.50);
      p95 = ecdf.quantile(0.95);
      p99 = ecdf.quantile(0.99);
    }
    const double achieved =
        elapsed_s > 0 ? static_cast<double>(totals.ok) / elapsed_s : 0.0;

    table.add_row({util::Table::num(rate, 0),
                   std::to_string(arrivals.size()),
                   std::to_string(totals.ok), std::to_string(totals.shed),
                   std::to_string(totals.err), std::to_string(totals.timeout),
                   std::to_string(totals.retried),
                   util::Table::num(achieved, 1), util::Table::num(p50, 1),
                   util::Table::num(p95, 1), util::Table::num(p99, 1)});
    // Machine-readable row (check.sh and notebooks consume these).
    std::printf(
        "JSON {\"offered_ips\":%.1f,\"sent\":%zu,\"ok\":%llu,\"shed\":%llu,"
        "\"err\":%llu,\"timeout\":%llu,\"retried\":%llu,\"gave_up\":%llu,"
        "\"achieved_ips\":%.1f,"
        "\"p50_ms\":%.2f,\"p95_ms\":%.2f,\"p99_ms\":%.2f}\n",
        rate, arrivals.size(),
        static_cast<unsigned long long>(totals.ok),
        static_cast<unsigned long long>(totals.shed),
        static_cast<unsigned long long>(totals.err),
        static_cast<unsigned long long>(totals.timeout),
        static_cast<unsigned long long>(totals.retried),
        static_cast<unsigned long long>(totals.gave_up), achieved, p50, p95,
        p99);
    std::fflush(stdout);
  }
  std::printf("\n");
  util::print_section("Open-loop replay (latency from scheduled arrival)",
                      table.render());
  return 0;
}
