// Table 4 — scenario-driven energy consumption for three use-cases (sound
// recognition / typing auto-complete / video-call segmentation) on the
// three development boards.
#include "bench/common.hpp"
#include "core/scenarios.hpp"
#include "device/soc.hpp"

int main() {
  using namespace gauge;
  bench::print_header(
      "Table 4: scenario-driven energy consumption",
      "segmentation (1h call @15FPS) drains hundreds of mAh (26.6-30.5% of "
      "a 4000mAh battery on average, worst models ~96%); sound recognition "
      "(1h audio) and typing (275 words) are orders of magnitude cheaper");

  const auto reports =
      core::run_scenarios(bench::snapshot21(), device::boards());

  util::Table table{{"device", "use-case", "models", "avg mAh", "stdev",
                     "median", "min", "max"}};
  auto add = [&](const std::string& dev, const char* name,
                 const core::ScenarioStats& s) {
    table.add_row({dev, name, std::to_string(s.models),
                   util::Table::num(s.avg_mah, 4), util::Table::num(s.stdev_mah, 4),
                   util::Table::num(s.median_mah, 4), util::Table::num(s.min_mah, 4),
                   util::Table::num(s.max_mah, 4)});
  };
  for (const auto& report : reports) {
    add(report.device, "Sound R.", report.sound_recognition);
    add(report.device, "Typing", report.typing);
    add(report.device, "Segm.", report.segmentation);
  }
  util::print_section("Battery discharge per scenario", table.render());

  // Battery-life framing against a common 4000 mAh pack.
  util::Table share{{"device", "avg segm. share of 4000mAh",
                     "max segm. share"}};
  for (const auto& report : reports) {
    share.add_row(
        {report.device,
         util::Table::pct(core::battery_share(report.segmentation.avg_mah, 4000)),
         util::Table::pct(core::battery_share(report.segmentation.max_mah, 4000))});
  }
  util::print_section("Battery impact of 1h segmentation", share.render());
  std::printf("\nNote: absolute mAh are scaled down with the corpus model "
              "sizes; the use-case *ordering* (Segm >> Sound >> Typing, by "
              "orders of magnitude) is the reproduction target.\n");
  return 0;
}
