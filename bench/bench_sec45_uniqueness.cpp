// §4.5 — model uniqueness and fine-tuning characterisation.
#include "bench/common.hpp"

int main() {
  using namespace gauge;
  bench::print_header(
      "Sec. 4.5: model uniqueness & fine-tuning",
      "only 318 (19.1%) of models unique; ~80.9% shared across >=2 apps; "
      "9.02% of unique models share >=20% of weights with another; 4.2% "
      "differ in <=3 layers (transfer-learned)");

  const auto report = core::analyze_uniqueness(bench::snapshot21());
  util::print_section("Uniqueness report",
                      core::sec45_uniqueness(report).render());

  std::printf("Instance-level multi-copy share: %.1f%%\n",
              report.multi_copy_fraction * 100.0);

  // Most-duplicated models (the FSSD/BlazeFace effect).
  const auto& data = bench::snapshot21();
  const auto rows = data.model_docs.query().group_by({"checksum", "task"});
  util::Table top{{"rank", "task", "copies"}};
  for (std::size_t i = 0; i < std::min<std::size_t>(rows.size(), 5); ++i) {
    top.add_row({std::to_string(i + 1), rows[i].keys[1].str(),
                 std::to_string(rows[i].count)});
  }
  util::print_section("Most-shipped models (top 5)", top.render());
  return 0;
}
