// Fig. 11 — inference throughput vs batch size (2/5/10/25 samples, 4
// threads) across the three phones, over the models that run everywhere.
//
// Also emits each zoo archetype's batch-latency curve as machine-readable
// JSON via serve::measure_batch_curve — the *same* numbers the serving
// batcher's frontier tuning uses (src/serve/batch.hpp), so notebooks and
// the Serve tests consume one source of truth.
#include <algorithm>
#include <array>
#include <cmath>

#include <chrono>

#include "bench/common.hpp"
#include "device/soc.hpp"
#include "nn/checksum.hpp"
#include "nn/interp.hpp"
#include "nn/trace.hpp"
#include "nn/zoo.hpp"
#include "serve/batch.hpp"

int main() {
  using namespace gauge;
  bench::print_header(
      "Fig. 11: throughput vs batch size",
      "throughput scales almost linearly with batch; at batch 25 the S21 is "
      "2.14x / 5.42x faster than A70 / A20");

  const auto& data = bench::snapshot21();
  const auto phones = device::phones();
  const std::vector<int> batches{1, 2, 5, 10, 25};

  std::map<std::string, std::map<int, double>> geomean_tput;
  for (const auto& dev : phones) {
    std::vector<device::RunConfig> configs;
    for (int b : batches) {
      device::RunConfig config;
      config.batch = b;
      configs.push_back(config);
    }
    const auto rows = core::sweep_configs(data, dev, configs);
    std::map<int, std::vector<double>> per_batch;
    for (const auto& row : rows) per_batch[row.batch].push_back(row.throughput_ips);
    for (int b : batches) {
      geomean_tput[dev.name][b] = util::geomean(per_batch[b]);
    }
  }

  util::Table table{{"device", "b=1", "b=2", "b=5", "b=10", "b=25",
                     "scaling b25/b1"}};
  for (const auto& dev : phones) {
    std::vector<std::string> cells{dev.name};
    for (int b : batches) {
      cells.push_back(util::Table::num(geomean_tput[dev.name][b], 1));
    }
    cells.push_back(util::Table::num(
        geomean_tput[dev.name][25] / geomean_tput[dev.name][1]));
    table.add_row(std::move(cells));
  }
  util::print_section("Geomean throughput (inferences/s, 4 threads)",
                      table.render());

  util::Table ratios{{"comparison @ batch 25", "ratio", "paper"}};
  ratios.add_row({"S21 / A70",
                  util::Table::num(geomean_tput["S21"][25] /
                                   geomean_tput["A70"][25]),
                  "2.14x"});
  ratios.add_row({"S21 / A20",
                  util::Table::num(geomean_tput["S21"][25] /
                                   geomean_tput["A20"][25]),
                  "5.42x"});
  util::print_section("Cross-device ratios", ratios.render());

  // Machine-readable curves, one JSON line per (device, archetype): the
  // serving batcher derives its frontier from exactly these measurements.
  std::printf("Batch-latency curves (serve frontier input)\n");
  for (const auto& dev : phones) {
    for (const auto& archetype : nn::zoo_archetypes()) {
      nn::ZooSpec spec;
      spec.archetype = archetype;
      spec.name = archetype;
      const auto graph = nn::build_model(spec);
      auto trace = nn::trace_model(graph);
      if (!trace.ok()) continue;
      const auto curve = serve::measure_batch_curve(
          dev, trace.value(), device::RunConfig{}, nn::model_checksum(graph),
          serve::candidate_batches(25));
      std::printf("JSON %s\n",
                  serve::batch_curve_json(dev.name, archetype, curve).c_str());
    }
  }

  // Measured counterpart: the same curve shape, but timed through the real
  // interpreter on the optimised kernel backend (what `gaugenn_serve --real`
  // feeds its frontier from). Small archetypes only — these are wall-clock
  // measurements, not model evaluations.
  std::printf("Measured interpreter batch-latency curves (optimised backend)\n");
  for (const std::string archetype : {"sensormlp", "mobilenet"}) {
    nn::ZooSpec spec;
    spec.archetype = archetype;
    spec.name = archetype;
    const auto graph = nn::build_model(spec);
    nn::Interpreter interp{graph, 4, nn::kernels::ExecBackend::Optimised};
    serve::BatchCurve curve;
    for (int b : serve::candidate_batches(25)) {
      auto inputs = nn::random_inputs(graph, 17, b);
      if (!inputs.ok()) continue;
      if (!interp.run(inputs.value()).ok()) continue;  // warm-up
      const auto start = std::chrono::steady_clock::now();
      const auto out = interp.run(inputs.value());
      const auto seconds =
          std::chrono::duration<double>{std::chrono::steady_clock::now() -
                                        start}
              .count();
      if (!out.ok() || seconds <= 0.0) continue;
      curve.batches.push_back(b);
      curve.latency_s.push_back(seconds);
      curve.throughput_ips.push_back(static_cast<double>(b) / seconds);
    }
    std::printf("JSON %s\n",
                serve::batch_curve_json("interp-optimised", archetype, curve)
                    .c_str());
  }
  return 0;
}
