// Table 2 — dataset snapshot details.
#include "bench/common.hpp"

int main() {
  using namespace gauge;
  bench::print_header(
      "Table 2: dataset snapshots",
      "Apr'21: 16,653 apps, 377 (2.3%) ML apps, 342 (2.1%) apps w/ models, "
      "1,666 models, 318 (19.1%) unique");

  util::print_section("Snapshot Apr 2021",
                      core::table2_dataset(bench::snapshot21()).render());
  util::print_section("Snapshot Feb 2020",
                      core::table2_dataset(bench::snapshot20()).render());

  const double growth =
      static_cast<double>(bench::snapshot21().total_models()) /
      static_cast<double>(bench::snapshot20().total_models());
  std::printf("\nModel growth Feb'20 -> Apr'21: %.2fx (paper: ~2x, 821 -> 1,666)\n",
              growth);
  return 0;
}
