// Fig. 8 — observed relationship between latency and FLOPs across the six
// devices, with the line-fit ablation (roofline vs pure-FLOPs model).
#include <algorithm>
#include <array>
#include <cmath>

#include "bench/common.hpp"
#include "device/soc.hpp"

int main() {
  using namespace gauge;
  bench::print_header(
      "Fig. 8: latency vs FLOPs across devices",
      "non-linear relationship that differs per device — FLOPs is a poor "
      "latency proxy (memory-bound ops, overheads, scheduling)");

  const auto& data = bench::snapshot21();
  const auto devices = device::all_devices();
  const auto rows = core::sweep_devices(data, devices);

  util::Table table{{"device", "models", "corr(FLOPs,lat)", "line-fit R^2",
                     "lat @p10 flops (ms)", "lat @p90 flops (ms)"}};
  for (const auto& dev : devices) {
    std::vector<double> flops, lat;
    for (const auto& row : rows) {
      if (row.device != dev.name) continue;
      flops.push_back(row.flops);
      lat.push_back(row.latency_ms);
    }
    const double corr = util::correlation(flops, lat);
    const auto fit = util::fit_line(flops, lat);
    // Latency of models near the FLOPs deciles, showing the spread.
    std::vector<std::pair<double, double>> pairs;
    for (std::size_t i = 0; i < flops.size(); ++i) {
      pairs.emplace_back(flops[i], lat[i]);
    }
    std::sort(pairs.begin(), pairs.end());
    const auto p10 = pairs[pairs.size() / 10];
    const auto p90 = pairs[pairs.size() * 9 / 10];
    table.add_row({dev.name, std::to_string(flops.size()),
                   util::Table::num(corr), util::Table::num(fit.r2),
                   util::Table::num(p10.second), util::Table::num(p90.second)});
  }
  util::print_section("Latency vs FLOPs (distinct models, CPU, 4 threads)",
                      table.render());

  // Ablation: a pure-FLOPs predictor calibrated per device (latency =
  // flops/gflops_fit) vs the roofline simulation. Reported as the median
  // relative error of the straight-line predictor.
  util::Table ablation{{"device", "median |rel err| of pure-FLOPs model"}};
  for (const auto& dev : devices) {
    std::vector<double> flops, lat;
    for (const auto& row : rows) {
      if (row.device != dev.name) continue;
      flops.push_back(row.flops);
      lat.push_back(row.latency_ms);
    }
    const auto fit = util::fit_line(flops, lat);
    std::vector<double> errs;
    for (std::size_t i = 0; i < flops.size(); ++i) {
      const double pred = fit.intercept + fit.slope * flops[i];
      errs.push_back(std::abs(pred - lat[i]) / lat[i]);
    }
    ablation.add_row({dev.name, util::Table::pct(util::median(errs))});
  }
  util::print_section("Ablation: FLOPs-only latency predictor error",
                      ablation.render());
  return 0;
}
