// Fig. 10 — distributions of inference energy, power and efficiency across
// the three Qualcomm board generations (KDE summaries).
#include <algorithm>
#include <array>
#include <cmath>

#include "bench/common.hpp"
#include "device/soc.hpp"

int main() {
  using namespace gauge;
  bench::print_header(
      "Fig. 10: energy / power / efficiency across board generations",
      "energy per inference similar across Q845/Q855/Q888; power grows with "
      "each generation (faster execution, same energy); median efficiency "
      "730 / 765 / 873 MFLOP/sW after outlier removal");

  const auto& data = bench::snapshot21();
  const auto boards = device::boards();
  const auto rows = core::sweep_devices(data, boards);

  util::Table energy{{"device", "mean mJ", "median mJ", "KDE mode mJ"}};
  util::Table power{{"device", "mean W", "median W"}};
  util::Table efficiency{
      {"device", "median MFLOP/sW (outliers removed)", "paper"}};
  const char* paper_eff[] = {"730", "765", "873"};
  int idx = 0;
  for (const auto& dev : boards) {
    std::vector<double> e, p, eff;
    for (const auto& row : rows) {
      if (row.device != dev.name) continue;
      e.push_back(row.energy_mj);
      p.push_back(row.power_w);
      eff.push_back(row.efficiency_mflops_sw);
    }
    // KDE mode: the peak of the density estimate (the figure's hump).
    util::Kde kde{e};
    double mode_x = 0.0, mode_y = -1.0;
    for (const auto& [x, y] : kde.grid(256)) {
      if (y > mode_y) {
        mode_y = y;
        mode_x = x;
      }
    }
    energy.add_row({dev.name, util::Table::num(util::mean(e)),
                    util::Table::num(util::median(e)),
                    util::Table::num(mode_x)});
    power.add_row({dev.name, util::Table::num(util::mean(p)),
                   util::Table::num(util::median(p))});
    efficiency.add_row(
        {dev.name,
         util::Table::num(util::median(util::drop_iqr_outliers(eff)), 1),
         paper_eff[idx++]});
  }
  util::print_section("(a) energy per inference", energy.render());
  util::print_section("(b) power draw", power.render());
  util::print_section("(c) efficiency", efficiency.render());
  std::printf("\nNote: absolute magnitudes are simulator-scaled; the cross-"
              "generation *shape* (flat energy, rising power, slowly rising "
              "efficiency) is the reproduction target.\n");
  return 0;
}
