// DocStore engine benchmark: ingest a synthetic corpus of app documents
// (1M by default, --docs N to change), then time the query layer with the
// inverted index against the full-scan reference path. Reports ingest rate
// and per-query p50/p99 latency plus the indexed-over-scan speedup, one
// machine-readable JSON row per metric. --smoke instead runs a fast
// end-to-end check over a real pipeline slice: report tables byte-identical
// between the query-backed builders and the record-scan oracle, and across
// a compaction and a save/load round trip.
#include "bench/common.hpp"

#include <chrono>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "store/docstore.hpp"
#include "util/fileio.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace {

using namespace gauge;

const std::vector<std::string>& categories() {
  static const std::vector<std::string> kCategories = [] {
    std::vector<std::string> out;
    for (int i = 0; i < 30; ++i) out.push_back(util::format("category%02d", i));
    return out;
  }();
  return kCategories;
}

store::Document synth_doc(util::Rng& rng) {
  static const std::vector<std::string> kFrameworks{
      "TFLite", "ncnn", "caffe", "MNN", "ONNX", "SNPE"};
  static const std::vector<std::string> kTasks{
      "image classification", "object detection", "ocr", "face detection",
      "auto-complete", "speech recognition", "unidentified"};
  store::Document doc;
  doc["category"] = categories()[rng.zipf(categories().size(), 1.1) - 1];
  doc["framework"] = rng.choice(kFrameworks);
  doc["task"] = rng.choice(kTasks);
  doc["installs"] = rng.uniform_int(1000, 500000000);
  doc["uses_ml"] = rng.bernoulli(0.4);
  if (rng.bernoulli(0.9)) doc["flops"] = rng.lognormal(16.0, 2.5);
  doc["model_count"] = rng.uniform_int(0, 6);
  return doc;
}

double time_ms(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

struct LatencyRow {
  double p50 = 0.0;
  double p99 = 0.0;
};

LatencyRow measure(int reps, const std::function<void()>& fn) {
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(reps));
  for (int i = 0; i < reps; ++i) samples.push_back(time_ms(fn));
  util::Ecdf ecdf{std::move(samples)};
  return {ecdf.quantile(0.50), ecdf.quantile(0.99)};
}

int run_smoke() {
  std::printf("docstore smoke: pipeline slice -> parity -> compaction -> "
              "save/load\n");
  core::PipelineOptions options;
  options.categories = {"communication"};
  auto data = core::run_pipeline(bench::play_store(), options);
  if (data.apps.empty() || data.models.empty()) {
    std::printf("FAIL: pipeline slice produced an empty dataset\n");
    return 1;
  }

  // Query-backed report tables must match the record-scan oracle byte for
  // byte (the pre-port implementations kept in core/report.cpp).
  const auto parity = core::report_parity_diff(data);
  if (!parity.empty()) {
    std::printf("FAIL: report parity diff:\n%s", parity.c_str());
    return 1;
  }

  const auto render_tables = [&data] {
    return core::table2_dataset(data).to_csv() +
           core::fig4_frameworks(data).to_csv() +
           core::table3_tasks(data).to_csv() +
           core::fig7_flops_params(data).to_csv() +
           core::fig15_cloud(data).to_csv() +
           core::sec42_distribution(data).to_csv();
  };
  const auto jsonl_before =
      data.app_docs.query().to_jsonl() + data.model_docs.query().to_jsonl();
  const auto tables_before = render_tables();

  data.app_docs.compact();
  data.model_docs.compact();
  if (data.app_docs.query().to_jsonl() + data.model_docs.query().to_jsonl() !=
      jsonl_before) {
    std::printf("FAIL: compaction changed the document export\n");
    return 1;
  }
  if (render_tables() != tables_before) {
    std::printf("FAIL: compaction changed a report table\n");
    return 1;
  }

  const std::string dir = "/tmp/gaugenn_bench_docstore_smoke";
  if (auto status = data.model_docs.save(dir); !status.ok()) {
    std::printf("FAIL: save: %s\n", status.error().c_str());
    return 1;
  }
  auto loaded = store::DocStore::load(dir);
  if (!loaded.ok()) {
    std::printf("FAIL: load: %s\n", loaded.error().c_str());
    return 1;
  }
  if (loaded.value().query().to_jsonl() != data.model_docs.query().to_jsonl()) {
    std::printf("FAIL: save/load round trip is not byte-identical\n");
    return 1;
  }

  std::printf("OK: parity clean over %zu apps / %zu models, compaction and "
              "save/load byte-identical\n",
              data.apps.size(), data.models.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t docs = 1000000;
  int reps = 9;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return run_smoke();
    if (std::strcmp(argv[i], "--docs") == 0 && i + 1 < argc) {
      docs = static_cast<std::size_t>(std::atoll(argv[++i]));
    }
    if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
    }
  }

  bench::print_header(
      "DocStore engine: sharded ingest + indexed vs full-scan queries",
      "aggregations over the app/model corpus run from an inverted index "
      "with snapshot isolation instead of rescanning every record");

  store::DocStore db;
  util::Rng rng{42};
  const double ingest_s =
      time_ms([&] {
        for (std::size_t i = 0; i < docs; ++i) db.insert(synth_doc(rng));
      }) /
      1e3;
  const double compact_s = time_ms([&] { db.compact(); }) / 1e3;
  std::printf("ingested %zu docs in %.2fs (%.0f docs/sec), compacted to %zu "
              "segments in %.2fs\n\n",
              docs, ingest_s, static_cast<double>(docs) / ingest_s,
              db.segment_count(), compact_s);

  // A mid-tail category: selective enough that the index pays off, common
  // enough that the aggregation does real work.
  const std::string cat = categories()[7];
  struct Case {
    const char* name;
    std::function<void(store::ExecMode)> run;
  };
  volatile std::size_t sink = 0;
  std::vector<Case> cases;
  cases.push_back({"term_count", [&](store::ExecMode mode) {
                     sink += db.query()
                                 .where("category", cat)
                                 .where("uses_ml", store::Value{true})
                                 .mode(mode)
                                 .count();
                   }});
  cases.push_back({"term_group_by", [&](store::ExecMode mode) {
                     sink += db.query()
                                 .where("category", cat)
                                 .mode(mode)
                                 .group_by({"framework"}, "flops")
                                 .size();
                   }});
  cases.push_back({"range_count", [&](store::ExecMode mode) {
                     sink += db.query()
                                 .where("category", cat)
                                 .where_range("flops", 1e8, std::nullopt)
                                 .mode(mode)
                                 .count();
                   }});

  util::Table table{{"query", "indexed p50 ms", "indexed p99 ms",
                     "scan p50 ms", "scan p99 ms", "speedup"}};
  std::vector<std::string> json_rows;
  json_rows.push_back(util::format(
      "{\"bench\": \"docstore\", \"metric\": \"ingest\", \"docs\": %zu, "
      "\"seconds\": %.3f, \"docs_per_sec\": %.0f}",
      docs, ingest_s, static_cast<double>(docs) / ingest_s));
  bool fast_enough = true;
  for (const auto& c : cases) {
    const auto indexed =
        measure(reps, [&] { c.run(store::ExecMode::Indexed); });
    const auto scanned =
        measure(reps, [&] { c.run(store::ExecMode::FullScan); });
    const double speedup = scanned.p50 / std::max(indexed.p50, 1e-6);
    fast_enough = fast_enough && speedup >= 10.0;
    table.add_row({c.name, util::Table::num(indexed.p50, 3),
                   util::Table::num(indexed.p99, 3),
                   util::Table::num(scanned.p50, 3),
                   util::Table::num(scanned.p99, 3),
                   util::Table::num(speedup, 1) + "x"});
    json_rows.push_back(util::format(
        "{\"bench\": \"docstore\", \"metric\": \"%s\", \"docs\": %zu, "
        "\"indexed_p50_ms\": %.3f, \"indexed_p99_ms\": %.3f, "
        "\"scan_p50_ms\": %.3f, \"scan_p99_ms\": %.3f, "
        "\"speedup_vs_scan\": %.1f}",
        c.name, docs, indexed.p50, indexed.p99, scanned.p50, scanned.p99,
        speedup));
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("segments: %zu, compaction debt: %zu, sink: %zu\n\n",
              db.segment_count(), db.compaction_debt(), sink);
  for (const auto& row : json_rows) std::printf("%s\n", row.c_str());
  if (!fast_enough) {
    std::printf("WARNING: indexed speedup below 10x on at least one query\n");
  }
  return 0;
}
