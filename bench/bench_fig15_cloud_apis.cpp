// Fig. 15 — number of apps invoking cloud-based ML APIs, per category and
// provider, plus the year-over-year growth.
#include "bench/common.hpp"

int main() {
  using namespace gauge;
  bench::print_header(
      "Fig. 15: apps invoking cloud ML APIs",
      "524 apps in Apr'21 (2.33x over Feb'20's 225): 452 Google, 72 Amazon; "
      "business/communication/finance/shopping lead");

  util::print_section("Apr'21 (categories with >= 10 apps)",
                      core::fig15_cloud(bench::snapshot21(), 10).render());
  util::print_section("Feb'20", core::fig15_cloud(bench::snapshot20(), 5).render());

  auto count_cloud = [](const core::SnapshotDataset& data) {
    std::size_t n = 0;
    for (const auto& app : data.apps) {
      if (!app.cloud_providers.empty()) ++n;
    }
    return n;
  };
  const auto c21 = count_cloud(bench::snapshot21());
  const auto c20 = count_cloud(bench::snapshot20());
  std::printf("\nCloud-ML apps: %zu -> %zu (%.2fx; paper: 2.33x)\n", c20, c21,
              static_cast<double>(c21) / static_cast<double>(c20));
  return 0;
}
