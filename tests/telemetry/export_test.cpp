#include "telemetry/export.hpp"

#include <gtest/gtest.h>

#include "telemetry/span.hpp"
#include "util/fileio.hpp"

namespace gauge::telemetry {
namespace {

MetricsRegistry& populated(MetricsRegistry& registry) {
  registry.counter("gauge.pipeline.models_validated").increment(42);
  registry.counter("gauge.pipeline.cache_hits").increment(7);
  registry.gauge("gauge.nn.threadpool.queue_depth").set(3.0);
  auto& histogram = registry.histogram("gauge.device.latency_ms");
  for (int i = 1; i <= 100; ++i) histogram.observe(static_cast<double>(i));
  return registry;
}

TEST(MetricsText, OneLinePerInstrument) {
  MetricsRegistry registry;
  const std::string text = metrics_to_text(populated(registry));
  EXPECT_NE(text.find("counter"), std::string::npos);
  EXPECT_NE(text.find("gauge.pipeline.models_validated"), std::string::npos);
  EXPECT_NE(text.find("42"), std::string::npos);
  EXPECT_NE(text.find("gauge.nn.threadpool.queue_depth"), std::string::npos);
  EXPECT_NE(text.find("count=100"), std::string::npos);
  EXPECT_NE(text.find("p95="), std::string::npos);
}

TEST(DocStoreBridge, MetricsBecomeQueryableDocuments) {
  MetricsRegistry registry;
  store::DocStore docs;
  const std::size_t inserted = export_to_docstore(populated(registry), docs);
  EXPECT_EQ(inserted, 4u);
  EXPECT_EQ(docs.size(), 4u);

  // Counters keep exact integer values.
  const auto validated =
      docs.query().where("metric", "gauge.pipeline.models_validated").ids();
  ASSERT_EQ(validated.size(), 1u);
  EXPECT_EQ(docs.doc(validated[0]).at("kind").as_string(), "counter");
  EXPECT_EQ(docs.doc(validated[0]).at("value").as_int(), 42);

  // Kind is a queryable dimension.
  EXPECT_EQ(docs.query().where("kind", "counter").count(), 2u);
  EXPECT_EQ(docs.query().where("kind", "gauge").count(), 1u);
  EXPECT_EQ(docs.query().where("kind", "histogram").count(), 1u);

  // Histogram documents expose the summary fields.
  const auto latency =
      docs.query().where("metric", "gauge.device.latency_ms").ids();
  ASSERT_EQ(latency.size(), 1u);
  const auto& doc = docs.doc(latency[0]);
  EXPECT_EQ(doc.at("count").as_int(), 100);
  EXPECT_DOUBLE_EQ(doc.at("sum").as_double(), 5050.0);
  EXPECT_GT(doc.at("p95").as_double(), doc.at("p50").as_double());
  EXPECT_LE(doc.at("p99").as_double(), doc.at("max").as_double());

  // Range queries work over the bridged values.
  EXPECT_EQ(docs.query()
                .where("kind", "counter")
                .where_range("value", 10.0, std::nullopt)
                .count(),
            1u);
}

TEST(WriteTelemetry, WritesAllThreeArtifacts) {
  MetricsRegistry registry;
  populated(registry);
  {
    ScopedRegistry scope{registry};
    Span span{"export.test"};
  }
  const std::string dir =
      ::testing::TempDir() + "/gauge_telemetry_export_test";
  const auto status = write_telemetry(registry, dir);
  ASSERT_TRUE(status.ok()) << status.error();

  const auto trace = util::read_text_file(dir + "/trace.json");
  ASSERT_TRUE(trace.ok());
  EXPECT_NE(trace.value().find("export.test"), std::string::npos);

  const auto text = util::read_text_file(dir + "/metrics.txt");
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text.value().find("gauge.pipeline.cache_hits"),
            std::string::npos);

  const auto json = util::read_text_file(dir + "/metrics.json");
  ASSERT_TRUE(json.ok());
  EXPECT_NE(json.value().find("\"histograms\""), std::string::npos);
}

}  // namespace
}  // namespace gauge::telemetry
