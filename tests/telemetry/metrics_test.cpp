#include "telemetry/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <thread>
#include <vector>

namespace gauge::telemetry {
namespace {

constexpr int kThreads = 8;
constexpr int kIterations = 10000;

// Hammers `work(thread_index)` from kThreads threads simultaneously.
void hammer(const std::function<void(int)>& work) {
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&work, t] { work(t); });
  }
  for (auto& thread : threads) thread.join();
}

TEST(Counter, ConcurrentIncrementsAreExact) {
  MetricsRegistry registry;
  hammer([&](int) {
    auto& counter = registry.counter("gauge.test.hits");
    for (int i = 0; i < kIterations; ++i) counter.increment();
  });
  EXPECT_EQ(registry.counter("gauge.test.hits").value(),
            static_cast<std::int64_t>(kThreads) * kIterations);
}

TEST(Counter, ConcurrentRegistryLookupsReturnSameInstance) {
  MetricsRegistry registry;
  // Lookup-per-increment from all threads: creation races must converge on
  // one instrument, or the total comes up short.
  hammer([&](int) {
    for (int i = 0; i < kIterations; ++i) {
      registry.counter("gauge.test.lookup").increment();
    }
  });
  EXPECT_EQ(registry.counter("gauge.test.lookup").value(),
            static_cast<std::int64_t>(kThreads) * kIterations);
}

TEST(Gauge, SetAndAdd) {
  MetricsRegistry registry;
  auto& gauge = registry.gauge("gauge.test.depth");
  gauge.set(4.0);
  EXPECT_DOUBLE_EQ(gauge.value(), 4.0);
  gauge.add(-1.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 2.5);
}

TEST(Gauge, ConcurrentAddsAreExact) {
  MetricsRegistry registry;
  auto& gauge = registry.gauge("gauge.test.adds");
  hammer([&](int) {
    for (int i = 0; i < kIterations; ++i) gauge.add(1.0);
  });
  // Sums of 1.0 stay exactly representable far past kThreads*kIterations.
  EXPECT_DOUBLE_EQ(gauge.value(),
                   static_cast<double>(kThreads) * kIterations);
}

TEST(Histogram, ConcurrentObservesAreExact) {
  MetricsRegistry registry;
  auto& histogram = registry.histogram("gauge.test.latency");
  hammer([&](int t) {
    for (int i = 0; i < kIterations; ++i) {
      histogram.observe(static_cast<double>(t + 1));
    }
  });
  const auto snap = histogram.snapshot();
  EXPECT_EQ(snap.count, static_cast<std::uint64_t>(kThreads) * kIterations);
  // sum = iterations * (1 + 2 + ... + kThreads)
  const double expected_sum =
      static_cast<double>(kIterations) * kThreads * (kThreads + 1) / 2.0;
  EXPECT_DOUBLE_EQ(snap.sum, expected_sum);
  EXPECT_DOUBLE_EQ(snap.min, 1.0);
  EXPECT_DOUBLE_EQ(snap.max, static_cast<double>(kThreads));
  std::uint64_t bucketed = 0;
  for (const auto c : snap.bucket_counts) bucketed += c;
  EXPECT_EQ(bucketed, snap.count);
}

TEST(Histogram, QuantilesTrackDistribution) {
  MetricsRegistry registry;
  auto& histogram = registry.histogram("gauge.test.uniform");
  for (int i = 1; i <= 1000; ++i) histogram.observe(static_cast<double>(i));
  const auto snap = histogram.snapshot();
  // Uniform 1..1000: the fixed 1-2-5 buckets are coarse, so allow wide but
  // meaningful windows around the true quantiles.
  EXPECT_GT(snap.p50, 300.0);
  EXPECT_LT(snap.p50, 700.0);
  EXPECT_GT(snap.p95, 800.0);
  EXPECT_LE(snap.p95, 1000.0);
  EXPECT_GE(snap.p99, snap.p95);
  EXPECT_LE(snap.p99, snap.max);
  EXPECT_GE(snap.p95, snap.p50);
}

TEST(Histogram, CustomBoundsAndClamping) {
  MetricsRegistry registry;
  auto& histogram =
      registry.histogram("gauge.test.custom", {{1.0, 2.0, 3.0}});
  histogram.observe(0.5);
  histogram.observe(2.5);
  histogram.observe(99.0);  // overflow bucket
  const auto snap = histogram.snapshot();
  ASSERT_EQ(snap.bucket_counts.size(), 4u);
  EXPECT_EQ(snap.bucket_counts[0], 1u);
  EXPECT_EQ(snap.bucket_counts[2], 1u);
  EXPECT_EQ(snap.bucket_counts[3], 1u);
  EXPECT_DOUBLE_EQ(snap.min, 0.5);
  EXPECT_DOUBLE_EQ(snap.max, 99.0);
  // Quantiles never escape the observed range, even from the +inf bucket.
  EXPECT_LE(snap.p99, 99.0);
}

TEST(Histogram, EmptySnapshotIsZeroed) {
  MetricsRegistry registry;
  const auto snap = registry.histogram("gauge.test.empty").snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_DOUBLE_EQ(snap.sum, 0.0);
  EXPECT_DOUBLE_EQ(snap.p50, 0.0);
}

TEST(Registry, SnapshotsAreNameSorted) {
  MetricsRegistry registry;
  registry.counter("gauge.b").increment();
  registry.counter("gauge.a").increment(2);
  const auto counters = registry.counters();
  ASSERT_EQ(counters.size(), 2u);
  EXPECT_EQ(counters[0].first, "gauge.a");
  EXPECT_EQ(counters[0].second, 2);
  EXPECT_EQ(counters[1].first, "gauge.b");
}

TEST(Registry, ResetForgetsEverything) {
  MetricsRegistry registry;
  registry.counter("gauge.x").increment();
  registry.gauge("gauge.y").set(1.0);
  registry.histogram("gauge.z").observe(1.0);
  registry.record_span({});
  registry.reset();
  EXPECT_TRUE(registry.counters().empty());
  EXPECT_TRUE(registry.gauges().empty());
  EXPECT_TRUE(registry.histograms().empty());
  EXPECT_TRUE(registry.spans().empty());
}

TEST(ScopedRegistry, OverridesAndRestores) {
  auto& before = current_registry();
  MetricsRegistry outer, inner;
  {
    ScopedRegistry outer_scope{outer};
    EXPECT_EQ(&current_registry(), &outer);
    {
      ScopedRegistry inner_scope{inner};
      EXPECT_EQ(&current_registry(), &inner);
      current_registry().counter("gauge.test.scoped").increment();
    }
    EXPECT_EQ(&current_registry(), &outer);
  }
  EXPECT_EQ(&current_registry(), &before);
  EXPECT_EQ(inner.counter("gauge.test.scoped").value(), 1);
  EXPECT_EQ(outer.counter("gauge.test.scoped").value(), 0);
}

TEST(ScopedRegistry, WorkerThreadsSeeTheOverride) {
  MetricsRegistry registry;
  ScopedRegistry scope{registry};
  hammer([&](int) {
    for (int i = 0; i < kIterations; ++i) {
      current_registry().counter("gauge.test.workers").increment();
    }
  });
  EXPECT_EQ(registry.counter("gauge.test.workers").value(),
            static_cast<std::int64_t>(kThreads) * kIterations);
}

}  // namespace
}  // namespace gauge::telemetry
