#include "telemetry/span.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <thread>

#include "telemetry/export.hpp"

namespace gauge::telemetry {
namespace {

const SpanRecord* find_span(const std::vector<SpanRecord>& spans,
                            const std::string& name) {
  for (const auto& span : spans) {
    if (span.name == name) return &span;
  }
  return nullptr;
}

TEST(Span, RecordsNestingOnOneThread) {
  MetricsRegistry registry;
  {
    ScopedRegistry scope{registry};
    Span root{"root"};
    {
      Span child{"child"};
      Span grandchild{"grandchild"};  // sibling scopes nest LIFO
      EXPECT_EQ(grandchild.parent_id(), child.id());
      EXPECT_EQ(grandchild.depth(), 2u);
    }
    Span second_child{"second_child"};
    EXPECT_EQ(second_child.parent_id(), root.id());
  }
  const auto spans = registry.spans();
  ASSERT_EQ(spans.size(), 4u);

  const auto* root = find_span(spans, "root");
  const auto* child = find_span(spans, "child");
  const auto* grandchild = find_span(spans, "grandchild");
  const auto* second_child = find_span(spans, "second_child");
  ASSERT_NE(root, nullptr);
  ASSERT_NE(child, nullptr);
  ASSERT_NE(grandchild, nullptr);
  ASSERT_NE(second_child, nullptr);

  EXPECT_EQ(root->parent_id, 0u);
  EXPECT_EQ(root->depth, 0u);
  EXPECT_EQ(child->parent_id, root->id);
  EXPECT_EQ(child->depth, 1u);
  EXPECT_EQ(grandchild->parent_id, child->id);
  EXPECT_EQ(second_child->parent_id, root->id);
  EXPECT_EQ(second_child->depth, 1u);

  // Children are contained in the parent's time window.
  EXPECT_GE(child->start_ns, root->start_ns);
  EXPECT_LE(child->start_ns + child->duration_ns,
            root->start_ns + root->duration_ns);
}

TEST(Span, ThreadsKeepIndependentStacks) {
  MetricsRegistry registry;
  {
    ScopedRegistry scope{registry};
    Span root{"root"};
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([] {
        Span outer{"thread_outer"};
        Span inner{"thread_inner"};
        EXPECT_EQ(inner.parent_id(), outer.id());
      });
    }
    for (auto& thread : threads) thread.join();
  }
  const auto spans = registry.spans();
  EXPECT_EQ(spans.size(), 9u);  // root + 4 x (outer + inner)
  // Spans on fresh threads are roots of their own stacks, not children of
  // the main thread's span.
  for (const auto& span : spans) {
    if (span.name == "thread_outer") {
      EXPECT_EQ(span.parent_id, 0u);
      EXPECT_EQ(span.depth, 0u);
    }
    if (span.name == "thread_inner") {
      EXPECT_EQ(span.depth, 1u);
    }
  }
}

TEST(Span, ExplicitRegistryWinsOverCurrent) {
  MetricsRegistry scoped_registry, explicit_registry;
  {
    ScopedRegistry scope{scoped_registry};
    Span span{"explicit", &explicit_registry};
  }
  EXPECT_TRUE(scoped_registry.spans().empty());
  ASSERT_EQ(explicit_registry.spans().size(), 1u);
}

TEST(Span, RegistryCapDropsExcessSpans) {
  MetricsRegistry registry;
  for (int i = 0; i < 300000; ++i) {
    registry.record_span({});
  }
  EXPECT_LE(registry.spans().size(), 262144u);
  EXPECT_GT(registry.spans_dropped(), 0u);
}

// ------------------------------------------------------ trace JSON shape

// Minimal structural JSON check: braces/brackets balance outside string
// literals and strings terminate. Not a parser, but catches unescaped
// quotes and truncation — the failure modes of hand-rolled emitters.
void expect_well_formed_json(const std::string& text) {
  int braces = 0, brackets = 0;
  bool in_string = false, escaped = false;
  for (const char c : text) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': ++braces; break;
      case '}': --braces; break;
      case '[': ++brackets; break;
      case ']': --brackets; break;
      default: break;
    }
    ASSERT_GE(braces, 0);
    ASSERT_GE(brackets, 0);
  }
  EXPECT_FALSE(in_string);
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(TraceJson, WellFormedWithNestedAnnotatedSpans) {
  MetricsRegistry registry;
  {
    ScopedRegistry scope{registry};
    Span root{"pipeline.run"};
    Span category{"pipeline.category"};
    category.annotate("category", "finance");
    // Escaping stress: quotes, backslashes, newline, control char.
    category.annotate("path\"key", "va\\lue\nwith\tctl\x01");
  }
  const std::string json = to_trace_json(registry);
  expect_well_formed_json(json);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("pipeline.run"), std::string::npos);
  EXPECT_NE(json.find("pipeline.category"), std::string::npos);
  EXPECT_NE(json.find("\"category\":\"finance\""), std::string::npos);
  EXPECT_NE(json.find("\\u0001"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
}

TEST(TraceJson, ParentIdsSurviveExport) {
  MetricsRegistry registry;
  std::uint64_t root_id = 0;
  {
    ScopedRegistry scope{registry};
    Span root{"outer"};
    root_id = root.id();
    Span child{"inner"};
    EXPECT_EQ(child.parent_id(), root_id);
  }
  const std::string json = to_trace_json(registry);
  const std::string needle =
      "\"parent_id\":" + std::to_string(root_id);
  EXPECT_NE(json.find(needle), std::string::npos);
}

TEST(TraceJson, MetricsJsonWellFormed) {
  MetricsRegistry registry;
  registry.counter("gauge.a\"b").increment(7);
  registry.gauge("gauge.g").set(1.25);
  registry.histogram("gauge.h").observe(3.0);
  expect_well_formed_json(metrics_to_json(registry));
}

}  // namespace
}  // namespace gauge::telemetry
