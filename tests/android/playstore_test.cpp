#include "android/playstore.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "android/detect.hpp"
#include "formats/validate.hpp"
#include "nn/checksum.hpp"
#include "nn/trace.hpp"

namespace gauge::android {
namespace {

const PlayStore& store() {
  static const PlayStore kStore{StoreConfig{}};
  return kStore;
}

TEST(PlayStore, Table2AppCounts) {
  EXPECT_EQ(store().app_count(Snapshot::Apr2021), 16653u);
  EXPECT_EQ(store().ml_app_count(Snapshot::Apr2021), 377u);
}

TEST(PlayStore, Table2ModelCounts) {
  EXPECT_EQ(store().model_instance_count(Snapshot::Apr2021), 1666u);
  EXPECT_EQ(store().unique_models().size(), 318u);
}

TEST(PlayStore, Snapshot2020IsSmaller) {
  // Feb'20: ~16.4k apps, 236 ML apps, ~821 models (approx; see DESIGN.md).
  EXPECT_LT(store().app_count(Snapshot::Feb2020),
            store().app_count(Snapshot::Apr2021));
  EXPECT_NEAR(static_cast<double>(store().ml_app_count(Snapshot::Feb2020)),
              236.0, 10.0);
  const auto models20 = store().model_instance_count(Snapshot::Feb2020);
  EXPECT_NEAR(static_cast<double>(models20), 821.0, 40.0);
  // Models roughly doubled year over year.
  const double ratio = 1666.0 / static_cast<double>(models20);
  EXPECT_GT(ratio, 1.8);
  EXPECT_LT(ratio, 2.3);
}

TEST(PlayStore, ChartCapAndPaging) {
  PlayStore::ChartRequest req;
  req.category = "communication";
  req.limit = 500;
  const auto page = store().top_chart(req);
  EXPECT_EQ(page.size(), 500u);  // the cap

  req.limit = 100;
  const auto first = store().top_chart(req);
  req.offset = 100;
  const auto second = store().top_chart(req);
  ASSERT_EQ(first.size(), 100u);
  ASSERT_EQ(second.size(), 100u);
  EXPECT_NE(first[0]->package, second[0]->package);

  // Sorted by installs, descending.
  for (std::size_t i = 1; i < first.size(); ++i) {
    EXPECT_GE(first[i - 1]->installs, first[i]->installs);
  }
}

TEST(PlayStore, UnknownCategoryEmpty) {
  PlayStore::ChartRequest req;
  req.category = "does-not-exist";
  EXPECT_TRUE(store().top_chart(req).empty());
}

TEST(PlayStore, WearCategorySmallerThanCap) {
  PlayStore::ChartRequest req;
  req.category = "android wear";
  req.limit = 500;
  EXPECT_EQ(store().top_chart(req).size(), 153u);
}

TEST(PlayStore, DownloadedMlAppContainsValidModels) {
  // Find an extractable ML app.
  const AppEntry* target = nullptr;
  for (const auto& app : store().apps()) {
    if (app.is_ml_2021 && !app.lazy_models && !app.model_instances.empty()) {
      target = &app;
      break;
    }
  }
  ASSERT_NE(target, nullptr);
  auto pkg = store().download(target->package, Snapshot::Apr2021, "SM-G977B");
  ASSERT_TRUE(pkg.ok()) << pkg.error();
  auto apk = Apk::open(pkg.value().apk);
  ASSERT_TRUE(apk.ok()) << apk.error();
  EXPECT_TRUE(uses_ml(apk.value()));

  int valid_models = 0;
  for (const auto& name : apk.value().entry_names()) {
    if (!formats::is_candidate_model_file(name)) continue;
    auto data = apk.value().read(name);
    ASSERT_TRUE(data.ok());
    if (formats::is_valid_model_file(name, data.value())) ++valid_models;
  }
  EXPECT_GT(valid_models, 0);
}

TEST(PlayStore, DownloadDeterministic) {
  const AppEntry* app = store().top_chart({.category = "finance"}).front();
  auto a = store().download(app->package, Snapshot::Apr2021, "SM-G977B");
  auto b = store().download(app->package, Snapshot::Apr2021, "SM-G977B");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.value().apk, b.value().apk);
}

TEST(PlayStore, NoDeviceSpecificModels) {
  // Same payload regardless of the requesting device profile (§4.2).
  const AppEntry* app = store().top_chart({.category = "photography"}).front();
  auto s10 = store().download(app->package, Snapshot::Apr2021, "SM-G977B");
  auto s7 = store().download(app->package, Snapshot::Apr2021, "SM-G935F");
  ASSERT_TRUE(s10.ok() && s7.ok());
  EXPECT_EQ(s10.value().apk, s7.value().apk);
}

TEST(PlayStore, SideContainersNeverCarryModels) {
  // §4.2: sweep OBBs and asset packs of many apps; no model candidates.
  int side_containers = 0;
  int checked = 0;
  for (const auto& app : store().apps()) {
    if (!app.present_2021 || checked >= 300) continue;
    ++checked;
    auto pkg = store().download(app.package, Snapshot::Apr2021, "SM-G977B");
    ASSERT_TRUE(pkg.ok());
    for (const auto& side : pkg.value().expansions) {
      ++side_containers;
      auto entries = side_container_entries(side);
      ASSERT_TRUE(entries.ok());
      for (const auto& name : entries.value()) {
        EXPECT_FALSE(formats::is_candidate_model_file(name)) << name;
      }
    }
    for (const auto& side : pkg.value().asset_packs) {
      ++side_containers;
      auto entries = side_container_entries(side);
      ASSERT_TRUE(entries.ok());
      for (const auto& name : entries.value()) {
        EXPECT_FALSE(formats::is_candidate_model_file(name)) << name;
      }
    }
  }
  EXPECT_GT(side_containers, 0);  // the sweep actually saw OBBs/packs
}

TEST(PlayStore, UniqueModelChecksumsAreDistinct) {
  // "Unique" pool models must be md5-distinct (spot check a slice: full
  // verification happens in the pipeline integration test).
  std::set<std::string> checksums;
  for (int id = 0; id < 40; ++id) {
    checksums.insert(nn::model_checksum(store().build_unique_model(id)));
  }
  EXPECT_EQ(checksums.size(), 40u);
}

TEST(PlayStore, FinetunedModelsShareLayers) {
  const UniqueModel* tuned = nullptr;
  for (const auto& m : store().unique_models()) {
    if (m.finetuned_from >= 0) {
      tuned = &m;
      break;
    }
  }
  ASSERT_NE(tuned, nullptr) << "pool should contain fine-tuned variants";
  const auto base_digests =
      nn::layer_weight_checksums(store().build_unique_model(tuned->finetuned_from));
  const auto tuned_digests =
      nn::layer_weight_checksums(store().build_unique_model(tuned->id));
  EXPECT_GT(nn::shared_layer_fraction(tuned_digests, base_digests), 0.2);
  EXPECT_LT(nn::shared_layer_fraction(tuned_digests, base_digests), 1.0);
}

TEST(PlayStore, FrameworkMixMatchesFig4) {
  std::map<formats::Framework, int> counts;
  for (const auto& inst : store().instances()) {
    if (!inst.present_2021) continue;
    counts[store().unique_models()[static_cast<std::size_t>(inst.unique_id)]
               .framework]++;
  }
  EXPECT_EQ(counts[formats::Framework::TfLite], 1436);
  EXPECT_EQ(counts[formats::Framework::Caffe], 176);
  EXPECT_EQ(counts[formats::Framework::Ncnn], 46);
  EXPECT_EQ(counts[formats::Framework::TensorFlow], 5);
  EXPECT_EQ(counts[formats::Framework::Snpe], 3);
}

TEST(PlayStore, VisionDominatesTasks) {
  std::map<nn::Modality, int> modality_counts;
  for (const auto& inst : store().instances()) {
    if (!inst.present_2021) continue;
    modality_counts[store()
                        .unique_models()[static_cast<std::size_t>(inst.unique_id)]
                        .modality]++;
  }
  const double vision_share =
      static_cast<double>(modality_counts[nn::Modality::Image]) / 1666.0;
  EXPECT_GT(vision_share, 0.85);
}

TEST(PlayStore, EveryUniqueModelBuildsAndTraces) {
  for (const auto& m : store().unique_models()) {
    const nn::Graph g = store().build_unique_model(m.id);
    ASSERT_TRUE(g.validate().ok()) << m.id << " " << m.archetype;
    const auto trace = nn::trace_model(g);
    ASSERT_TRUE(trace.ok()) << m.id << " " << m.archetype << ": "
                            << trace.error();
    EXPECT_GT(trace.value().total_params, 0) << m.archetype;
  }
}

TEST(PlayStore, AcceleratorCounts) {
  int nnapi = 0, xnnpack = 0, snpe = 0;
  for (const auto& app : store().apps()) {
    if (app.uses_nnapi) ++nnapi;
    if (app.uses_xnnpack) ++xnnpack;
    if (app.uses_snpe) ++snpe;
  }
  EXPECT_EQ(nnapi, 71);
  EXPECT_EQ(xnnpack, 1);
  EXPECT_GE(snpe, 3);
}

TEST(PlayStore, CloudAppCounts) {
  int cloud21 = 0, cloud20 = 0, amazon = 0;
  for (const auto& app : store().apps()) {
    if (!app.cloud_apis.empty() && app.present_2021) {
      ++cloud21;
      if (app.cloud_apis[0] == CloudProvider::AmazonAws) ++amazon;
    }
    if (app.cloud_2020 && app.present_2020) ++cloud20;
  }
  EXPECT_EQ(cloud21, 524);
  EXPECT_EQ(amazon, 72);
  EXPECT_EQ(cloud20, 225);
}

TEST(PlayStore, ModelsPerAppIsSkewed) {
  // Popular apps accumulate models (zipf assignment): the distribution of
  // models-per-app must be heavy-tailed, not uniform.
  std::vector<int> per_app;
  for (const auto& app : store().apps()) {
    if (!app.is_ml_2021 || app.lazy_models) continue;
    int count = 0;
    for (int inst : app.model_instances) {
      if (store().instances()[static_cast<std::size_t>(inst)].present_2021) {
        ++count;
      }
    }
    per_app.push_back(count);
  }
  ASSERT_FALSE(per_app.empty());
  std::sort(per_app.begin(), per_app.end());
  const int max = per_app.back();
  const int median = per_app[per_app.size() / 2];
  EXPECT_GE(per_app.front(), 1);      // every extractable app ships >= 1
  EXPECT_GE(max, 3 * std::max(median, 1));  // heavy tail
}

TEST(PlayStore, DeterministicAcrossInstances) {
  const PlayStore other{StoreConfig{}};
  EXPECT_EQ(other.apps().size(), store().apps().size());
  EXPECT_EQ(other.apps()[100].package, store().apps()[100].package);
  EXPECT_EQ(other.instances().size(), store().instances().size());
}

TEST(PlayStore, DifferentSeedDifferentWorld) {
  const PlayStore other{StoreConfig{.seed = 999}};
  // Same calibrated totals...
  EXPECT_EQ(other.app_count(Snapshot::Apr2021), 16653u);
  EXPECT_EQ(other.model_instance_count(Snapshot::Apr2021), 1666u);
  // ...but different micro-structure.
  bool any_difference = false;
  for (std::size_t i = 0; i < 50; ++i) {
    if (other.instances()[i].unique_id != store().instances()[i].unique_id) {
      any_difference = true;
      break;
    }
  }
  EXPECT_TRUE(any_difference);
}

}  // namespace
}  // namespace gauge::android
