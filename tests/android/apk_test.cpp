#include "android/apk.hpp"

#include <gtest/gtest.h>

#include "android/bundle.hpp"
#include "android/detect.hpp"

namespace gauge::android {
namespace {

ApkSpec minimal_spec() {
  ApkSpec spec;
  spec.manifest.package = "com.example.app";
  spec.dex.classes = {"Lcom/example/app/MainActivity;"};
  return spec;
}

TEST(Dex, RoundtripTables) {
  DexFile dex;
  dex.classes = {"Lcom/a/B;", "Lcom/a/C;"};
  dex.method_refs = {"Lcom/a/B;->run()"};
  dex.strings = {"hello", "https://api.example.com"};
  const auto bytes = write_dex(dex);
  EXPECT_TRUE(looks_like_dex(bytes));
  auto restored = read_dex(bytes);
  ASSERT_TRUE(restored.ok()) << restored.error();
  EXPECT_EQ(restored.value().classes, dex.classes);
  EXPECT_EQ(restored.value().method_refs, dex.method_refs);
  EXPECT_EQ(restored.value().strings, dex.strings);
}

TEST(Dex, RejectsBadMagicAndTruncation) {
  EXPECT_FALSE(read_dex(util::to_bytes("nope")).ok());
  DexFile dex;
  dex.strings = {"abc"};
  auto bytes = write_dex(dex);
  bytes.resize(bytes.size() - 2);
  EXPECT_FALSE(read_dex(bytes).ok());
}

TEST(Dex, SmaliRendersAllTables) {
  DexFile dex;
  dex.classes = {"Lcom/x/Y;"};
  dex.method_refs = {"Lcom/google/firebase/ml/vision/FirebaseVision;->getInstance()"};
  dex.strings = {"vision.googleapis.com"};
  const std::string smali = to_smali(dex);
  EXPECT_NE(smali.find(".class public Lcom/x/Y;"), std::string::npos);
  EXPECT_NE(smali.find("invoke-virtual"), std::string::npos);
  EXPECT_NE(smali.find("const-string v1, \"vision.googleapis.com\""),
            std::string::npos);
}

TEST(Manifest, SerializeParseRoundtrip) {
  Manifest m;
  m.package = "com.foo.bar";
  m.version_code = 42;
  m.min_sdk = 26;
  m.permissions = {"android.permission.CAMERA", "android.permission.INTERNET"};
  auto parsed = Manifest::parse(m.serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  EXPECT_EQ(parsed.value().package, "com.foo.bar");
  EXPECT_EQ(parsed.value().version_code, 42);
  EXPECT_EQ(parsed.value().min_sdk, 26);
  EXPECT_EQ(parsed.value().permissions.size(), 2u);
}

TEST(Manifest, RejectsMissingPackageAndBadLines) {
  EXPECT_FALSE(Manifest::parse("versionCode: 3\n").ok());
  EXPECT_FALSE(Manifest::parse("garbage without colon\n").ok());
  EXPECT_FALSE(Manifest::parse("unknownKey: x\n").ok());
}

TEST(Apk, BuildAndOpen) {
  ApkSpec spec = minimal_spec();
  spec.files.emplace_back("assets/model.tflite", util::to_bytes("payload"));
  spec.native_libs = {"libtensorflowlite_jni.so"};
  auto apk = Apk::open(build_apk(spec));
  ASSERT_TRUE(apk.ok()) << apk.error();
  EXPECT_EQ(apk.value().manifest().package, "com.example.app");
  EXPECT_EQ(apk.value().native_libs(),
            std::vector<std::string>{"libtensorflowlite_jni.so"});
  auto names = apk.value().entry_names();
  EXPECT_NE(std::find(names.begin(), names.end(), "assets/model.tflite"),
            names.end());
  auto payload = apk.value().read("assets/model.tflite");
  ASSERT_TRUE(payload.ok());
  EXPECT_EQ(util::as_view(payload.value()), "payload");
}

TEST(Apk, HostileEntryNamesHiddenAndCounted) {
  ApkSpec spec = minimal_spec();
  spec.files.emplace_back("../evil.tflite", util::to_bytes("payload"));
  spec.files.emplace_back("assets/legit.tflite", util::to_bytes("payload"));
  auto apk = Apk::open(build_apk(spec));
  ASSERT_TRUE(apk.ok()) << apk.error();
  // One hostile name must not discard the APK — the entry is hidden and the
  // count feeds `gauge.pipeline.drop.bad_entry_name`.
  EXPECT_EQ(apk.value().rejected_entry_names(), 1u);
  auto names = apk.value().entry_names();
  EXPECT_EQ(std::find(names.begin(), names.end(), "../evil.tflite"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "assets/legit.tflite"),
            names.end());
  EXPECT_FALSE(apk.value().read("../evil.tflite").ok());
}

TEST(Apk, ReadLimitsPlumbedThroughToEntries) {
  ApkSpec spec = minimal_spec();
  zipfile::ReadLimits limits;
  limits.max_entry_bytes = 8;  // below even the manifest's size
  // The manifest itself is read through the limited reader, so an absurd
  // cap surfaces as a failed open rather than a later surprise.
  EXPECT_FALSE(Apk::open(build_apk(spec), limits).ok());
}

TEST(Apk, RejectsNonZipAndMissingParts) {
  EXPECT_FALSE(Apk::open(util::to_bytes("not a zip")).ok());
  zipfile::ZipWriter zip;
  zip.add("AndroidManifest.xml", std::string_view{"package: com.x\n"});
  EXPECT_FALSE(Apk::open(zip.finish()).ok());  // no classes.dex
}

TEST(Bundle, SideContainerRoundtrip) {
  const auto bytes =
      build_side_container({{"textures/a.ktx", util::to_bytes("KTX")}});
  SideContainer obb{"main.1.com.x.obb", bytes};
  auto entries = side_container_entries(obb);
  ASSERT_TRUE(entries.ok()) << entries.error();
  EXPECT_EQ(entries.value(), std::vector<std::string>{"textures/a.ktx"});
}

TEST(Detect, CloudApis) {
  ApkSpec spec = minimal_spec();
  spec.dex.method_refs = {
      "Lcom/google/firebase/ml/vision/FirebaseVision;->getInstance()",
      "Lcom/amazonaws/services/rekognition/AmazonRekognitionClient;->detectLabels()"};
  auto apk = Apk::open(build_apk(spec));
  ASSERT_TRUE(apk.ok());
  const auto hits = detect_cloud_apis(apk.value());
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].provider, CloudProvider::GoogleFirebase);
  EXPECT_EQ(hits[1].provider, CloudProvider::AmazonAws);
}

TEST(Detect, NoCloudApisInPlainApp) {
  auto apk = Apk::open(build_apk(minimal_spec()));
  ASSERT_TRUE(apk.ok());
  EXPECT_TRUE(detect_cloud_apis(apk.value()).empty());
  EXPECT_FALSE(uses_ml(apk.value()));
}

TEST(Detect, MlStacksViaDexAndNativeLibs) {
  ApkSpec spec = minimal_spec();
  spec.dex.classes.push_back("Lorg/tensorflow/lite/Interpreter;");
  spec.native_libs = {"libncnn.so", "libSNPE.so"};
  auto apk = Apk::open(build_apk(spec));
  ASSERT_TRUE(apk.ok());
  const auto hits = detect_ml_stacks(apk.value());
  std::set<MlStack> stacks;
  for (const auto& hit : hits) stacks.insert(hit.stack);
  EXPECT_TRUE(stacks.count(MlStack::TfLite));
  EXPECT_TRUE(stacks.count(MlStack::Ncnn));
  EXPECT_TRUE(stacks.count(MlStack::Snpe));
  EXPECT_TRUE(uses_ml(apk.value()));
}

TEST(Detect, DelegatesAloneAreNotMl) {
  ApkSpec spec = minimal_spec();
  spec.native_libs = {"libnnapi_delegate.so", "libxnnpack.so"};
  auto apk = Apk::open(build_apk(spec));
  ASSERT_TRUE(apk.ok());
  const auto hits = detect_ml_stacks(apk.value());
  std::set<MlStack> stacks;
  for (const auto& hit : hits) stacks.insert(hit.stack);
  EXPECT_EQ(stacks, (std::set<MlStack>{MlStack::NnApi, MlStack::Xnnpack}));
  EXPECT_FALSE(uses_ml(apk.value()));
}

TEST(Detect, NnApiDelegateClassImpliesTfLite) {
  // The TFLite NNAPI delegate class lives under org/tensorflow/lite, so its
  // presence also flags the TFLite runtime — and thus an ML app.
  ApkSpec spec = minimal_spec();
  spec.dex.classes.push_back("Lorg/tensorflow/lite/nnapi/NnApiDelegate;");
  auto apk = Apk::open(build_apk(spec));
  ASSERT_TRUE(apk.ok());
  std::set<MlStack> stacks;
  for (const auto& hit : detect_ml_stacks(apk.value())) stacks.insert(hit.stack);
  EXPECT_TRUE(stacks.count(MlStack::NnApi));
  EXPECT_TRUE(stacks.count(MlStack::TfLite));
  EXPECT_TRUE(uses_ml(apk.value()));
}

TEST(Detect, StacksDeduplicated) {
  ApkSpec spec = minimal_spec();
  spec.dex.classes.push_back("Lorg/tensorflow/lite/Interpreter;");
  spec.native_libs = {"libtensorflowlite_jni.so", "libtensorflowlite.so"};
  auto apk = Apk::open(build_apk(spec));
  ASSERT_TRUE(apk.ok());
  int tflite_hits = 0;
  for (const auto& hit : detect_ml_stacks(apk.value())) {
    if (hit.stack == MlStack::TfLite) ++tflite_hits;
  }
  EXPECT_EQ(tflite_hits, 1);
}

}  // namespace
}  // namespace gauge::android
