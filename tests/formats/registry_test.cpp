#include "formats/registry.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace gauge::formats {
namespace {

TEST(Registry, TableHas18Frameworks) {
  EXPECT_EQ(format_table().size(), 18u);
  std::set<Framework> seen;
  for (const auto& entry : format_table()) seen.insert(entry.framework);
  EXPECT_EQ(seen.size(), 18u);
}

TEST(Registry, TableHas69ExtensionEntries) {
  // Appendix Table 5 lists 69 framework/extension pairs.
  std::size_t total = 0;
  for (const auto& entry : format_table()) total += entry.extensions.size();
  EXPECT_EQ(total, 69u);
}

TEST(Registry, TfliteExtensionsResolve) {
  const auto fws = candidate_frameworks("assets/detector.tflite");
  ASSERT_EQ(fws.size(), 1u);
  EXPECT_EQ(fws[0], Framework::TfLite);
}

TEST(Registry, SharedExtensionsReturnAllCandidates) {
  // .pb is claimed by ONNX, Keras, Caffe2, PyTorch, TFLite and TF.
  const auto fws = candidate_frameworks("model.pb");
  EXPECT_EQ(fws.size(), 6u);
  EXPECT_NE(std::find(fws.begin(), fws.end(), Framework::TensorFlow), fws.end());
  EXPECT_NE(std::find(fws.begin(), fws.end(), Framework::TfLite), fws.end());
}

TEST(Registry, DoubleExtensions) {
  const auto pth_tar = candidate_frameworks("weights.pth.tar");
  ASSERT_FALSE(pth_tar.empty());
  EXPECT_NE(std::find(pth_tar.begin(), pth_tar.end(), Framework::PyTorch),
            pth_tar.end());
  const auto cfg = candidate_frameworks("net.cfg.ncnn");
  ASSERT_EQ(cfg.size(), 1u);
  EXPECT_EQ(cfg[0], Framework::Ncnn);
}

TEST(Registry, CaseInsensitive) {
  EXPECT_TRUE(is_candidate_model_file("Model.TFLITE"));
  EXPECT_TRUE(is_candidate_model_file("NET.PARAM"));
}

TEST(Registry, NonModelFilesRejected) {
  EXPECT_FALSE(is_candidate_model_file("res/drawable/icon.png"));
  EXPECT_FALSE(is_candidate_model_file("classes.dex"));
  EXPECT_FALSE(is_candidate_model_file("noextension"));
  EXPECT_FALSE(is_candidate_model_file("lib/arm64-v8a/libfoo.so"));
}

TEST(Registry, EveryFrameworkHasAName) {
  for (const auto& entry : format_table()) {
    EXPECT_STRNE(framework_name(entry.framework), "?");
  }
}

TEST(Registry, SnpeDlc) {
  const auto fws = candidate_frameworks("model.dlc");
  ASSERT_EQ(fws.size(), 1u);
  EXPECT_EQ(fws[0], Framework::Snpe);
}

}  // namespace
}  // namespace gauge::formats
