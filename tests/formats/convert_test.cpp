#include "formats/convert.hpp"

#include <gtest/gtest.h>

#include "formats/caffe.hpp"
#include "formats/ncnn.hpp"
#include "formats/tfl.hpp"
#include "nn/checksum.hpp"
#include "nn/describe.hpp"
#include "nn/zoo.hpp"

namespace gauge::formats {
namespace {

nn::Graph sample(const std::string& arch) {
  nn::ZooSpec spec;
  spec.archetype = arch;
  spec.resolution = 32;
  spec.seed = 6;
  return nn::build_model(spec);
}

TEST(Convert, TfliteToDlcPreservesModel) {
  // The SNPE-app pattern: one model shipped as both .tflite and .dlc.
  const nn::Graph g = sample("mobilenet");
  const auto dlc = convert_to(g, Framework::Snpe);
  ASSERT_TRUE(dlc.ok()) << dlc.error();
  EXPECT_TRUE(looks_like_dlc(dlc.value().primary));
  const auto back = read_dlc(dlc.value().primary);
  ASSERT_TRUE(back.ok()) << back.error();
  EXPECT_EQ(nn::model_checksum(back.value()), nn::model_checksum(g));
}

TEST(Convert, CaffeRoundtripThroughConverter) {
  const nn::Graph g = sample("audiocnn");
  ASSERT_TRUE(convertible_to(g, Framework::Caffe));
  const auto model = convert_to(g, Framework::Caffe);
  ASSERT_TRUE(model.ok()) << model.error();
  ASSERT_TRUE(model.value().has_weights_file);
  const auto back =
      read_caffe(std::string{util::as_view(model.value().primary)},
                 model.value().weights);
  ASSERT_TRUE(back.ok()) << back.error();
  // caffe stores weights as float; architecture identity is preserved.
  EXPECT_EQ(nn::architecture_checksum(back.value()),
            nn::architecture_checksum(g));
}

TEST(Convert, DialectLimitsAreEnforced) {
  const nn::Graph rnn = sample("wordrnn");
  EXPECT_FALSE(convertible_to(rnn, Framework::Caffe));
  EXPECT_FALSE(convertible_to(rnn, Framework::Ncnn));
  EXPECT_FALSE(convert_to(rnn, Framework::Caffe).ok());
  EXPECT_TRUE(convertible_to(rnn, Framework::TfLite));
  EXPECT_TRUE(convert_to(rnn, Framework::TfLite).ok());
}

TEST(Convert, NcnnTwinMatchesArchitecture) {
  const nn::Graph g = sample("unet");
  const auto model = convert_to(g, Framework::Ncnn);
  ASSERT_TRUE(model.ok()) << model.error();
  const auto back = read_ncnn(std::string{util::as_view(model.value().primary)},
                              model.value().weights);
  ASSERT_TRUE(back.ok()) << back.error();
  EXPECT_EQ(nn::architecture_checksum(back.value()),
            nn::architecture_checksum(g));
}

TEST(Convert, UnsupportedTargetsFail) {
  // ONNX gained a plugin (and with it a serialiser); PyTorch has none, so
  // the conversion matrix still rejects it.
  EXPECT_TRUE(convertible_to(sample("mobilenet"), Framework::Onnx));
  EXPECT_TRUE(convert_to(sample("mobilenet"), Framework::Onnx).ok());
  EXPECT_FALSE(convertible_to(sample("mobilenet"), Framework::PyTorch));
  EXPECT_FALSE(convert_to(sample("mobilenet"), Framework::PyTorch).ok());
}

TEST(Describe, SummarisesModel) {
  const nn::Graph g = sample("blazeface");
  const std::string text = nn::describe(g);
  EXPECT_NE(text.find("blazeface"), std::string::npos);
  EXPECT_NE(text.find("conv2d"), std::string::npos);
  EXPECT_NE(text.find("MFLOPs"), std::string::npos);
  // One row per layer plus headers/rules.
  EXPECT_GT(std::count(text.begin(), text.end(), '\n'), static_cast<long>(g.size()));
}

TEST(Describe, EmptyOnInvalidGraph) {
  nn::Graph empty;
  EXPECT_TRUE(nn::describe(empty).empty());
}

}  // namespace
}  // namespace gauge::formats
