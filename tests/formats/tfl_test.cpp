#include "formats/tfl.hpp"

#include <gtest/gtest.h>

#include "nn/checksum.hpp"
#include "nn/interp.hpp"
#include "nn/zoo.hpp"

namespace gauge::formats {
namespace {

nn::Graph sample(const std::string& arch, std::uint64_t seed = 1) {
  nn::ZooSpec spec;
  spec.archetype = arch;
  spec.resolution = 32;
  spec.seed = seed;
  return nn::build_model(spec);
}

TEST(Tfl, MagicAtOffset4) {
  const auto bytes = write_tfl(sample("sensormlp"));
  ASSERT_GE(bytes.size(), 8u);
  EXPECT_EQ(bytes[4], 'T');
  EXPECT_EQ(bytes[5], 'F');
  EXPECT_EQ(bytes[6], 'L');
  EXPECT_EQ(bytes[7], '3');
  EXPECT_TRUE(looks_like_tfl(bytes));
}

TEST(Tfl, RoundtripPreservesChecksum) {
  const nn::Graph original = sample("mobilenet", 7);
  const auto bytes = write_tfl(original);
  const auto restored = read_tfl(bytes);
  ASSERT_TRUE(restored.ok()) << restored.error();
  EXPECT_EQ(nn::model_checksum(restored.value()), nn::model_checksum(original));
  EXPECT_EQ(restored.value().name, original.name);
}

TEST(Tfl, RoundtripPreservesInference) {
  const nn::Graph original = sample("contournet", 9);
  const auto restored = read_tfl(write_tfl(original));
  ASSERT_TRUE(restored.ok()) << restored.error();

  auto inputs = nn::random_inputs(original, 33);
  ASSERT_TRUE(inputs.ok());
  nn::Interpreter a{original};
  nn::Interpreter b{restored.value()};
  const auto oa = a.run(inputs.value());
  const auto ob = b.run(inputs.value());
  ASSERT_TRUE(oa.ok() && ob.ok());
  ASSERT_EQ(oa.value()[0].f32().size(), ob.value()[0].f32().size());
  for (std::size_t i = 0; i < oa.value()[0].f32().size(); ++i) {
    EXPECT_FLOAT_EQ(oa.value()[0].f32()[i], ob.value()[0].f32()[i]);
  }
}

TEST(Tfl, QuantizedModelRoundtrips) {
  nn::Graph g = sample("mobilenet", 3);
  nn::quantize_weights(g);
  const auto restored = read_tfl(write_tfl(g));
  ASSERT_TRUE(restored.ok()) << restored.error();
  EXPECT_EQ(nn::model_checksum(restored.value()), nn::model_checksum(g));
  for (const auto& layer : restored.value().layers()) {
    if (layer.has_weights()) {
      EXPECT_EQ(layer.weight_bits, 8);
    }
  }
}

TEST(Tfl, RejectsMissingMagic) {
  util::Bytes junk = util::to_bytes("not a tfl model at all");
  EXPECT_FALSE(looks_like_tfl(junk));
  EXPECT_FALSE(read_tfl(junk).ok());
}

TEST(Tfl, RejectsTruncated) {
  auto bytes = write_tfl(sample("sensormlp"));
  bytes.resize(bytes.size() / 2);
  EXPECT_TRUE(looks_like_tfl(bytes));  // signature survives truncation...
  EXPECT_FALSE(read_tfl(bytes).ok());  // ...but the full parse must fail
}

TEST(Tfl, RejectsCorruptLayerType) {
  auto bytes = write_tfl(sample("sensormlp"));
  // Layer records start after version+magic+name+count; smash a byte deep in.
  bytes[bytes.size() / 2] = 0xFF;
  const auto result = read_tfl(bytes);
  // Either a parse failure or a graph that still validates — never a crash.
  if (result.ok()) {
    EXPECT_TRUE(result.value().validate().ok());
  }
}

TEST(Tfl, EncryptedBytesFailValidation) {
  // The paper: "encrypted and obfuscated models do not match such validation
  // rules". XOR the payload like an obfuscating packer would.
  auto bytes = write_tfl(sample("mobilenet"));
  for (auto& b : bytes) b ^= 0x5A;
  EXPECT_FALSE(looks_like_tfl(bytes));
  EXPECT_FALSE(read_tfl(bytes).ok());
}

class TflAllArchetypes : public ::testing::TestWithParam<std::string> {};

TEST_P(TflAllArchetypes, Roundtrips) {
  const nn::Graph g = sample(GetParam(), 21);
  const auto restored = read_tfl(write_tfl(g));
  ASSERT_TRUE(restored.ok()) << restored.error();
  EXPECT_EQ(nn::model_checksum(restored.value()), nn::model_checksum(g));
}

INSTANTIATE_TEST_SUITE_P(Zoo, TflAllArchetypes,
                         ::testing::ValuesIn(nn::zoo_archetypes()));

}  // namespace
}  // namespace gauge::formats
