// Corruption-robustness sweeps: the extraction pipeline feeds parsers with
// whatever bytes ship inside APKs, so every reader must survive arbitrary
// mutation/truncation — returning an error or a still-valid graph, never
// crashing or hanging.
#include <gtest/gtest.h>

#include "android/apk.hpp"
#include "android/dex.hpp"
#include "formats/caffe.hpp"
#include "formats/ncnn.hpp"
#include "formats/tfl.hpp"
#include "nn/zoo.hpp"
#include "util/rng.hpp"
#include "zipfile/zip.hpp"

namespace gauge {
namespace {

nn::Graph sample_graph(const std::string& arch) {
  nn::ZooSpec spec;
  spec.archetype = arch;
  spec.resolution = 32;
  spec.seed = 3;
  return nn::build_model(spec);
}

// Applies `mutations` random byte flips and possibly a truncation.
util::Bytes mutate(util::Bytes bytes, util::Rng& rng, int mutations) {
  if (bytes.empty()) return bytes;
  for (int i = 0; i < mutations; ++i) {
    bytes[rng.uniform_u64(bytes.size())] ^=
        static_cast<std::uint8_t>(1 + rng.uniform_u64(255));
  }
  if (rng.bernoulli(0.3)) {
    bytes.resize(rng.uniform_u64(bytes.size() + 1));
  }
  return bytes;
}

class ParserFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ParserFuzz, TflNeverCrashes) {
  util::Rng rng{static_cast<std::uint64_t>(1000 + GetParam())};
  const auto original = formats::write_tfl(sample_graph("mobilenet"));
  for (int round = 0; round < 20; ++round) {
    const auto bytes = mutate(original, rng, 1 + static_cast<int>(rng.uniform_u64(16)));
    const auto result = formats::read_tfl(bytes);
    if (result.ok()) {
      EXPECT_TRUE(result.value().validate().ok());
    }
  }
}

TEST_P(ParserFuzz, CaffeNeverCrashes) {
  util::Rng rng{static_cast<std::uint64_t>(2000 + GetParam())};
  const auto model = formats::write_caffe(sample_graph("audiocnn"));
  ASSERT_TRUE(model.ok());
  const auto proto = util::to_bytes(model.value().prototxt);
  for (int round = 0; round < 20; ++round) {
    const auto bad_proto = mutate(proto, rng, 1 + static_cast<int>(rng.uniform_u64(8)));
    const auto bad_weights =
        mutate(model.value().caffemodel, rng, 1 + static_cast<int>(rng.uniform_u64(8)));
    const auto result = formats::read_caffe(
        std::string{util::as_view(bad_proto)}, bad_weights);
    if (result.ok()) {
      EXPECT_TRUE(result.value().validate().ok());
    }
  }
}

TEST_P(ParserFuzz, NcnnNeverCrashes) {
  util::Rng rng{static_cast<std::uint64_t>(3000 + GetParam())};
  const auto model = formats::write_ncnn(sample_graph("unet"));
  ASSERT_TRUE(model.ok());
  const auto param = util::to_bytes(model.value().param);
  for (int round = 0; round < 20; ++round) {
    const auto bad_param = mutate(param, rng, 1 + static_cast<int>(rng.uniform_u64(8)));
    const auto bad_bin =
        mutate(model.value().bin, rng, 1 + static_cast<int>(rng.uniform_u64(8)));
    const auto result =
        formats::read_ncnn(std::string{util::as_view(bad_param)}, bad_bin);
    if (result.ok()) {
      EXPECT_TRUE(result.value().validate().ok());
    }
  }
}

TEST_P(ParserFuzz, ZipNeverCrashes) {
  util::Rng rng{static_cast<std::uint64_t>(4000 + GetParam())};
  zipfile::ZipWriter writer;
  writer.add("a/b.txt", std::string_view{"the quick brown fox"});
  writer.add("c.bin", std::string_view{std::string(500, 'x')});
  const auto original = writer.finish();
  for (int round = 0; round < 20; ++round) {
    auto reader = zipfile::ZipReader::open(
        mutate(original, rng, 1 + static_cast<int>(rng.uniform_u64(8))));
    if (reader.ok()) {
      for (const auto& entry : reader.value().entries()) {
        (void)reader.value().read(entry.name);  // must not crash
      }
    }
  }
}

TEST_P(ParserFuzz, DexNeverCrashes) {
  util::Rng rng{static_cast<std::uint64_t>(5000 + GetParam())};
  android::DexFile dex;
  dex.classes = {"Lcom/a/B;", "Lcom/a/C;"};
  dex.strings = {"https://example.com", "const"};
  const auto original = android::write_dex(dex);
  for (int round = 0; round < 20; ++round) {
    const auto result = android::read_dex(
        mutate(original, rng, 1 + static_cast<int>(rng.uniform_u64(8))));
    if (result.ok()) {
      (void)android::to_smali(result.value());
    }
  }
}

TEST_P(ParserFuzz, ApkNeverCrashes) {
  util::Rng rng{static_cast<std::uint64_t>(6000 + GetParam())};
  android::ApkSpec spec;
  spec.manifest.package = "com.fuzz.app";
  spec.dex.classes = {"Lcom/fuzz/app/Main;"};
  spec.files.emplace_back("assets/m.tflite",
                          formats::write_tfl(sample_graph("sensormlp")));
  const auto original = android::build_apk(spec);
  for (int round = 0; round < 10; ++round) {
    auto apk = android::Apk::open(
        mutate(original, rng, 1 + static_cast<int>(rng.uniform_u64(8))));
    if (apk.ok()) {
      for (const auto& name : apk.value().entry_names()) {
        (void)apk.value().read(name);
      }
      (void)apk.value().native_libs();
    }
  }
}

TEST_P(ParserFuzz, PureGarbageRejectedEverywhere) {
  util::Rng rng{static_cast<std::uint64_t>(7000 + GetParam())};
  util::Bytes garbage(256 + rng.uniform_u64(4096));
  for (auto& b : garbage) b = static_cast<std::uint8_t>(rng.uniform_u64(256));
  EXPECT_FALSE(formats::read_tfl(garbage).ok());
  EXPECT_FALSE(formats::read_dlc(garbage).ok());
  EXPECT_FALSE(formats::read_tf_pb(garbage).ok());
  EXPECT_FALSE(android::read_dex(garbage).ok());
  EXPECT_FALSE(
      formats::read_caffe(std::string{util::as_view(garbage)}, garbage).ok());
  EXPECT_FALSE(
      formats::read_ncnn(std::string{util::as_view(garbage)}, garbage).ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz, ::testing::Range(0, 8));

// Crafted (not random) hostile archives: each corpus models a known attack
// on zip readers. All must surface as clean errors or hidden entries with
// the matching classification — never a crash, hang or OOM.

// Returns the offset of the `index`-th central-directory record.
std::size_t cd_record_offset(const util::Bytes& zip, int index) {
  int seen = 0;
  for (std::size_t pos = 0; pos + 4 <= zip.size(); ++pos) {
    if (zip[pos] == 0x50 && zip[pos + 1] == 0x4b && zip[pos + 2] == 0x01 &&
        zip[pos + 3] == 0x02) {
      if (seen++ == index) return pos;
    }
  }
  ADD_FAILURE() << "central directory record " << index << " not found";
  return 0;
}

void patch_u32(util::Bytes& zip, std::size_t pos, std::uint32_t value) {
  ASSERT_LE(pos + 4, zip.size());
  zip[pos] = static_cast<std::uint8_t>(value);
  zip[pos + 1] = static_cast<std::uint8_t>(value >> 8);
  zip[pos + 2] = static_cast<std::uint8_t>(value >> 16);
  zip[pos + 3] = static_cast<std::uint8_t>(value >> 24);
}

util::Bytes compressible_zip(const std::string& name) {
  zipfile::ZipWriter writer;
  writer.add(name, std::string_view{std::string(4096, 'a')},
             zipfile::Method::Deflate);
  return writer.finish();
}

TEST(HostileZip, DeclaredSizeBombRejectedBeforeAllocation) {
  // A classic bomb declares a huge inflated size in the (attacker
  // controlled) central directory. usize sits at +24 in the CD record.
  auto zip = compressible_zip("assets/huge.bin");
  patch_u32(zip, cd_record_offset(zip, 0) + 24, 0xf0000000u);  // ~3.75 GiB
  auto reader = zipfile::ZipReader::open(std::move(zip));
  ASSERT_TRUE(reader.ok()) << reader.error();
  const auto data = reader.value().read("assets/huge.bin");
  ASSERT_FALSE(data.ok());
  EXPECT_TRUE(zipfile::is_zip_bomb_error(data.error())) << data.error();
}

TEST(HostileZip, CompressionRatioCapTrips) {
  // 4096 'a' bytes deflate to a handful — with a tight ratio cap (and the
  // small-entry floor lowered so it applies) the entry classifies as a
  // bomb even though its absolute size is harmless.
  zipfile::ReadLimits limits;
  limits.max_compression_ratio = 2;
  limits.ratio_floor_bytes = 0;
  auto reader = zipfile::ZipReader::open(compressible_zip("a.bin"), limits);
  ASSERT_TRUE(reader.ok());
  const auto data = reader.value().read("a.bin");
  ASSERT_FALSE(data.ok());
  EXPECT_TRUE(zipfile::is_zip_bomb_error(data.error())) << data.error();
}

TEST(HostileZip, RatioFloorSparesSmallRepetitiveEntries) {
  // Legitimate tiny payloads (manifests, string tables) routinely deflate
  // past 100:1; below the floor the ratio cap must not fire.
  auto reader = zipfile::ZipReader::open(compressible_zip("a.bin"));
  ASSERT_TRUE(reader.ok());
  const auto data = reader.value().read("a.bin");
  ASSERT_TRUE(data.ok()) << data.error();
  EXPECT_EQ(data.value().size(), 4096u);
}

TEST(HostileZip, EntrySizeCapTrips) {
  zipfile::ReadLimits limits;
  limits.max_entry_bytes = 100;
  auto reader = zipfile::ZipReader::open(compressible_zip("a.bin"), limits);
  ASSERT_TRUE(reader.ok());
  const auto data = reader.value().read("a.bin");
  ASSERT_FALSE(data.ok());
  EXPECT_TRUE(zipfile::is_zip_bomb_error(data.error())) << data.error();
}

TEST(HostileZip, OrdinaryReadFailureIsNotClassifiedAsBomb) {
  auto reader = zipfile::ZipReader::open(compressible_zip("a.bin"));
  ASSERT_TRUE(reader.ok());
  const auto missing = reader.value().read("nope.bin");
  ASSERT_FALSE(missing.ok());
  EXPECT_FALSE(zipfile::is_zip_bomb_error(missing.error()));
}

TEST(HostileZip, TraversalAndAbsoluteNamesHiddenNotFatal) {
  zipfile::ZipWriter writer;
  writer.add("assets/good.tflite", std::string_view{"fine"});
  writer.add("../../etc/passwd", std::string_view{"evil"});
  writer.add("/abs/path.so", std::string_view{"evil"});
  writer.add("a\\b.dll", std::string_view{"evil"});
  writer.add("c:/windows/evil", std::string_view{"evil"});
  writer.add("nested/./sneaky", std::string_view{"evil"});
  auto reader = zipfile::ZipReader::open(writer.finish());
  ASSERT_TRUE(reader.ok()) << reader.error();
  EXPECT_EQ(reader.value().rejected_entry_names(), 5u);
  ASSERT_EQ(reader.value().entries().size(), 1u);
  EXPECT_EQ(reader.value().entries()[0].name, "assets/good.tflite");
  const auto good = reader.value().read("assets/good.tflite");
  ASSERT_TRUE(good.ok());
  EXPECT_FALSE(reader.value().contains("../../etc/passwd"));
}

TEST(HostileZip, SafeEntryNamePredicate) {
  EXPECT_TRUE(zipfile::safe_entry_name("assets/models/m.tflite"));
  EXPECT_TRUE(zipfile::safe_entry_name("a..b/file..txt"));  // dots in names ok
  EXPECT_FALSE(zipfile::safe_entry_name(""));
  EXPECT_FALSE(zipfile::safe_entry_name("/etc/passwd"));
  EXPECT_FALSE(zipfile::safe_entry_name("../up"));
  EXPECT_FALSE(zipfile::safe_entry_name("a/../b"));
  EXPECT_FALSE(zipfile::safe_entry_name("a/."));
  EXPECT_FALSE(zipfile::safe_entry_name("a\\b"));
  EXPECT_FALSE(zipfile::safe_entry_name("C:/evil"));
  EXPECT_FALSE(zipfile::safe_entry_name(std::string_view{"a\0b", 3}));
}

TEST(HostileZip, TruncatedEocdRejected) {
  auto zip = compressible_zip("a.bin");
  for (const std::size_t cut : {std::size_t{1}, std::size_t{8},
                                std::size_t{21}}) {
    util::Bytes truncated{zip.begin(),
                          zip.end() - static_cast<std::ptrdiff_t>(cut)};
    EXPECT_FALSE(zipfile::ZipReader::open(std::move(truncated)).ok()) << cut;
  }
  EXPECT_FALSE(zipfile::ZipReader::open(util::Bytes{}).ok());
}

TEST(HostileZip, OverlappingCentralDirectoryRejected) {
  zipfile::ZipWriter writer;
  writer.add("first.bin", std::string_view{std::string(64, 'x')});
  writer.add("second.bin", std::string_view{std::string(64, 'y')});
  auto zip = writer.finish();
  // Point the second CD record's local-header offset (at +42) at the first
  // entry's bytes: two rows aliasing the same region.
  patch_u32(zip, cd_record_offset(zip, 1) + 42, 0);
  const auto reader = zipfile::ZipReader::open(std::move(zip));
  ASSERT_FALSE(reader.ok());
  EXPECT_NE(reader.error().find("overlapping"), std::string::npos);
}

TEST(HostileZip, BadCrcRejectedOnRead) {
  // Stored entry: no inflation caps in the way, the CRC check must fire.
  zipfile::ZipWriter writer;
  writer.add("a.bin", std::string_view{std::string(256, 'q')},
             zipfile::Method::Store);
  auto zip = writer.finish();
  patch_u32(zip, cd_record_offset(zip, 0) + 16, 0xdeadbeefu);  // crc at +16
  auto reader = zipfile::ZipReader::open(std::move(zip));
  ASSERT_TRUE(reader.ok()) << reader.error();
  const auto data = reader.value().read("a.bin");
  ASSERT_FALSE(data.ok());
  EXPECT_NE(data.error().find("CRC"), std::string::npos);
  EXPECT_FALSE(zipfile::is_zip_bomb_error(data.error()));
}

TEST(HostileZip, ZeroSizeWithNonzeroCompressedRejected) {
  // usize=0 with a non-empty payload: the inflate/store result can never
  // match the declared size, and must fail cleanly rather than crash.
  for (const auto method : {zipfile::Method::Store, zipfile::Method::Deflate}) {
    zipfile::ZipWriter writer;
    writer.add("z.bin", std::string_view{std::string(256, 'q')}, method);
    auto zip = writer.finish();
    const std::size_t cd = cd_record_offset(zip, 0);
    patch_u32(zip, cd + 24, 0);  // declared uncompressed size -> 0
    auto reader = zipfile::ZipReader::open(std::move(zip));
    ASSERT_TRUE(reader.ok()) << reader.error();
    const auto data = reader.value().read("z.bin");
    EXPECT_FALSE(data.ok());
  }
}

}  // namespace
}  // namespace gauge
