// Corruption-robustness sweeps: the extraction pipeline feeds parsers with
// whatever bytes ship inside APKs, so every reader must survive arbitrary
// mutation/truncation — returning an error or a still-valid graph, never
// crashing or hanging.
#include <gtest/gtest.h>

#include "android/apk.hpp"
#include "android/dex.hpp"
#include "formats/caffe.hpp"
#include "formats/ncnn.hpp"
#include "formats/tfl.hpp"
#include "nn/zoo.hpp"
#include "util/rng.hpp"
#include "zipfile/zip.hpp"

namespace gauge {
namespace {

nn::Graph sample_graph(const std::string& arch) {
  nn::ZooSpec spec;
  spec.archetype = arch;
  spec.resolution = 32;
  spec.seed = 3;
  return nn::build_model(spec);
}

// Applies `mutations` random byte flips and possibly a truncation.
util::Bytes mutate(util::Bytes bytes, util::Rng& rng, int mutations) {
  if (bytes.empty()) return bytes;
  for (int i = 0; i < mutations; ++i) {
    bytes[rng.uniform_u64(bytes.size())] ^=
        static_cast<std::uint8_t>(1 + rng.uniform_u64(255));
  }
  if (rng.bernoulli(0.3)) {
    bytes.resize(rng.uniform_u64(bytes.size() + 1));
  }
  return bytes;
}

class ParserFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ParserFuzz, TflNeverCrashes) {
  util::Rng rng{static_cast<std::uint64_t>(1000 + GetParam())};
  const auto original = formats::write_tfl(sample_graph("mobilenet"));
  for (int round = 0; round < 20; ++round) {
    const auto bytes = mutate(original, rng, 1 + static_cast<int>(rng.uniform_u64(16)));
    const auto result = formats::read_tfl(bytes);
    if (result.ok()) {
      EXPECT_TRUE(result.value().validate().ok());
    }
  }
}

TEST_P(ParserFuzz, CaffeNeverCrashes) {
  util::Rng rng{static_cast<std::uint64_t>(2000 + GetParam())};
  const auto model = formats::write_caffe(sample_graph("audiocnn"));
  ASSERT_TRUE(model.ok());
  const auto proto = util::to_bytes(model.value().prototxt);
  for (int round = 0; round < 20; ++round) {
    const auto bad_proto = mutate(proto, rng, 1 + static_cast<int>(rng.uniform_u64(8)));
    const auto bad_weights =
        mutate(model.value().caffemodel, rng, 1 + static_cast<int>(rng.uniform_u64(8)));
    const auto result = formats::read_caffe(
        std::string{util::as_view(bad_proto)}, bad_weights);
    if (result.ok()) {
      EXPECT_TRUE(result.value().validate().ok());
    }
  }
}

TEST_P(ParserFuzz, NcnnNeverCrashes) {
  util::Rng rng{static_cast<std::uint64_t>(3000 + GetParam())};
  const auto model = formats::write_ncnn(sample_graph("unet"));
  ASSERT_TRUE(model.ok());
  const auto param = util::to_bytes(model.value().param);
  for (int round = 0; round < 20; ++round) {
    const auto bad_param = mutate(param, rng, 1 + static_cast<int>(rng.uniform_u64(8)));
    const auto bad_bin =
        mutate(model.value().bin, rng, 1 + static_cast<int>(rng.uniform_u64(8)));
    const auto result =
        formats::read_ncnn(std::string{util::as_view(bad_param)}, bad_bin);
    if (result.ok()) {
      EXPECT_TRUE(result.value().validate().ok());
    }
  }
}

TEST_P(ParserFuzz, ZipNeverCrashes) {
  util::Rng rng{static_cast<std::uint64_t>(4000 + GetParam())};
  zipfile::ZipWriter writer;
  writer.add("a/b.txt", std::string_view{"the quick brown fox"});
  writer.add("c.bin", std::string_view{std::string(500, 'x')});
  const auto original = writer.finish();
  for (int round = 0; round < 20; ++round) {
    auto reader = zipfile::ZipReader::open(
        mutate(original, rng, 1 + static_cast<int>(rng.uniform_u64(8))));
    if (reader.ok()) {
      for (const auto& entry : reader.value().entries()) {
        (void)reader.value().read(entry.name);  // must not crash
      }
    }
  }
}

TEST_P(ParserFuzz, DexNeverCrashes) {
  util::Rng rng{static_cast<std::uint64_t>(5000 + GetParam())};
  android::DexFile dex;
  dex.classes = {"Lcom/a/B;", "Lcom/a/C;"};
  dex.strings = {"https://example.com", "const"};
  const auto original = android::write_dex(dex);
  for (int round = 0; round < 20; ++round) {
    const auto result = android::read_dex(
        mutate(original, rng, 1 + static_cast<int>(rng.uniform_u64(8))));
    if (result.ok()) {
      (void)android::to_smali(result.value());
    }
  }
}

TEST_P(ParserFuzz, ApkNeverCrashes) {
  util::Rng rng{static_cast<std::uint64_t>(6000 + GetParam())};
  android::ApkSpec spec;
  spec.manifest.package = "com.fuzz.app";
  spec.dex.classes = {"Lcom/fuzz/app/Main;"};
  spec.files.emplace_back("assets/m.tflite",
                          formats::write_tfl(sample_graph("sensormlp")));
  const auto original = android::build_apk(spec);
  for (int round = 0; round < 10; ++round) {
    auto apk = android::Apk::open(
        mutate(original, rng, 1 + static_cast<int>(rng.uniform_u64(8))));
    if (apk.ok()) {
      for (const auto& name : apk.value().entry_names()) {
        (void)apk.value().read(name);
      }
      (void)apk.value().native_libs();
    }
  }
}

TEST_P(ParserFuzz, PureGarbageRejectedEverywhere) {
  util::Rng rng{static_cast<std::uint64_t>(7000 + GetParam())};
  util::Bytes garbage(256 + rng.uniform_u64(4096));
  for (auto& b : garbage) b = static_cast<std::uint8_t>(rng.uniform_u64(256));
  EXPECT_FALSE(formats::read_tfl(garbage).ok());
  EXPECT_FALSE(formats::read_dlc(garbage).ok());
  EXPECT_FALSE(formats::read_tf_pb(garbage).ok());
  EXPECT_FALSE(android::read_dex(garbage).ok());
  EXPECT_FALSE(
      formats::read_caffe(std::string{util::as_view(garbage)}, garbage).ok());
  EXPECT_FALSE(
      formats::read_ncnn(std::string{util::as_view(garbage)}, garbage).ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz, ::testing::Range(0, 8));

}  // namespace
}  // namespace gauge
