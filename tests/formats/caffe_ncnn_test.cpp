#include <gtest/gtest.h>

#include "formats/caffe.hpp"
#include "formats/ncnn.hpp"
#include "formats/tfl.hpp"
#include "formats/validate.hpp"
#include "nn/checksum.hpp"
#include "nn/interp.hpp"
#include "nn/zoo.hpp"

namespace gauge::formats {
namespace {

nn::Graph sample(const std::string& arch, std::uint64_t seed = 1) {
  nn::ZooSpec spec;
  spec.archetype = arch;
  spec.resolution = 32;
  spec.seed = seed;
  return nn::build_model(spec);
}

// ----------------------------------------------------------------- caffe

TEST(Caffe, DialectSupport) {
  // audiocnn is pure conv/pool/dense/act -> expressible.
  EXPECT_TRUE(caffe_supports(sample("audiocnn")));
  // mobilenet has depthwise convs -> not in the caffe dialect.
  EXPECT_FALSE(caffe_supports(sample("mobilenet")));
  // wordrnn has embedding/lstm -> no.
  EXPECT_FALSE(caffe_supports(sample("wordrnn")));
}

TEST(Caffe, WriteRejectsUnsupported) {
  EXPECT_FALSE(write_caffe(sample("mobilenet")).ok());
}

TEST(Caffe, PrototxtLooksLikeCaffe) {
  const auto model = write_caffe(sample("audiocnn"));
  ASSERT_TRUE(model.ok()) << model.error();
  EXPECT_TRUE(looks_like_prototxt(model.value().prototxt));
  EXPECT_NE(model.value().prototxt.find("layer {"), std::string::npos);
  EXPECT_NE(model.value().prototxt.find("type: \"Convolution\""),
            std::string::npos);
  EXPECT_TRUE(looks_like_caffemodel(model.value().caffemodel));
}

TEST(Caffe, RoundtripPreservesInference) {
  const nn::Graph original = sample("audiocnn", 5);
  const auto model = write_caffe(original);
  ASSERT_TRUE(model.ok()) << model.error();
  const auto restored = read_caffe(model.value().prototxt, model.value().caffemodel);
  ASSERT_TRUE(restored.ok()) << restored.error();

  auto inputs = nn::random_inputs(original, 55);
  ASSERT_TRUE(inputs.ok());
  nn::Interpreter a{original};
  nn::Interpreter b{restored.value()};
  const auto oa = a.run(inputs.value());
  const auto ob = b.run(inputs.value());
  ASSERT_TRUE(oa.ok()) << oa.error();
  ASSERT_TRUE(ob.ok()) << ob.error();
  for (std::size_t i = 0; i < oa.value()[0].f32().size(); ++i) {
    EXPECT_NEAR(oa.value()[0].f32()[i], ob.value()[0].f32()[i], 1e-5f);
  }
}

TEST(Caffe, SeparateWeightFileChecksumsDiffer) {
  // Two same-architecture models with different weights must share the
  // prototxt but differ in the caffemodel (paper's two-file checksum note).
  const auto m1 = write_caffe(sample("audiocnn", 1));
  const auto m2 = write_caffe(sample("audiocnn", 2));
  ASSERT_TRUE(m1.ok() && m2.ok());
  EXPECT_EQ(m1.value().prototxt, m2.value().prototxt);
  EXPECT_NE(m1.value().caffemodel, m2.value().caffemodel);
}

TEST(Caffe, RejectsGarbagePrototxt) {
  EXPECT_FALSE(read_caffe("definitely not caffe", {}).ok());
  EXPECT_FALSE(looks_like_prototxt("{\"json\": true}"));
}

TEST(Caffe, RejectsMismatchedWeights) {
  const auto model = write_caffe(sample("audiocnn"));
  ASSERT_TRUE(model.ok());
  const util::Bytes junk = util::to_bytes("XXXXjunkjunk");
  EXPECT_FALSE(read_caffe(model.value().prototxt, junk).ok());
}

TEST(Caffe, RejectsUnknownBottom) {
  const std::string bad =
      "name: \"x\"\n"
      "layer { name: \"r\" type: \"ReLU\" bottom: \"ghost\" top: \"r\" }\n";
  util::ByteWriter w;
  w.raw(std::string_view{kCaffeWeightsMagic, 4});
  w.u32(0);
  EXPECT_FALSE(read_caffe(bad, w.bytes()).ok());
}

// ------------------------------------------------------------------ ncnn

TEST(Ncnn, DialectSupport) {
  EXPECT_TRUE(ncnn_supports(sample("mobilenet")));
  EXPECT_TRUE(ncnn_supports(sample("unet")));
  EXPECT_FALSE(ncnn_supports(sample("wordrnn")));   // embedding/lstm/slice
  EXPECT_FALSE(ncnn_supports(sample("speechrnn"))); // lstm
}

TEST(Ncnn, ParamMagicFirstLine) {
  const auto model = write_ncnn(sample("mobilenet"));
  ASSERT_TRUE(model.ok()) << model.error();
  EXPECT_EQ(model.value().param.substr(0, 7), "7767517");
  EXPECT_TRUE(looks_like_ncnn_param(model.value().param));
}

TEST(Ncnn, RoundtripPreservesInference) {
  const nn::Graph original = sample("unet", 5);
  const auto model = write_ncnn(original);
  ASSERT_TRUE(model.ok()) << model.error();
  const auto restored = read_ncnn(model.value().param, model.value().bin);
  ASSERT_TRUE(restored.ok()) << restored.error();

  auto inputs = nn::random_inputs(original, 77);
  ASSERT_TRUE(inputs.ok());
  nn::Interpreter a{original};
  nn::Interpreter b{restored.value()};
  const auto oa = a.run(inputs.value());
  const auto ob = b.run(inputs.value());
  ASSERT_TRUE(oa.ok()) << oa.error();
  ASSERT_TRUE(ob.ok()) << ob.error();
  for (std::size_t i = 0; i < oa.value()[0].f32().size(); ++i) {
    EXPECT_NEAR(oa.value()[0].f32()[i], ob.value()[0].f32()[i], 1e-5f);
  }
}

TEST(Ncnn, RejectsBadMagic) {
  EXPECT_FALSE(looks_like_ncnn_param("1234567\n2 2\n"));
  EXPECT_FALSE(read_ncnn("1234567\n2 2\n", {}).ok());
}

TEST(Ncnn, RejectsTruncatedBin) {
  const auto model = write_ncnn(sample("mobilenet"));
  ASSERT_TRUE(model.ok());
  util::Bytes half{model.value().bin.begin(),
                   model.value().bin.begin() +
                       static_cast<std::ptrdiff_t>(model.value().bin.size() / 2)};
  EXPECT_FALSE(read_ncnn(model.value().param, half).ok());
}

TEST(Ncnn, RejectsUnknownBlob) {
  const std::string bad = "7767517\n1 1\nReLU r 1 1 ghost out\n";
  EXPECT_FALSE(read_ncnn(bad, {}).ok());
}

// ------------------------------------------------------------- validation

TEST(Validate, AcceptsRealModels) {
  const auto tfl = formats::write_tfl(sample("mobilenet"));
  EXPECT_EQ(validate_signature("assets/m.tflite", tfl), Framework::TfLite);

  const auto ncnn = write_ncnn(sample("mobilenet"));
  ASSERT_TRUE(ncnn.ok());
  EXPECT_EQ(validate_signature("assets/m.param",
                               util::as_span(ncnn.value().param)),
            Framework::Ncnn);

  const auto caffe = write_caffe(sample("audiocnn"));
  ASSERT_TRUE(caffe.ok());
  EXPECT_EQ(validate_signature("assets/m.prototxt",
                               util::as_span(caffe.value().prototxt)),
            Framework::Caffe);
  EXPECT_EQ(validate_signature("assets/m.caffemodel", caffe.value().caffemodel),
            Framework::Caffe);
}

TEST(Validate, RejectsWrongExtensionForContent) {
  const auto tfl = write_tfl(sample("mobilenet"));
  // Content is TFL but extension .png is not a candidate at all.
  EXPECT_FALSE(is_valid_model_file("icon.png", tfl));
}

TEST(Validate, RejectsCandidateWithWrongSignature) {
  // .pb is a candidate extension for 6 frameworks, but random bytes carry no
  // valid signature -> extraction failure (as in the paper).
  const util::Bytes junk = util::to_bytes("random protobuffer-ish bytes");
  EXPECT_FALSE(is_valid_model_file("frozen_graph.pb", junk));
  EXPECT_FALSE(is_valid_model_file("model.onnx", junk));
  EXPECT_FALSE(is_valid_model_file("model.json", junk));
}

TEST(Validate, RejectsEncryptedModel) {
  auto tfl = write_tfl(sample("mobilenet"));
  for (auto& b : tfl) b ^= 0xA7;
  EXPECT_FALSE(is_valid_model_file("assets/enc.tflite", tfl));
}

TEST(Validate, BinExtensionNeedsTflSignature) {
  // .bin is claimed by TFLite/ncnn/PyTorch; only a TFL3 signature validates
  // (ncnn .bin weight blobs are validated through their .param sibling).
  const auto tfl = write_tfl(sample("mobilenet"));
  EXPECT_EQ(validate_signature("weights.bin", tfl), Framework::TfLite);
  const auto ncnn = write_ncnn(sample("mobilenet"));
  ASSERT_TRUE(ncnn.ok());
  EXPECT_FALSE(is_valid_model_file("weights.bin", ncnn.value().bin));
}

}  // namespace
}  // namespace gauge::formats
