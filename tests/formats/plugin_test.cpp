// The FormatPlugin layer contract: complete enum coverage, longest-suffix
// extension matching, companion-path inverses, and a parameterised
// serialize -> validate -> parse round trip (plus negative bytes) that every
// registered plugin must survive.
#include "formats/plugin.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "nn/checksum.hpp"
#include "nn/zoo.hpp"
#include "util/bytes.hpp"

namespace gauge::formats {
namespace {

const PluginRegistry& registry() { return PluginRegistry::instance(); }

TEST(PluginRegistry, EveryEnumEntryIsPluginOrUnsupported) {
  std::set<Framework> covered;
  for (const auto* plugin : registry().plugins()) {
    EXPECT_TRUE(covered.insert(plugin->framework()).second)
        << "duplicate plugin for " << plugin->name();
  }
  for (const auto& entry : PluginRegistry::unsupported()) {
    EXPECT_TRUE(covered.insert(entry.framework).second)
        << entry.name << " is both a plugin and listed unsupported";
  }
  EXPECT_EQ(covered.size(), static_cast<std::size_t>(Framework::kCount));
}

TEST(PluginRegistry, SevenPluginsInChartOrder) {
  const auto ranked = registry().plugins_by_chart_rank();
  ASSERT_EQ(ranked.size(), 7u);
  std::vector<std::string> names;
  for (const auto* plugin : ranked) names.emplace_back(plugin->name());
  const std::vector<std::string> expected{"TFLite", "caffe", "ncnn", "TF",
                                          "SNPE",   "ONNX",  "MNN"};
  EXPECT_EQ(names, expected);
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    EXPECT_EQ(ranked[i]->chart_rank(), static_cast<int>(i));
  }
}

TEST(PluginRegistry, LongestSuffixWinsOverShorterExtension) {
  // ".cfg.ncnn" must beat the bare ".ncnn" (and anything matching ".cfg").
  EXPECT_EQ(registry().match_extension("net.cfg.ncnn"), ".cfg.ncnn");
  const auto cfg = registry().candidate_frameworks("net.cfg.ncnn");
  ASSERT_EQ(cfg.size(), 1u);
  EXPECT_EQ(cfg[0], Framework::Ncnn);

  EXPECT_EQ(registry().match_extension("net.weights.ncnn"), ".weights.ncnn");
  const auto weights = registry().candidate_frameworks("net.weights.ncnn");
  ASSERT_EQ(weights.size(), 1u);
  EXPECT_EQ(weights[0], Framework::Ncnn);
}

TEST(PluginRegistry, PbTxtAliasMatchesTensorFlowOnly) {
  // ".pb.txt" is an alias spelling of ".pbtxt": a candidate, but not one of
  // the published 69 table entries, and it must not fall back to the ".txt"
  // or ".pb" interpretations.
  EXPECT_EQ(registry().match_extension("graph.pb.txt"), ".pb.txt");
  const auto fws = registry().candidate_frameworks("graph.pb.txt");
  ASSERT_EQ(fws.size(), 1u);
  EXPECT_EQ(fws[0], Framework::TensorFlow);
  for (const auto& entry : registry().format_table()) {
    EXPECT_EQ(std::find(entry.extensions.begin(), entry.extensions.end(),
                        ".pb.txt"),
              entry.extensions.end());
  }
}

TEST(PluginRegistry, MatchingIsCaseInsensitiveAndBasenameScoped) {
  EXPECT_EQ(registry().match_extension("ASSETS/NET.CFG.NCNN"), ".cfg.ncnn");
  EXPECT_EQ(registry().match_extension("Model.TFLITE"), ".tflite");
  // A bare extension with no stem is not a candidate file.
  EXPECT_EQ(registry().match_extension(".tflite"), "");
  EXPECT_EQ(registry().match_extension("dir.param/readme"), "");
}

TEST(PluginRegistry, CompanionAndInverseAgree) {
  for (const auto* plugin : registry().plugins()) {
    const std::string primary =
        "assets/models/net" + plugin->primary_extension();
    const std::string weights = plugin->companion(primary);
    if (weights.empty()) continue;  // single-file format
    EXPECT_EQ(plugin->companion_primary(weights), primary)
        << plugin->name() << ": " << weights;
    // A weights sibling never resolves to its own weights sibling.
    EXPECT_EQ(plugin->companion(weights), "") << plugin->name();
  }
  // Multi-dot pair resolves as a unit.
  const auto* ncnn = registry().find(Framework::Ncnn);
  ASSERT_NE(ncnn, nullptr);
  EXPECT_EQ(ncnn->companion("m.cfg.ncnn"), "m.weights.ncnn");
  EXPECT_EQ(ncnn->companion_primary("m.weights.ncnn"), "m.cfg.ncnn");
}

// Pick an archetype the plugin's dialect can express.
nn::Graph sample_for(const FormatPlugin& plugin) {
  for (const char* arch : {"audiocnn", "vggnet", "mobilenet"}) {
    nn::ZooSpec spec;
    spec.archetype = arch;
    spec.resolution = 32;
    spec.seed = 11;
    nn::Graph g = nn::build_model(spec);
    if (plugin.supports(g)) return g;
  }
  ADD_FAILURE() << plugin.name() << " supports none of the sample archetypes";
  return {};
}

TEST(PluginRoundTrip, SerializeValidateParsePreservesModel) {
  for (const auto* plugin : registry().plugins()) {
    SCOPED_TRACE(plugin->name());
    const nn::Graph g = sample_for(*plugin);
    const auto model = plugin->serialize(g);
    ASSERT_TRUE(model.ok()) << model.error();
    const std::string path = "m" + plugin->primary_extension();
    EXPECT_TRUE(plugin->validate(path, model.value().primary));
    const auto back = plugin->parse(
        model.value().primary,
        model.value().has_weights_file ? &model.value().weights : nullptr);
    ASSERT_TRUE(back.ok()) << back.error();
    EXPECT_EQ(nn::architecture_checksum(back.value()),
              nn::architecture_checksum(g));
    if (!model.value().has_weights_file) {
      // Single-file containers round-trip weights bit-exactly.
      EXPECT_EQ(nn::model_checksum(back.value()), nn::model_checksum(g));
    }
  }
}

TEST(PluginRoundTrip, TwoFileParsersFailWithoutWeights) {
  for (const auto* plugin : registry().plugins()) {
    const nn::Graph g = sample_for(*plugin);
    const auto model = plugin->serialize(g);
    ASSERT_TRUE(model.ok()) << plugin->name();
    if (!model.value().has_weights_file) continue;
    SCOPED_TRACE(plugin->name());
    EXPECT_FALSE(plugin->parse(model.value().primary, nullptr).ok());
  }
}

TEST(PluginRoundTrip, Int8WeightsSurviveOnnxAndMnn) {
  for (Framework fw : {Framework::Onnx, Framework::Mnn}) {
    const auto* plugin = registry().find(fw);
    ASSERT_NE(plugin, nullptr);
    SCOPED_TRACE(plugin->name());
    EXPECT_TRUE(plugin->quantizable());
    nn::ZooSpec spec;
    spec.archetype = "mobilenet";
    spec.resolution = 32;
    spec.seed = 17;
    nn::Graph g = nn::build_model(spec);
    nn::quantize_weights(g);
    const auto model = plugin->serialize(g);
    ASSERT_TRUE(model.ok()) << model.error();
    const auto back = plugin->parse(model.value().primary, nullptr);
    ASSERT_TRUE(back.ok()) << back.error();
    EXPECT_EQ(nn::model_checksum(back.value()), nn::model_checksum(g));
  }
}

TEST(PluginNegative, TruncatedAndGarbageBytesAreRejected) {
  const util::Bytes garbage(64, 0xA5);
  for (const auto* plugin : registry().plugins()) {
    SCOPED_TRACE(plugin->name());
    const std::string path = "m" + plugin->primary_extension();
    const nn::Graph g = sample_for(*plugin);
    const auto model = plugin->serialize(g);
    ASSERT_TRUE(model.ok());
    const util::Bytes truncated(model.value().primary.begin(),
                                model.value().primary.begin() + 3);
    EXPECT_FALSE(plugin->validate(path, truncated));
    EXPECT_FALSE(plugin->validate(path, garbage));
    EXPECT_FALSE(plugin->parse(garbage, nullptr).ok());
    // A half container must fail cleanly, never crash or hang.
    const util::Bytes half(
        model.value().primary.begin(),
        model.value().primary.begin() +
            static_cast<std::ptrdiff_t>(model.value().primary.size() / 2));
    const auto* weights =
        model.value().has_weights_file ? &model.value().weights : nullptr;
    EXPECT_FALSE(plugin->parse(half, weights).ok());
  }
}

TEST(PluginNegative, ValidateSignatureResolvesSharedExtensions) {
  // Seed-corpus shapes: a TF container named .pb must still win over the
  // other .pb claimants (ONNX is enum-first but its magic differs).
  const auto* tf = registry().find(Framework::TensorFlow);
  ASSERT_NE(tf, nullptr);
  const auto model = tf->serialize(sample_for(*tf));
  ASSERT_TRUE(model.ok());
  const auto fw = registry().validate_signature("graph.pb",
                                                model.value().primary);
  ASSERT_TRUE(fw.has_value());
  EXPECT_EQ(*fw, Framework::TensorFlow);

  const auto* onnx = registry().find(Framework::Onnx);
  ASSERT_NE(onnx, nullptr);
  const auto omodel = onnx->serialize(sample_for(*onnx));
  ASSERT_TRUE(omodel.ok());
  const auto ofw = registry().validate_signature("graph.pb",
                                                 omodel.value().primary);
  ASSERT_TRUE(ofw.has_value());
  EXPECT_EQ(*ofw, Framework::Onnx);
}

}  // namespace
}  // namespace gauge::formats
