#include "zipfile/deflate.hpp"

#include <gtest/gtest.h>

#include <string>

#include "util/rng.hpp"

namespace gauge::zipfile {
namespace {

util::Bytes roundtrip(const util::Bytes& raw) {
  const util::Bytes compressed = deflate(raw);
  auto restored = inflate(compressed);
  EXPECT_TRUE(restored.ok()) << (restored.ok() ? "" : restored.error());
  return restored.ok() ? std::move(restored).take() : util::Bytes{};
}

TEST(Deflate, EmptyInput) {
  EXPECT_EQ(roundtrip({}), util::Bytes{});
}

TEST(Deflate, ShortLiteralRun) {
  const util::Bytes raw = util::to_bytes("hello");
  EXPECT_EQ(roundtrip(raw), raw);
}

TEST(Deflate, RepetitiveDataCompresses) {
  util::Bytes raw;
  for (int i = 0; i < 500; ++i) {
    const auto chunk = util::to_bytes("the quick brown fox ");
    raw.insert(raw.end(), chunk.begin(), chunk.end());
  }
  const util::Bytes compressed = deflate(raw);
  EXPECT_LT(compressed.size(), raw.size() / 4);
  EXPECT_EQ(roundtrip(raw), raw);
}

TEST(Deflate, AllByteValues) {
  util::Bytes raw;
  for (int rep = 0; rep < 4; ++rep) {
    for (int b = 0; b < 256; ++b) raw.push_back(static_cast<std::uint8_t>(b));
  }
  EXPECT_EQ(roundtrip(raw), raw);
}

TEST(Deflate, OverlappingCopyDistanceOne) {
  // "aaaa..." exercises the classic distance-1 overlapping copy.
  const util::Bytes raw(1000, 'a');
  const util::Bytes compressed = deflate(raw);
  EXPECT_LT(compressed.size(), 32u);
  EXPECT_EQ(roundtrip(raw), raw);
}

TEST(Deflate, MaxMatchLengthBoundary) {
  // 258 is the longest encodable match; make runs around that length.
  for (std::size_t len : {257u, 258u, 259u, 516u, 1000u}) {
    util::Bytes raw = util::to_bytes("prefix-");
    raw.insert(raw.end(), len, 'z');
    raw.push_back('!');
    EXPECT_EQ(roundtrip(raw), raw) << "len=" << len;
  }
}

TEST(Deflate, InflateRejectsGarbage) {
  const util::Bytes junk{0x07, 0xFF, 0xFF, 0xFF, 0x12, 0x34};
  const auto result = inflate(junk);
  EXPECT_FALSE(result.ok());
}

TEST(Deflate, InflateRejectsReservedBlockType) {
  // BFINAL=1, BTYPE=3 (reserved): bits 1,1,1 -> byte 0b00000111.
  const util::Bytes bad{0x07};
  const auto result = inflate(bad);
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.error().find("reserved"), std::string::npos);
}

TEST(Deflate, InflateRespectsOutputCap) {
  const util::Bytes raw(10000, 'q');
  const util::Bytes compressed = deflate(raw);
  const auto capped = inflate(compressed, 100);
  EXPECT_FALSE(capped.ok());
}

TEST(Deflate, InflateStoredBlock) {
  // Hand-built stored block: BFINAL=1 BTYPE=00, aligned, LEN=3, NLEN=~3.
  util::Bytes stream{0x01, 0x03, 0x00, 0xFC, 0xFF, 'a', 'b', 'c'};
  const auto result = inflate(stream);
  ASSERT_TRUE(result.ok()) << result.error();
  EXPECT_EQ(util::as_view(result.value()), "abc");
}

TEST(Deflate, InflateStoredBlockBadNlen) {
  util::Bytes stream{0x01, 0x03, 0x00, 0x00, 0x00, 'a', 'b', 'c'};
  EXPECT_FALSE(inflate(stream).ok());
}

class DeflateRandomRoundtrip : public ::testing::TestWithParam<int> {};

TEST_P(DeflateRandomRoundtrip, Roundtrips) {
  util::Rng rng{static_cast<std::uint64_t>(GetParam())};
  // Mix of random and structured segments of random total size.
  util::Bytes raw;
  const auto segments = 1 + rng.uniform_u64(8);
  for (std::uint64_t s = 0; s < segments; ++s) {
    const auto len = rng.uniform_u64(4096);
    if (rng.bernoulli(0.5)) {
      for (std::uint64_t i = 0; i < len; ++i) {
        raw.push_back(static_cast<std::uint8_t>(rng.uniform_u64(256)));
      }
    } else {
      const auto byte = static_cast<std::uint8_t>(rng.uniform_u64(256));
      raw.insert(raw.end(), len, byte);
    }
  }
  EXPECT_EQ(roundtrip(raw), raw);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeflateRandomRoundtrip,
                         ::testing::Range(0, 20));

}  // namespace
}  // namespace gauge::zipfile
