// Tests for the dynamic-Huffman encoder path: roundtrips through our full
// inflate (which decodes dynamic blocks), size wins on skewed data, and the
// strategy chooser.
#include <gtest/gtest.h>

#include <string>

#include "util/rng.hpp"
#include "zipfile/deflate.hpp"

namespace gauge::zipfile {
namespace {

util::Bytes check_roundtrip(const util::Bytes& raw, const util::Bytes& stream) {
  auto restored = inflate(stream);
  EXPECT_TRUE(restored.ok()) << (restored.ok() ? "" : restored.error());
  if (restored.ok()) {
    EXPECT_EQ(restored.value(), raw);
  }
  return restored.ok() ? std::move(restored).take() : util::Bytes{};
}

TEST(DynamicDeflate, RoundtripsText) {
  util::Bytes raw;
  for (int i = 0; i < 200; ++i) {
    const auto chunk = util::to_bytes("layer { name: \"conv\" type: \"Convolution\" }\n");
    raw.insert(raw.end(), chunk.begin(), chunk.end());
  }
  check_roundtrip(raw, deflate_dynamic(raw));
}

TEST(DynamicDeflate, RoundtripsEmptyAndTiny) {
  check_roundtrip({}, deflate_dynamic({}));
  const util::Bytes one = util::to_bytes("x");
  check_roundtrip(one, deflate_dynamic(one));
  const util::Bytes two = util::to_bytes("ab");
  check_roundtrip(two, deflate_dynamic(two));
}

TEST(DynamicDeflate, RoundtripsNoMatchData) {
  // Strictly ascending bytes: no LZ77 matches, distance tree is synthetic.
  util::Bytes raw;
  for (int i = 0; i < 256; ++i) raw.push_back(static_cast<std::uint8_t>(i));
  check_roundtrip(raw, deflate_dynamic(raw));
}

TEST(DynamicDeflate, BeatsFixedOnSkewedAlphabet) {
  // Long runs of very few symbols: dynamic codes should be much shorter
  // than the fixed 8/9-bit literals.
  util::Bytes raw;
  util::Rng rng{17};
  for (int i = 0; i < 20000; ++i) {
    raw.push_back(rng.bernoulli(0.9) ? 'a' : 'b');
  }
  const auto fixed = deflate_fixed(raw);
  const auto dynamic = deflate_dynamic(raw);
  EXPECT_LT(dynamic.size(), fixed.size());
  check_roundtrip(raw, dynamic);
}

TEST(DynamicDeflate, ChooserPicksSmaller) {
  util::Bytes skewed;
  for (int i = 0; i < 50000; ++i) skewed.push_back('z');
  const auto chosen = deflate(skewed);
  const auto fixed = deflate_fixed(skewed);
  const auto dynamic = deflate_dynamic(skewed);
  EXPECT_EQ(chosen.size(), std::min(fixed.size(), dynamic.size()));
  check_roundtrip(skewed, chosen);
}

TEST(DynamicDeflate, HighEntropyStaysCorrect) {
  util::Rng rng{23};
  util::Bytes raw;
  for (int i = 0; i < 8192; ++i) {
    raw.push_back(static_cast<std::uint8_t>(rng.uniform_u64(256)));
  }
  check_roundtrip(raw, deflate_dynamic(raw));
  check_roundtrip(raw, deflate(raw));
}

class DynamicDeflateSweep : public ::testing::TestWithParam<int> {};

TEST_P(DynamicDeflateSweep, RandomStructuredPayloads) {
  util::Rng rng{static_cast<std::uint64_t>(9000 + GetParam())};
  util::Bytes raw;
  const auto segments = 1 + rng.uniform_u64(6);
  for (std::uint64_t s = 0; s < segments; ++s) {
    const auto len = rng.uniform_u64(6000);
    const int mode = static_cast<int>(rng.uniform_u64(3));
    for (std::uint64_t i = 0; i < len; ++i) {
      if (mode == 0) {
        raw.push_back(static_cast<std::uint8_t>(rng.uniform_u64(256)));
      } else if (mode == 1) {
        raw.push_back(static_cast<std::uint8_t>('a' + rng.uniform_u64(4)));
      } else {
        raw.push_back(static_cast<std::uint8_t>(i % 7));
      }
    }
  }
  check_roundtrip(raw, deflate_dynamic(raw));
  // The blended chooser never loses to either pure strategy.
  const auto chosen = deflate(raw);
  EXPECT_LE(chosen.size(),
            std::min(deflate_fixed(raw).size(), deflate_dynamic(raw).size()));
  check_roundtrip(raw, chosen);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DynamicDeflateSweep, ::testing::Range(0, 12));

}  // namespace
}  // namespace gauge::zipfile
