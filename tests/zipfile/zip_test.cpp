#include "zipfile/zip.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace gauge::zipfile {
namespace {

TEST(Zip, EmptyArchiveRoundtrips) {
  ZipWriter writer;
  const util::Bytes archive = writer.finish();
  auto reader = ZipReader::open(archive);
  ASSERT_TRUE(reader.ok()) << reader.error();
  EXPECT_TRUE(reader.value().entries().empty());
}

TEST(Zip, SingleEntryRoundtrip) {
  ZipWriter writer;
  writer.add("assets/model.tflite", std::string_view{"TFL3-payload-bytes"});
  auto reader = ZipReader::open(writer.finish());
  ASSERT_TRUE(reader.ok()) << reader.error();
  ASSERT_EQ(reader.value().entries().size(), 1u);
  EXPECT_TRUE(reader.value().contains("assets/model.tflite"));
  EXPECT_FALSE(reader.value().contains("assets/other"));
  auto data = reader.value().read("assets/model.tflite");
  ASSERT_TRUE(data.ok()) << data.error();
  EXPECT_EQ(util::as_view(data.value()), "TFL3-payload-bytes");
}

TEST(Zip, DeflateChosenForCompressibleEntries) {
  ZipWriter writer;
  const std::string repetitive(20000, 'x');
  writer.add("big.txt", repetitive);
  const util::Bytes archive = writer.finish();
  EXPECT_LT(archive.size(), repetitive.size() / 2);
  auto reader = ZipReader::open(archive);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader.value().entries()[0].method, Method::Deflate);
  auto data = reader.value().read("big.txt");
  ASSERT_TRUE(data.ok()) << data.error();
  EXPECT_EQ(data.value().size(), repetitive.size());
}

TEST(Zip, StoreChosenForIncompressibleEntries) {
  util::Rng rng{3};
  util::Bytes noise;
  for (int i = 0; i < 5000; ++i) {
    noise.push_back(static_cast<std::uint8_t>(rng.uniform_u64(256)));
  }
  ZipWriter writer;
  writer.add("noise.bin", noise);
  auto reader = ZipReader::open(writer.finish());
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader.value().entries()[0].method, Method::Store);
  auto data = reader.value().read("noise.bin");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data.value(), noise);
}

TEST(Zip, ForcedMethodsRespected) {
  ZipWriter writer;
  writer.add("a", std::string_view{"aaaaaaaaaaaaaaaaaaaaaaaa"}, Method::Store);
  writer.add("b", std::string_view{"x"}, Method::Deflate);
  auto reader = ZipReader::open(writer.finish());
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader.value().entries()[0].method, Method::Store);
  EXPECT_EQ(reader.value().entries()[1].method, Method::Deflate);
  EXPECT_EQ(util::as_view(reader.value().read("b").value()), "x");
}

TEST(Zip, ManyEntries) {
  ZipWriter writer;
  for (int i = 0; i < 200; ++i) {
    writer.add("f/" + std::to_string(i), "payload-" + std::to_string(i));
  }
  auto reader = ZipReader::open(writer.finish());
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader.value().entries().size(), 200u);
  auto data = reader.value().read("f/123");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(util::as_view(data.value()), "payload-123");
}

TEST(Zip, MissingEntryFails) {
  ZipWriter writer;
  writer.add("present", std::string_view{"x"});
  auto reader = ZipReader::open(writer.finish());
  ASSERT_TRUE(reader.ok());
  const auto missing = reader.value().read("absent");
  EXPECT_FALSE(missing.ok());
}

TEST(Zip, RejectsTruncatedArchive) {
  EXPECT_FALSE(ZipReader::open(util::to_bytes("PK")).ok());
  EXPECT_FALSE(ZipReader::open({}).ok());
}

TEST(Zip, RejectsCorruptedPayload) {
  ZipWriter writer;
  writer.add("data", std::string_view{"important-bytes-here"}, Method::Store);
  util::Bytes archive = writer.finish();
  // Flip a payload byte: name is 4 chars after a 30-byte local header.
  archive[34] ^= 0xFF;
  auto reader = ZipReader::open(std::move(archive));
  ASSERT_TRUE(reader.ok());
  const auto data = reader.value().read("data");
  EXPECT_FALSE(data.ok());
  EXPECT_NE(data.error().find("CRC"), std::string::npos);
}

TEST(Zip, BinarySafeEntries) {
  util::Bytes binary;
  for (int i = 0; i < 256; ++i) binary.push_back(static_cast<std::uint8_t>(i));
  ZipWriter writer;
  writer.add("bin", binary);
  auto reader = ZipReader::open(writer.finish());
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader.value().read("bin").value(), binary);
}

class ZipRandomRoundtrip : public ::testing::TestWithParam<int> {};

TEST_P(ZipRandomRoundtrip, ArchivesRandomFileSets) {
  util::Rng rng{static_cast<std::uint64_t>(100 + GetParam())};
  ZipWriter writer;
  std::vector<std::pair<std::string, util::Bytes>> files;
  const auto n = 1 + rng.uniform_u64(20);
  for (std::uint64_t i = 0; i < n; ++i) {
    util::Bytes content;
    const auto len = rng.uniform_u64(3000);
    for (std::uint64_t j = 0; j < len; ++j) {
      content.push_back(rng.bernoulli(0.7)
                            ? static_cast<std::uint8_t>('a')
                            : static_cast<std::uint8_t>(rng.uniform_u64(256)));
    }
    std::string name = "dir" + std::to_string(i % 3) + "/file" + std::to_string(i);
    writer.add(name, content);
    files.emplace_back(std::move(name), std::move(content));
  }
  auto reader = ZipReader::open(writer.finish());
  ASSERT_TRUE(reader.ok()) << reader.error();
  for (const auto& [name, content] : files) {
    auto data = reader.value().read(name);
    ASSERT_TRUE(data.ok()) << name << ": " << data.error();
    EXPECT_EQ(data.value(), content) << name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ZipRandomRoundtrip, ::testing::Range(0, 10));

}  // namespace
}  // namespace gauge::zipfile
