#include "util/hash.hpp"

#include <gtest/gtest.h>

#include <string>

#include "util/bytes.hpp"

namespace gauge::util {
namespace {

// RFC 1321 appendix test vectors.
TEST(Md5, Rfc1321Vectors) {
  EXPECT_EQ(Md5::hex(std::string_view{""}), "d41d8cd98f00b204e9800998ecf8427e");
  EXPECT_EQ(Md5::hex(std::string_view{"a"}), "0cc175b9c0f1b6a831c399e269772661");
  EXPECT_EQ(Md5::hex(std::string_view{"abc"}), "900150983cd24fb0d6963f7d28e17f72");
  EXPECT_EQ(Md5::hex(std::string_view{"message digest"}),
            "f96b697d7cb7938d525a2f31aaf161d0");
  EXPECT_EQ(Md5::hex(std::string_view{"abcdefghijklmnopqrstuvwxyz"}),
            "c3fcd3d76192e4007dfb496cca67e13b");
  EXPECT_EQ(
      Md5::hex(std::string_view{"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqr"
                                "stuvwxyz0123456789"}),
      "d174ab98d277d9f5a5611c2c9f419d9f");
  EXPECT_EQ(Md5::hex(std::string_view{
                "1234567890123456789012345678901234567890123456789012345678901"
                "2345678901234567890"}),
            "57edf4a22be3c955ac49da2e2107b67a");
}

TEST(Md5, StreamingMatchesOneShot) {
  const std::string payload(1000, 'x');
  Md5 streaming;
  for (std::size_t i = 0; i < payload.size(); i += 7) {
    streaming.update(std::string_view{payload}.substr(i, 7));
  }
  EXPECT_EQ(streaming.hex_digest(), Md5::hex(payload));
}

TEST(Md5, BoundaryLengths) {
  // Lengths around the 56-byte padding boundary and 64-byte block boundary.
  for (std::size_t len : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    const std::string payload(len, 'b');
    Md5 streaming;
    streaming.update(payload);
    EXPECT_EQ(streaming.hex_digest(), Md5::hex(payload)) << "len=" << len;
  }
}

TEST(Crc32, KnownVectors) {
  EXPECT_EQ(crc32(std::string_view{""}), 0u);
  EXPECT_EQ(crc32(std::string_view{"123456789"}), 0xCBF43926u);
  EXPECT_EQ(crc32(std::string_view{"The quick brown fox jumps over the lazy dog"}),
            0x414FA339u);
}

TEST(Crc32, SeedChaining) {
  const std::string whole = "hello world";
  const std::uint32_t once = crc32(whole);
  const std::uint32_t first = crc32(std::string_view{"hello "});
  const std::uint32_t chained = crc32(as_span(std::string_view{"world"}), first);
  EXPECT_EQ(chained, once);
}

TEST(Fnv1a, DistinctInputsDistinctHashes) {
  EXPECT_NE(fnv1a64("model_a.tflite"), fnv1a64("model_b.tflite"));
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
}

TEST(ToHex, RendersBytes) {
  const std::uint8_t data[] = {0x00, 0xab, 0xff};
  EXPECT_EQ(to_hex(data), "00abff");
}

}  // namespace
}  // namespace gauge::util
