#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace gauge::util {
namespace {

TEST(Stats, MeanVarianceStdev) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(xs), 5.0);
  EXPECT_DOUBLE_EQ(variance(xs), 4.0);
  EXPECT_DOUBLE_EQ(stdev(xs), 2.0);
}

TEST(Stats, EmptyInputsAreSafe) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(stdev({}), 0.0);
  EXPECT_DOUBLE_EQ(percentile({}, 50.0), 0.0);
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 2.5);
  EXPECT_DOUBLE_EQ(median(xs), 2.5);
}

TEST(Stats, GeomeanOfPowers) {
  const std::vector<double> xs{1.0, 10.0, 100.0};
  EXPECT_NEAR(geomean(xs), 10.0, 1e-9);
}

TEST(Ecdf, StepFunction) {
  Ecdf ecdf{{1.0, 2.0, 3.0, 4.0}};
  EXPECT_DOUBLE_EQ(ecdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(ecdf(1.0), 0.25);
  EXPECT_DOUBLE_EQ(ecdf(2.5), 0.5);
  EXPECT_DOUBLE_EQ(ecdf(4.0), 1.0);
  EXPECT_DOUBLE_EQ(ecdf(9.0), 1.0);
}

TEST(Ecdf, QuantileInvertsRoughly) {
  std::vector<double> xs;
  for (int i = 1; i <= 100; ++i) xs.push_back(static_cast<double>(i));
  Ecdf ecdf{xs};
  EXPECT_NEAR(ecdf.quantile(0.5), 50.0, 1.0);
  EXPECT_DOUBLE_EQ(ecdf.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(ecdf.quantile(1.0), 100.0);
}

TEST(Ecdf, IsMonotone) {
  Rng rng{5};
  std::vector<double> xs;
  for (int i = 0; i < 200; ++i) xs.push_back(rng.lognormal(0.0, 2.0));
  Ecdf ecdf{xs};
  double prev = -1.0;
  for (double x = 0.0; x < 50.0; x += 0.5) {
    const double p = ecdf(x);
    EXPECT_GE(p, prev);
    prev = p;
  }
}

TEST(Histogram, CountsSumToSampleSize) {
  Rng rng{7};
  std::vector<double> xs;
  for (int i = 0; i < 1000; ++i) xs.push_back(rng.normal());
  const auto bins = histogram(xs, 16);
  std::size_t total = 0;
  for (const auto& bin : bins) total += bin.count;
  EXPECT_EQ(total, xs.size());
  EXPECT_EQ(bins.size(), 16u);
}

TEST(Kde, IntegratesToRoughlyOne) {
  Rng rng{9};
  std::vector<double> xs;
  for (int i = 0; i < 500; ++i) xs.push_back(rng.normal(10.0, 2.0));
  Kde kde{xs};
  const auto grid = kde.grid(400);
  double integral = 0.0;
  for (std::size_t i = 1; i < grid.size(); ++i) {
    const double dx = grid[i].first - grid[i - 1].first;
    integral += 0.5 * (grid[i].second + grid[i - 1].second) * dx;
  }
  EXPECT_NEAR(integral, 1.0, 0.05);
}

TEST(Kde, PeaksNearMode) {
  std::vector<double> xs(200, 5.0);
  Kde kde{xs, 0.5};
  EXPECT_GT(kde(5.0), kde(3.0));
  EXPECT_GT(kde(5.0), kde(7.0));
}

TEST(LineFit, RecoversExactLine) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 50; ++i) {
    xs.push_back(static_cast<double>(i));
    ys.push_back(3.0 * i + 7.0);
  }
  const LineFit fit = fit_line(xs, ys);
  EXPECT_NEAR(fit.slope, 3.0, 1e-9);
  EXPECT_NEAR(fit.intercept, 7.0, 1e-9);
  EXPECT_NEAR(fit.r2, 1.0, 1e-9);
}

TEST(LineFit, NoisyDataHasLowerR2) {
  Rng rng{13};
  std::vector<double> xs, ys;
  for (int i = 0; i < 200; ++i) {
    xs.push_back(static_cast<double>(i));
    ys.push_back(2.0 * i + rng.normal(0.0, 40.0));
  }
  const LineFit fit = fit_line(xs, ys);
  EXPECT_GT(fit.r2, 0.5);
  EXPECT_LT(fit.r2, 1.0);
  EXPECT_NEAR(fit.slope, 2.0, 0.3);
}

TEST(Correlation, SignsAndBounds) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  const std::vector<double> up{2, 4, 6, 8, 10};
  const std::vector<double> down{10, 8, 6, 4, 2};
  EXPECT_NEAR(correlation(xs, up), 1.0, 1e-12);
  EXPECT_NEAR(correlation(xs, down), -1.0, 1e-12);
}

TEST(Outliers, DropsExtremePoints) {
  std::vector<double> xs;
  for (int i = 0; i < 100; ++i) xs.push_back(10.0 + (i % 5));
  xs.push_back(1e6);
  const auto cleaned = drop_iqr_outliers(xs);
  EXPECT_EQ(cleaned.size(), 100u);
  for (double x : cleaned) EXPECT_LT(x, 100.0);
}

TEST(Summary, OrderedFields) {
  Rng rng{21};
  std::vector<double> xs;
  for (int i = 0; i < 500; ++i) xs.push_back(rng.uniform(0.0, 100.0));
  const Summary s = summarize(xs);
  EXPECT_LE(s.min, s.p25);
  EXPECT_LE(s.p25, s.median);
  EXPECT_LE(s.median, s.p75);
  EXPECT_LE(s.p75, s.p95);
  EXPECT_LE(s.p95, s.max);
  EXPECT_EQ(s.count, 500u);
}

}  // namespace
}  // namespace gauge::util
