// AtomicFile: the durability primitive under the run journal and every
// report artifact. Write-tmp-fsync-rename means a reader (or a recovering
// process) only ever sees the previous contents or the new ones.
#include "util/fileio.hpp"

#include <gtest/gtest.h>

#include <filesystem>

namespace gauge::util {
namespace {

std::string temp_dir(const std::string& name) {
  const auto base = std::filesystem::temp_directory_path() / "gaugenn_test";
  const auto dir = base / name;
  std::filesystem::create_directories(dir);
  return dir.string();
}

TEST(AtomicFile, WritesContentsAndCleansUpTemp) {
  const std::string path = temp_dir("atomic") + "/fresh.txt";
  const AtomicFile file{path};
  ASSERT_TRUE(file.write(std::string_view{"payload"}).ok());
  const auto back = read_text_file(path);
  ASSERT_TRUE(back.ok()) << back.error();
  EXPECT_EQ(back.value(), "payload");
  EXPECT_FALSE(std::filesystem::exists(file.temp_path()));
}

TEST(AtomicFile, ReplacesExistingFileWhole) {
  const std::string path = temp_dir("atomic") + "/replace.txt";
  const AtomicFile file{path};
  ASSERT_TRUE(file.write(std::string_view{"the old, longer contents"}).ok());
  ASSERT_TRUE(file.write(std::string_view{"new"}).ok());
  const auto back = read_text_file(path);
  ASSERT_TRUE(back.ok());
  // Whole-file replacement: no tail of the longer previous version survives.
  EXPECT_EQ(back.value(), "new");
}

TEST(AtomicFile, StaleTempIsClobberedNotAppended) {
  const std::string path = temp_dir("atomic") + "/stale.txt";
  const AtomicFile file{path};
  // A crash between tmp-write and rename leaves a temp file behind; the next
  // write must overwrite it, not trip over it.
  ASSERT_TRUE(write_file(file.temp_path(), std::string_view{"leftover junk"})
                  .ok());
  ASSERT_TRUE(file.write(std::string_view{"clean"}).ok());
  const auto back = read_text_file(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), "clean");
  EXPECT_FALSE(std::filesystem::exists(file.temp_path()));
}

TEST(AtomicFile, MissingDirectoryFailsWithoutArtifacts) {
  const std::string path =
      temp_dir("atomic") + "/no_such_subdir/out.txt";
  const AtomicFile file{path};
  EXPECT_FALSE(file.write(std::string_view{"x"}).ok());
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(file.temp_path()));
}

TEST(AtomicFile, BytesOverloadRoundtripsBinary) {
  const std::string path = temp_dir("atomic") + "/bin.dat";
  Bytes payload = {0x00, 0xff, 0x47, 0x4a, 0x4c, 0x31, 0x00, 0x7f};
  ASSERT_TRUE(AtomicFile{path}.write(payload).ok());
  const auto back = read_file_bytes(path);
  ASSERT_TRUE(back.ok()) << back.error();
  EXPECT_EQ(back.value(), payload);
}

}  // namespace
}  // namespace gauge::util
