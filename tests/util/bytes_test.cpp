#include "util/bytes.hpp"

#include <gtest/gtest.h>

namespace gauge::util {
namespace {

TEST(Bytes, RoundTripScalars) {
  ByteWriter w;
  w.u8(0xAB);
  w.u16(0x1234);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFULL);
  w.i32(-42);
  w.i64(-1);
  w.f32(3.5f);
  w.f64(-2.25);
  w.str("hello");

  ByteReader r{w.bytes()};
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.i32(), -42);
  EXPECT_EQ(r.i64(), -1);
  EXPECT_FLOAT_EQ(r.f32(), 3.5f);
  EXPECT_DOUBLE_EQ(r.f64(), -2.25);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(Bytes, LittleEndianLayout) {
  ByteWriter w;
  w.u32(0x01020304);
  ASSERT_EQ(w.size(), 4u);
  EXPECT_EQ(w.bytes()[0], 0x04);
  EXPECT_EQ(w.bytes()[3], 0x01);
}

TEST(Bytes, ReaderUnderrunSetsNotOk) {
  const Bytes data{0x01, 0x02};
  ByteReader r{data};
  r.u32();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(Bytes, PatchU32) {
  ByteWriter w;
  w.u32(0);
  w.raw(std::string_view{"body"});
  w.patch_u32(0, 0xCAFEBABE);
  ByteReader r{w.bytes()};
  EXPECT_EQ(r.u32(), 0xCAFEBABEu);
}

TEST(Bytes, SeekAndRaw) {
  ByteWriter w;
  w.raw(std::string_view{"0123456789"});
  ByteReader r{w.bytes()};
  r.seek(4);
  EXPECT_EQ(as_view(r.raw(3)), "456");
  r.seek(100);
  EXPECT_FALSE(r.ok());
}

TEST(Bytes, ViewConversions) {
  const Bytes b = to_bytes("abc");
  EXPECT_EQ(b.size(), 3u);
  EXPECT_EQ(as_view(b), "abc");
  const auto span = as_span("xy");
  EXPECT_EQ(span.size(), 2u);
}

}  // namespace
}  // namespace gauge::util
