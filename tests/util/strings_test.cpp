#include "util/strings.hpp"

#include <gtest/gtest.h>

namespace gauge::util {
namespace {

TEST(Strings, Split) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
}

TEST(Strings, SplitWs) {
  EXPECT_EQ(split_ws("  conv  7767517\t1 "),
            (std::vector<std::string>{"conv", "7767517", "1"}));
  EXPECT_TRUE(split_ws("   ").empty());
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, "/"), "a/b/c");
  EXPECT_EQ(join({}, "/"), "");
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t\n "), "");
}

TEST(Strings, CaseHelpers) {
  EXPECT_EQ(to_lower("MobileNet_V2.TFLITE"), "mobilenet_v2.tflite");
  EXPECT_TRUE(contains_ci("Hair_Segmentation_MobileNet", "mobilenet"));
  EXPECT_FALSE(contains_ci("blazeface", "mobilenet"));
}

TEST(Strings, ParseNumbers) {
  EXPECT_EQ(parse_int("42"), 42);
  EXPECT_EQ(parse_int(" -7 "), -7);
  EXPECT_FALSE(parse_int("12abc").has_value());
  EXPECT_FALSE(parse_int("").has_value());
  EXPECT_DOUBLE_EQ(parse_double("3.5").value(), 3.5);
  EXPECT_FALSE(parse_double("x").has_value());
}

TEST(Strings, PathHelpers) {
  EXPECT_EQ(basename("assets/models/face.tflite"), "face.tflite");
  EXPECT_EQ(basename("face.tflite"), "face.tflite");
  EXPECT_EQ(extension("assets/face.TFLITE"), ".tflite");
  EXPECT_EQ(extension("weights.pth.tar"), ".pth.tar");
  EXPECT_EQ(extension("model.cfg.ncnn"), ".cfg.ncnn");
  EXPECT_EQ(extension("noext"), "");
  EXPECT_EQ(extension(".hidden"), "");
}

TEST(Strings, Format) {
  EXPECT_EQ(format("%d-%s", 3, "x"), "3-x");
  EXPECT_EQ(format("%.2f", 1.005), "1.00");
}

TEST(Strings, HumanUnits) {
  EXPECT_EQ(human_count(950.0), "950.00");
  EXPECT_EQ(human_count(1500.0), "1.50K");
  EXPECT_EQ(human_count(2.5e6), "2.50M");
  EXPECT_EQ(human_count(3e9), "3.00G");
  EXPECT_EQ(human_bytes(512), "512.00 B");
  EXPECT_EQ(human_bytes(2048), "2.00 KiB");
}

}  // namespace
}  // namespace gauge::util
