#include "util/retry.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace gauge::util {
namespace {

TEST(Retry, BackoffGrowsExponentiallyAndClamps) {
  RetryPolicy policy;
  policy.initial_backoff_s = 0.01;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_s = 0.05;
  policy.jitter = 0.0;
  EXPECT_DOUBLE_EQ(policy.backoff_s(1), 0.0);  // no delay before first try
  EXPECT_DOUBLE_EQ(policy.backoff_s(2), 0.01);
  EXPECT_DOUBLE_EQ(policy.backoff_s(3), 0.02);
  EXPECT_DOUBLE_EQ(policy.backoff_s(4), 0.04);
  EXPECT_DOUBLE_EQ(policy.backoff_s(5), 0.05);  // clamped
  EXPECT_DOUBLE_EQ(policy.backoff_s(9), 0.05);
}

TEST(Retry, JitterIsDeterministicAndBounded) {
  RetryPolicy policy;
  policy.initial_backoff_s = 0.1;
  policy.jitter = 0.25;
  policy.seed = 42;
  RetryPolicy same = policy;
  for (int attempt = 2; attempt <= 6; ++attempt) {
    const double delay = policy.backoff_s(attempt);
    EXPECT_DOUBLE_EQ(delay, same.backoff_s(attempt));
    RetryPolicy no_jitter = policy;
    no_jitter.jitter = 0.0;
    const double base = no_jitter.backoff_s(attempt);
    EXPECT_GE(delay, base * 0.75);
    EXPECT_LE(delay, base * 1.25);
  }
  RetryPolicy other = policy;
  other.seed = 43;
  EXPECT_NE(policy.backoff_s(2), other.backoff_s(2));
}

TEST(Retry, RunStopsOnFirstSuccess) {
  RetryPolicy policy;
  int calls = 0;
  int sleeps = 0;
  const auto status = policy.run(
      [&] {
        ++calls;
        return Status{};
      },
      [&](double) { ++sleeps; });
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(sleeps, 0);
}

TEST(Retry, RunRetriesSleepsAndReportsAttempts) {
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.jitter = 0.0;
  int calls = 0;
  std::vector<double> slept;
  std::vector<RetryPolicy::Attempt> attempts;
  const auto status = policy.run(
      [&] {
        ++calls;
        return calls < 3 ? Status::failure("boom " + std::to_string(calls))
                         : Status{};
      },
      [&](double seconds) { slept.push_back(seconds); },
      [&](const RetryPolicy::Attempt& attempt) { attempts.push_back(attempt); });
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(calls, 3);
  ASSERT_EQ(slept.size(), 2u);
  EXPECT_DOUBLE_EQ(slept[0], policy.backoff_s(2));
  EXPECT_DOUBLE_EQ(slept[1], policy.backoff_s(3));
  ASSERT_EQ(attempts.size(), 2u);
  EXPECT_EQ(attempts[0].number, 2);
  EXPECT_EQ(attempts[0].last_error, "boom 1");
  EXPECT_EQ(attempts[1].number, 3);
  EXPECT_EQ(attempts[1].last_error, "boom 2");
}

TEST(Retry, RunReturnsTerminalFailure) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  int calls = 0;
  const auto status = policy.run([&] {
    ++calls;
    return Status::failure("always");
  });
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.error(), "always");
  EXPECT_EQ(calls, 3);
}

TEST(Retry, AtLeastOneAttempt) {
  RetryPolicy policy;
  policy.max_attempts = 0;
  int calls = 0;
  const auto status = policy.run([&] {
    ++calls;
    return Status::failure("nope");
  });
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace gauge::util
