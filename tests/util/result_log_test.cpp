#include <gtest/gtest.h>

#include "util/clock.hpp"
#include "util/log.hpp"
#include "util/result.hpp"

namespace gauge::util {
namespace {

TEST(Result, OkPath) {
  Result<int> r{42};
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(static_cast<bool>(r));
  EXPECT_EQ(r.value(), 42);
}

TEST(Result, FailurePath) {
  auto r = Result<int>::failure("boom");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error(), "boom");
}

TEST(Result, TakeMovesValue) {
  auto r = Result<std::string>{std::string(100, 'x')};
  const std::string taken = std::move(r).take();
  EXPECT_EQ(taken.size(), 100u);
}

TEST(Result, MapTransformsValue) {
  Result<int> r{21};
  const auto doubled = r.map([](int v) { return v * 2; });
  ASSERT_TRUE(doubled.ok());
  EXPECT_EQ(doubled.value(), 42);

  const auto failed = Result<int>::failure("nope").map([](int v) { return v; });
  EXPECT_FALSE(failed.ok());
  EXPECT_EQ(failed.error(), "nope");
}

TEST(Status, OkAndFailure) {
  Status ok;
  EXPECT_TRUE(ok.ok());
  const auto bad = Status::failure("denied");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.error(), "denied");
}

TEST(Log, LevelGateIsRespected) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::Error);
  EXPECT_EQ(log_level(), LogLevel::Error);
  // These must not crash regardless of gate state.
  log_debug("d");
  log_info("i");
  log_warn("w");
  log_error("e");
  set_log_level(LogLevel::Off);
  log_error("suppressed");
  set_log_level(original);
}

TEST(SimClock, AdvancesMonotonically) {
  SimClock clock;
  EXPECT_EQ(clock.now(), 0u);
  clock.advance_ns(1'500'000'000ULL);
  EXPECT_DOUBLE_EQ(clock.now_seconds(), 1.5);
  clock.advance_seconds(0.5);
  EXPECT_DOUBLE_EQ(clock.now_seconds(), 2.0);
}

}  // namespace
}  // namespace gauge::util
