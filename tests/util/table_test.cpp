#include "util/table.hpp"

#include <gtest/gtest.h>

namespace gauge::util {
namespace {

TEST(Table, RendersAlignedColumns) {
  Table t{{"name", "count"}};
  t.add_row({"tflite", "1436"});
  t.add_row({"caffe", "176"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| tflite | 1436  |"), std::string::npos);
  EXPECT_NE(out.find("| caffe  | 176   |"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, CsvEscapesSpecials) {
  Table t{{"a", "b"}};
  t.add_row({"x,y", "he said \"hi\""});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_NE(csv.find("\"he said \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, NumericFormatters) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::pct(0.191), "19.1%");
}

}  // namespace
}  // namespace gauge::util
