#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace gauge::util {
namespace {

TEST(Rng, Deterministic) {
  Rng a{42};
  Rng b{42};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1};
  Rng b{2};
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, ForkIsIndependentOfParentState) {
  Rng parent{7};
  Rng child_before = parent.fork(3);
  // fork() must not depend on how much the parent has generated only via
  // explicit state; two forks with the same id from the same state match.
  Rng child_again = parent.fork(3);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(child_before.next_u64(), child_again.next_u64());
  }
  // Different stream ids diverge.
  Rng other = parent.fork(4);
  EXPECT_NE(parent.fork(3).next_u64(), other.next_u64());
}

TEST(Rng, UniformBounds) {
  Rng rng{11};
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const auto v = rng.uniform_int(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    const auto w = rng.uniform_u64(17);
    EXPECT_LT(w, 17u);
  }
}

TEST(Rng, UniformIntCoversRange) {
  Rng rng{13};
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.uniform_int(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, NormalMoments) {
  Rng rng{17};
  double sum = 0.0, sum2 = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, ParetoIsHeavyTailedAndBounded) {
  Rng rng{19};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
  }
}

TEST(Rng, ZipfFavoursLowRanks) {
  Rng rng{23};
  int rank1 = 0, rank_high = 0;
  for (int i = 0; i < 5000; ++i) {
    const std::size_t r = rng.zipf(100, 1.0);
    EXPECT_GE(r, 1u);
    EXPECT_LE(r, 100u);
    if (r == 1) ++rank1;
    if (r > 50) ++rank_high;
  }
  EXPECT_GT(rank1, rank_high / 2);
  EXPECT_GT(rank1, 500);
}

TEST(Rng, WeightedChoiceRespectsWeights) {
  Rng rng{29};
  const std::vector<double> weights{0.0, 9.0, 1.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 10000; ++i) counts[rng.weighted_choice(weights)]++;
  EXPECT_EQ(counts[0], 0);
  EXPECT_GT(counts[1], counts[2] * 5);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng{31};
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto copy = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, copy);
}

}  // namespace
}  // namespace gauge::util
