// The serving batcher is a deterministic state machine over explicit
// timestamps — these tests drive it with util::SimClock and never sleep.
#include "serve/batch.hpp"

#include <gtest/gtest.h>

#include "device/soc.hpp"
#include "nn/checksum.hpp"
#include "nn/trace.hpp"
#include "nn/zoo.hpp"
#include "util/clock.hpp"

namespace gauge::serve {
namespace {

nn::ModelTrace mobilenet_trace() {
  nn::ZooSpec spec;
  spec.archetype = "mobilenet";
  auto trace = nn::trace_model(nn::build_model(spec));
  EXPECT_TRUE(trace.ok());
  return std::move(trace).take();
}

Frontier test_frontier(int batch, std::uint64_t max_wait_ns,
                       std::uint64_t latency1_ns) {
  // Linear-ish curve: latency(b) = latency1 * (1 + (b-1)/4) — sublinear in
  // throughput, like the measured ones.
  Frontier frontier;
  frontier.batch = batch;
  frontier.max_wait_ns = max_wait_ns;
  for (int b : {1, batch}) {
    frontier.batches.push_back(b);
    frontier.latency_ns.push_back(latency1_ns + latency1_ns * (b - 1) / 4);
  }
  if (frontier.batches.size() == 2 && frontier.batches[0] == frontier.batches[1]) {
    frontier.batches.pop_back();
    frontier.latency_ns.pop_back();
  }
  return frontier;
}

TEST(ServeBatch, CandidateBatchesTruncateToMax) {
  EXPECT_EQ(candidate_batches(1), (std::vector<int>{1}));
  EXPECT_EQ(candidate_batches(8), (std::vector<int>{1, 2, 4, 5, 8}));
  // A max that is not a canonical point becomes the last support point.
  EXPECT_EQ(candidate_batches(6), (std::vector<int>{1, 2, 4, 5, 6}));
  EXPECT_EQ(candidate_batches(25), (std::vector<int>{1, 2, 4, 5, 8, 10, 16, 25}));
}

TEST(ServeBatch, CurveInterpolatesBetweenMeasuredPoints) {
  BatchCurve curve;
  curve.batches = {1, 4, 8};
  curve.latency_s = {0.010, 0.016, 0.024};
  curve.throughput_ips = {100.0, 250.0, 333.3};
  EXPECT_DOUBLE_EQ(curve.latency_s_at(1), 0.010);
  EXPECT_DOUBLE_EQ(curve.latency_s_at(4), 0.016);
  EXPECT_DOUBLE_EQ(curve.latency_s_at(8), 0.024);
  // Halfway between 4 and 8.
  EXPECT_DOUBLE_EQ(curve.latency_s_at(6), 0.020);
  // Beyond the last point: extrapolate the final segment's slope.
  EXPECT_DOUBLE_EQ(curve.latency_s_at(12), 0.032);
}

TEST(ServeBatch, MeasuredCurveAmortisesDispatchOverhead) {
  const auto device = device::make_device("S21");
  const auto trace = mobilenet_trace();
  const auto curve = measure_batch_curve(device, trace, device::RunConfig{},
                                         "test-key", candidate_batches(8));
  ASSERT_EQ(curve.batches.size(), 5u);
  for (std::size_t i = 1; i < curve.batches.size(); ++i) {
    // Latency grows with batch, but far slower than linearly (Fig. 11).
    EXPECT_GT(curve.latency_s[i], curve.latency_s[i - 1]);
    EXPECT_LT(curve.latency_s[i],
              curve.latency_s[0] * curve.batches[i]);
    EXPECT_GT(curve.throughput_ips[i], curve.throughput_ips[i - 1]);
  }
}

TEST(ServeBatch, MeasuredCurveIsDeterministic) {
  const auto device = device::make_device("S21");
  const auto trace = mobilenet_trace();
  const auto a = measure_batch_curve(device, trace, device::RunConfig{},
                                     "k", candidate_batches(8));
  const auto b = measure_batch_curve(device, trace, device::RunConfig{},
                                     "k", candidate_batches(8));
  EXPECT_EQ(a.latency_s, b.latency_s);
  EXPECT_EQ(batch_curve_json("S21", "mobilenet", a),
            batch_curve_json("S21", "mobilenet", b));
}

TEST(ServeBatch, FrontierPicksLargestBatchFittingTheSloBudget) {
  BatchCurve curve;
  curve.batches = {1, 2, 4, 8};
  curve.latency_s = {0.010, 0.012, 0.020, 0.060};
  curve.throughput_ips = {100, 166, 200, 133};
  // time_scale 1.0, SLO 100 ms, budget fraction 0.5 → wall budget 50 ms:
  // batch 4 (20 ms) fits, batch 8 (60 ms) does not.
  const auto frontier = choose_frontier(curve, 100.0, 1.0, 8);
  EXPECT_EQ(frontier.batch, 4);
  // Deadline-flush budget is a quarter of the SLO.
  EXPECT_EQ(frontier.max_wait_ns, 25u * 1000 * 1000);
  EXPECT_EQ(frontier.latency_ns_at(4), 20u * 1000 * 1000);
}

TEST(ServeBatch, FrontierDegeneratesToNoBatchingUnderTightSlo) {
  BatchCurve curve;
  curve.batches = {1, 2};
  curve.latency_s = {0.010, 0.030};
  curve.throughput_ips = {100, 66};
  // Budget 5 ms < latency(2): only batch 1 fits, and batch 1 never waits.
  const auto frontier = choose_frontier(curve, 10.0, 1.0, 2);
  EXPECT_EQ(frontier.batch, 1);
  EXPECT_EQ(frontier.max_wait_ns, 0u);
}

TEST(ServeBatch, MaxBatchOneDisablesCoalescing) {
  BatchCurve curve;
  curve.batches = {1};
  curve.latency_s = {0.001};
  curve.throughput_ips = {1000};
  const auto frontier = choose_frontier(curve, 250.0, 1.0, 1);
  EXPECT_EQ(frontier.batch, 1);
  EXPECT_EQ(frontier.max_wait_ns, 0u);
}

TEST(ServeBatch, QueueCoalescesUpToTheFrontier) {
  util::SimClock clock;
  BatchQueue queue{test_frontier(4, 10'000'000, 1'000'000), 64};
  // Empty queue: nothing due, flush at infinity.
  EXPECT_EQ(queue.next_flush_ns(), UINT64_MAX);
  EXPECT_TRUE(queue.pop_due(clock.now()).empty());

  for (std::uint64_t id = 1; id <= 4; ++id) {
    clock.advance_ns(100'000);
    EXPECT_TRUE(queue.offer(clock.now(), {id, clock.now(), 0}).accepted);
  }
  // A full frontier batch is due immediately.
  EXPECT_EQ(queue.next_flush_ns(), 0u);
  const auto batch = queue.pop_due(clock.now());
  ASSERT_EQ(batch.size(), 4u);
  // Strict FIFO.
  EXPECT_EQ(batch[0].id, 1u);
  EXPECT_EQ(batch[3].id, 4u);
  EXPECT_EQ(queue.depth(), 0u);
}

TEST(ServeBatch, PartialBatchFlushesOnlyAfterMaxWait) {
  util::SimClock clock;
  clock.advance_ns(5'000'000);
  BatchQueue queue{test_frontier(4, 10'000'000, 1'000'000), 64};
  const std::uint64_t enqueue = clock.now();
  EXPECT_TRUE(queue.offer(clock.now(), {7, clock.now(), 0}).accepted);
  EXPECT_TRUE(queue.offer(clock.now(), {8, clock.now(), 0}).accepted);

  // Before the deadline-flush budget elapses nothing is due.
  EXPECT_EQ(queue.next_flush_ns(), enqueue + 10'000'000);
  clock.advance_ns(9'999'999);
  EXPECT_TRUE(queue.pop_due(clock.now()).empty());
  EXPECT_EQ(queue.depth(), 2u);

  // One more nanosecond: the oldest request has waited out its budget and
  // the partial batch flushes.
  clock.advance_ns(1);
  const auto batch = queue.pop_due(clock.now());
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].id, 7u);
  EXPECT_TRUE(queue.pop_due(clock.now()).empty());
}

TEST(ServeBatch, DeterministicReplayProducesIdenticalFlushes) {
  // The same offer/pop timestamp sequence must produce identical batches —
  // the server's dispatcher relies on this for reproducible runs.
  const auto run = [] {
    util::SimClock clock;
    BatchQueue queue{test_frontier(3, 5'000'000, 1'000'000), 64};
    std::vector<std::vector<std::uint64_t>> flushes;
    for (std::uint64_t id = 1; id <= 10; ++id) {
      clock.advance_ns(1'700'000);
      queue.offer(clock.now(), {id, clock.now(), 0});
      for (auto batch = queue.pop_due(clock.now()); !batch.empty();
           batch = queue.pop_due(clock.now())) {
        std::vector<std::uint64_t> ids;
        for (const auto& ticket : batch) ids.push_back(ticket.id);
        flushes.push_back(std::move(ids));
      }
    }
    clock.advance_ns(5'000'000);
    for (auto batch = queue.pop_due(clock.now()); !batch.empty();
         batch = queue.pop_due(clock.now())) {
      std::vector<std::uint64_t> ids;
      for (const auto& ticket : batch) ids.push_back(ticket.id);
      flushes.push_back(std::move(ids));
    }
    return flushes;
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a, b);
  // Every ticket flushed exactly once, in order.
  std::vector<std::uint64_t> all;
  for (const auto& flush : a) all.insert(all.end(), flush.begin(), flush.end());
  EXPECT_EQ(all, (std::vector<std::uint64_t>{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}));
}

TEST(ServeBatch, AdmissionShedsWhenTheQueueIsFull) {
  util::SimClock clock;
  BatchQueue queue{test_frontier(1, 0, 1'000'000), 2};
  EXPECT_TRUE(queue.offer(clock.now(), {1, clock.now(), 0}).accepted);
  EXPECT_TRUE(queue.offer(clock.now(), {2, clock.now(), 0}).accepted);
  const auto admission = queue.offer(clock.now(), {3, clock.now(), 0});
  EXPECT_FALSE(admission.accepted);
  EXPECT_EQ(admission.reason, "queue_full");
  EXPECT_EQ(queue.depth(), 2u);
}

TEST(ServeBatch, AdmissionShedsWhenEstimatedWaitOverrunsTheDeadline) {
  util::SimClock clock;
  clock.advance_ns(1'000'000);
  // latency(1) = 1 ms; three in-flight batches ahead → est wait ≥ 4 ms.
  BatchQueue queue{test_frontier(1, 0, 1'000'000), 64};
  queue.note_batch_start();
  queue.note_batch_start();
  queue.note_batch_start();

  // Deadline 10 ms out: fits (4 ms estimate), accepted.
  const auto fits = queue.offer(
      clock.now(), {1, clock.now(), clock.now() + 10'000'000});
  EXPECT_TRUE(fits.accepted);
  EXPECT_GE(fits.est_wait_ns, 4'000'000u);

  // Deadline 3 ms out: the estimate alone overruns it → shed.
  const auto sheds = queue.offer(
      clock.now(), {2, clock.now(), clock.now() + 3'000'000});
  EXPECT_FALSE(sheds.accepted);
  EXPECT_EQ(sheds.reason, "deadline");
  EXPECT_GE(sheds.est_wait_ns, 4'000'000u);

  // No deadline (0) never deadline-sheds.
  const auto lenient = queue.offer(clock.now(), {3, clock.now(), 0});
  EXPECT_TRUE(lenient.accepted);

  // Finished batches lower the estimate again.
  queue.note_batch_done();
  queue.note_batch_done();
  queue.note_batch_done();
  EXPECT_EQ(queue.inflight(), 0);
}

TEST(ServeBatch, DrainEmptiesTheQueueUnconditionally) {
  util::SimClock clock;
  BatchQueue queue{test_frontier(8, 50'000'000, 1'000'000), 64};
  for (std::uint64_t id = 1; id <= 5; ++id) {
    queue.offer(clock.now(), {id, clock.now(), 0});
  }
  // Not due (partial batch, no wait elapsed) — but drain takes everything.
  EXPECT_TRUE(queue.pop_due(clock.now()).empty());
  const auto drained = queue.drain();
  EXPECT_EQ(drained.size(), 5u);
  EXPECT_EQ(queue.depth(), 0u);
  EXPECT_EQ(queue.next_flush_ns(), UINT64_MAX);
}

}  // namespace
}  // namespace gauge::serve
