// End-to-end coverage of the inference service: protocol grammar, loopback
// request/response, backend fallback, admission control, hostile frames and
// concurrent clients. Servers run with time_scale 0 (instant execution)
// except where queue pressure is the point of the test.
#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "net/framing.hpp"
#include "net/socket.hpp"
#include "serve/protocol.hpp"
#include "serve/slo.hpp"
#include "telemetry/metrics.hpp"

namespace gauge::serve {
namespace {

// --- protocol ------------------------------------------------------------

TEST(ServeProtocol, ParsesFullInferLine) {
  const auto request = parse_request(
      "INFER mobilenet id=r17 backend=SNPE-DSP deadline_ms=120 payload=64");
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request.value().verb, Request::Verb::Infer);
  EXPECT_EQ(request.value().model, "mobilenet");
  EXPECT_EQ(request.value().id, "r17");
  EXPECT_EQ(request.value().backend, "SNPE-DSP");
  EXPECT_DOUBLE_EQ(request.value().deadline_ms, 120.0);
  EXPECT_EQ(request.value().payload_bytes, 64u);
}

TEST(ServeProtocol, DefaultsAreMinimal) {
  const auto request = parse_request("INFER sensormlp");
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request.value().id, "0");
  EXPECT_TRUE(request.value().backend.empty());
  EXPECT_DOUBLE_EQ(request.value().deadline_ms, 0.0);
  EXPECT_EQ(request.value().payload_bytes, 0u);
}

TEST(ServeProtocol, ParsesControlVerbs) {
  EXPECT_EQ(parse_request("PING").value().verb, Request::Verb::Ping);
  EXPECT_EQ(parse_request("STATS").value().verb, Request::Verb::Stats);
  EXPECT_EQ(parse_request("QUIT").value().verb, Request::Verb::Quit);
}

TEST(ServeProtocol, RejectsMalformedLines) {
  EXPECT_EQ(parse_request("").error(), "empty_request");
  EXPECT_EQ(parse_request("   ").error(), "empty_request");
  EXPECT_EQ(parse_request("FETCH mobilenet").error(), "unknown_verb");
  EXPECT_EQ(parse_request("INFER").error(), "missing_model");
  EXPECT_EQ(parse_request("INFER mobilenet colour=red").error(), "bad_key");
  EXPECT_EQ(parse_request("INFER mobilenet deadline_ms=soon").error(),
            "bad_value");
  EXPECT_EQ(parse_request("INFER mobilenet payload=-4").error(), "bad_value");
  EXPECT_EQ(parse_request("INFER mobilenet payload=999999999999").error(),
            "payload_too_large");
}

TEST(ServeProtocol, BackendTokensAreCaseInsensitive) {
  EXPECT_EQ(parse_backend("CPU"), device::Backend::CpuFp32);
  EXPECT_EQ(parse_backend("xnnpack"), device::Backend::CpuXnnpack);
  EXPECT_EQ(parse_backend("Snpe-Dsp"), device::Backend::SnpeDsp);
  EXPECT_EQ(parse_backend("warp-drive"), std::nullopt);
}

TEST(ServeProtocol, ResponseRoundTrips) {
  Response ok;
  ok.kind = Response::Kind::Ok;
  ok.id = "r3";
  ok.model = "fssd";
  ok.backend = "GPU";
  ok.fallback = true;
  ok.batch = 4;
  ok.queue_us = 1200;
  ok.infer_us = 3400;
  ok.total_us = 4600;
  const auto parsed = parse_response(format_response(ok));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().kind, Response::Kind::Ok);
  EXPECT_EQ(parsed.value().id, "r3");
  EXPECT_EQ(parsed.value().model, "fssd");
  EXPECT_EQ(parsed.value().backend, "GPU");
  EXPECT_TRUE(parsed.value().fallback);
  EXPECT_EQ(parsed.value().batch, 4);
  EXPECT_EQ(parsed.value().total_us, 4600u);

  Response shed;
  shed.kind = Response::Kind::Shed;
  shed.id = "r9";
  shed.code = 429;
  shed.est_wait_us = 5000;
  shed.depth = 12;
  const auto reparsed = parse_response(format_response(shed));
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed.value().kind, Response::Kind::Shed);
  EXPECT_EQ(reparsed.value().code, 429);
  EXPECT_EQ(reparsed.value().est_wait_us, 5000u);

  EXPECT_FALSE(parse_response("GIBBERISH x=1").ok());
}

// --- server --------------------------------------------------------------

constexpr auto kClientDeadline = std::chrono::milliseconds{5000};

ServeOptions fast_options() {
  ServeOptions options;
  options.models = {"mobilenet", "sensormlp"};
  options.time_scale = 0.0;  // instant execution
  options.exec_threads = 2;
  options.conn_workers = 8;
  return options;
}

net::TcpStream connect_to(const InferenceServer& server) {
  auto stream = net::TcpStream::connect("127.0.0.1", server.port());
  EXPECT_TRUE(stream.ok()) << stream.error();
  return std::move(stream).take();
}

Response request_response(net::TcpStream& stream, const std::string& line) {
  EXPECT_TRUE(stream.send_line_for(line, kClientDeadline).ok());
  auto reply = stream.recv_line_for(kClientDeadline);
  EXPECT_TRUE(reply.ok()) << reply.error();
  auto parsed = parse_response(reply.ok() ? reply.value() : "");
  EXPECT_TRUE(parsed.ok()) << (parsed.ok() ? "" : parsed.error());
  return parsed.ok() ? parsed.value() : Response{};
}

TEST(ServeServer, StartsOnEphemeralPortAndAnswersPing) {
  auto server = InferenceServer::start(fast_options());
  ASSERT_TRUE(server.ok()) << server.error();
  EXPECT_GT(server.value()->port(), 0);
  EXPECT_EQ(server.value()->model_names().size(), 2u);

  auto stream = connect_to(*server.value());
  const auto pong = request_response(stream, "PING");
  EXPECT_EQ(pong.kind, Response::Kind::Pong);
}

TEST(ServeServer, RejectsUnknownModelAtStartup) {
  ServeOptions options;
  options.models = {"hal9000"};
  EXPECT_FALSE(InferenceServer::start(options).ok());
}

TEST(ServeServer, ServesInferRoundTrip) {
  telemetry::MetricsRegistry registry;
  const telemetry::ScopedRegistry scoped{registry};
  auto server = InferenceServer::start(fast_options());
  ASSERT_TRUE(server.ok()) << server.error();
  auto stream = connect_to(*server.value());

  const auto ok = request_response(stream, "INFER mobilenet id=a1");
  EXPECT_EQ(ok.kind, Response::Kind::Ok);
  EXPECT_EQ(ok.id, "a1");
  EXPECT_EQ(ok.model, "mobilenet");
  EXPECT_EQ(ok.backend, "CPU");
  EXPECT_FALSE(ok.fallback);
  EXPECT_GE(ok.batch, 1);
  EXPECT_GE(ok.total_us, ok.infer_us);

  const auto stats = request_response(stream, "STATS");
  EXPECT_EQ(stats.kind, Response::Kind::Stats);
  EXPECT_EQ(stats.requests, 1u);
  EXPECT_EQ(stats.served, 1u);
}

TEST(ServeServer, RealExecBackendRunsAndIsReported) {
  telemetry::MetricsRegistry registry;
  const telemetry::ScopedRegistry scoped{registry};
  ServeOptions options = fast_options();
  options.models = {"sensormlp"};
  options.real_exec = true;
  options.real_backend = "optimised";
  auto server = InferenceServer::start(options);
  ASSERT_TRUE(server.ok()) << server.error();
  auto stream = connect_to(*server.value());

  const auto ok = request_response(stream, "INFER sensormlp id=r1");
  EXPECT_EQ(ok.kind, Response::Kind::Ok);
  EXPECT_GT(ok.infer_us, 0u);  // real execution takes nonzero wall time

  server.value()->shutdown();
  const auto report = slo_report(registry);
  EXPECT_NE(report.find("SLO exec backend=optimised"), std::string::npos);
  EXPECT_EQ(report.find("SLO exec backend=device-model"), std::string::npos);
}

TEST(ServeServer, RejectsUnknownRealBackend) {
  ServeOptions options = fast_options();
  options.real_exec = true;
  options.real_backend = "warp-drive";
  EXPECT_FALSE(InferenceServer::start(options).ok());
}

TEST(ServeServer, ConsumesLengthFramedPayload) {
  auto server = InferenceServer::start(fast_options());
  ASSERT_TRUE(server.ok()) << server.error();
  auto stream = connect_to(*server.value());

  ASSERT_TRUE(
      stream.send_line_for("INFER sensormlp id=p1 payload=8", kClientDeadline)
          .ok());
  const util::Bytes body{'a', 'b', 'c', 'd', 'e', 'f', 'g', 'h'};
  ASSERT_TRUE(net::send_frame(stream, body, kClientDeadline).ok());
  auto reply = stream.recv_line_for(kClientDeadline);
  ASSERT_TRUE(reply.ok()) << reply.error();
  const auto parsed = parse_response(reply.value());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().kind, Response::Kind::Ok);
  // The connection stays framed: the next request parses cleanly.
  const auto pong = request_response(stream, "PING");
  EXPECT_EQ(pong.kind, Response::Kind::Pong);
}

TEST(ServeServer, AnswersProtocolErrorsAndKeepsTheConnection) {
  auto server = InferenceServer::start(fast_options());
  ASSERT_TRUE(server.ok()) << server.error();
  auto stream = connect_to(*server.value());

  const auto unknown = request_response(stream, "INFER nosuchmodel id=m1");
  EXPECT_EQ(unknown.kind, Response::Kind::Err);
  EXPECT_EQ(unknown.code, 404);
  EXPECT_EQ(unknown.reason, "unknown_model");

  const auto malformed = request_response(stream, "FETCH mobilenet");
  EXPECT_EQ(malformed.kind, Response::Kind::Err);
  EXPECT_EQ(malformed.code, 400);
  EXPECT_EQ(malformed.reason, "unknown_verb");

  // Unknown backend tokens are rejected at the parse layer already.
  const auto bad_backend =
      request_response(stream, "INFER mobilenet id=m2 backend=warp-drive");
  EXPECT_EQ(bad_backend.kind, Response::Kind::Err);
  EXPECT_EQ(bad_backend.code, 400);
  EXPECT_EQ(bad_backend.reason, "bad_value");

  // The same connection still serves valid requests afterwards.
  const auto ok = request_response(stream, "INFER mobilenet id=m3");
  EXPECT_EQ(ok.kind, Response::Kind::Ok);
}

TEST(ServeServer, OversizedPayloadGets413AndClose) {
  auto server = InferenceServer::start(fast_options());
  ASSERT_TRUE(server.ok()) << server.error();
  auto stream = connect_to(*server.value());

  const auto err = request_response(
      stream, "INFER mobilenet id=big payload=999999999999");
  EXPECT_EQ(err.kind, Response::Kind::Err);
  EXPECT_EQ(err.code, 413);
  // The server cannot resync past an unread payload; it closes.
  auto next = stream.recv_line_for(kClientDeadline);
  EXPECT_FALSE(next.ok());
}

TEST(ServeServer, TruncatedPayloadFrameClosesButServerSurvives) {
  auto server = InferenceServer::start(fast_options());
  ASSERT_TRUE(server.ok()) << server.error();
  {
    auto stream = connect_to(*server.value());
    ASSERT_TRUE(stream
                    .send_line_for("INFER mobilenet id=t1 payload=100",
                                   kClientDeadline)
                    .ok());
    // Send only a prefix of an otherwise valid frame, then close mid-frame.
    const auto frame = net::encode_frame(util::Bytes(100, 0x5A));
    const std::string prefix{reinterpret_cast<const char*>(frame.data()), 20};
    ASSERT_TRUE(stream.send_raw_for(prefix, kClientDeadline).ok());
  }
  // A fresh connection is served normally.
  auto stream = connect_to(*server.value());
  const auto ok = request_response(stream, "INFER mobilenet id=t2");
  EXPECT_EQ(ok.kind, Response::Kind::Ok);
}

TEST(ServeServer, PayloadSizeMismatchGets400AndKeepsTheConnection) {
  auto server = InferenceServer::start(fast_options());
  ASSERT_TRUE(server.ok()) << server.error();
  auto stream = connect_to(*server.value());

  // A well-formed frame whose payload is shorter than the announced size:
  // the stream stays in sync, so the server answers and keeps serving.
  ASSERT_TRUE(
      stream.send_line_for("INFER mobilenet id=m1 payload=16", kClientDeadline)
          .ok());
  ASSERT_TRUE(
      net::send_frame(stream, util::Bytes(4, 0x11), kClientDeadline).ok());
  auto reply = stream.recv_line_for(kClientDeadline);
  ASSERT_TRUE(reply.ok()) << reply.error();
  const auto parsed = parse_response(reply.value());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().kind, Response::Kind::Err);
  EXPECT_EQ(parsed.value().code, 400);
  EXPECT_EQ(parsed.value().reason, "payload_mismatch");

  const auto ok = request_response(stream, "INFER mobilenet id=m2");
  EXPECT_EQ(ok.kind, Response::Kind::Ok);
}

TEST(ServeServer, GarbagePayloadFramingClosesTheConnection) {
  auto server = InferenceServer::start(fast_options());
  ASSERT_TRUE(server.ok()) << server.error();
  auto stream = connect_to(*server.value());

  // Bytes that are not a frame at all: the server cannot resync and closes.
  ASSERT_TRUE(
      stream.send_line_for("INFER mobilenet id=g1 payload=8", kClientDeadline)
          .ok());
  ASSERT_TRUE(
      stream.send_raw_for("this is not a frame!", kClientDeadline).ok());
  auto reply = stream.recv_line_for(kClientDeadline);
  EXPECT_FALSE(reply.ok());
}

TEST(ServeServer, FallsBackWhenTheRequestedBackendIsMissing) {
  // The A20's Exynos SoC has no Hexagon DSP and no SNPE runtime: SNPE-DSP
  // requests must fall back to the CPU reference profile and say so.
  auto options = fast_options();
  options.device = "A20";
  auto server = InferenceServer::start(options);
  ASSERT_TRUE(server.ok()) << server.error();
  auto stream = connect_to(*server.value());

  const auto fell_back =
      request_response(stream, "INFER mobilenet id=f1 backend=SNPE-DSP");
  EXPECT_EQ(fell_back.kind, Response::Kind::Ok);
  EXPECT_TRUE(fell_back.fallback);
  EXPECT_EQ(fell_back.backend, "CPU");

  // XNNPACK ships everywhere: no fallback.
  const auto direct =
      request_response(stream, "INFER mobilenet id=f2 backend=XNNPACK");
  EXPECT_EQ(direct.kind, Response::Kind::Ok);
  EXPECT_FALSE(direct.fallback);
  EXPECT_EQ(direct.backend, "XNNPACK");
}

TEST(ServeServer, ShedsWhenTheDeadlineCannotBeMet) {
  // time_scale 10 makes one mobilenet batch cost ~8-13 wall ms, so a 1 ms
  // deadline can never be met: admission control must shed deterministically
  // (est wait alone overruns the deadline, queue empty or not).
  telemetry::MetricsRegistry registry;
  const telemetry::ScopedRegistry scoped{registry};
  auto options = fast_options();
  options.time_scale = 10.0;
  options.models = {"mobilenet"};
  auto server = InferenceServer::start(options);
  ASSERT_TRUE(server.ok()) << server.error();
  auto stream = connect_to(*server.value());

  for (int i = 0; i < 5; ++i) {
    const auto shed = request_response(
        stream, "INFER mobilenet id=s" + std::to_string(i) + " deadline_ms=1");
    EXPECT_EQ(shed.kind, Response::Kind::Shed);
    EXPECT_EQ(shed.code, 429);
    EXPECT_GT(shed.est_wait_us, 0u);
  }
  const auto stats = request_response(stream, "STATS");
  EXPECT_EQ(stats.shed, 5u);
  EXPECT_EQ(stats.served, 0u);
}

TEST(ServeServer, ConcurrentClientsAllServed) {
  telemetry::MetricsRegistry registry;
  const telemetry::ScopedRegistry scoped{registry};
  auto options = fast_options();
  options.conn_workers = 8;
  auto server = InferenceServer::start(options);
  ASSERT_TRUE(server.ok()) << server.error();

  constexpr int kClients = 8;
  constexpr int kPerClient = 20;
  std::vector<std::thread> clients;
  std::atomic<int> ok_count{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto stream = net::TcpStream::connect("127.0.0.1",
                                            server.value()->port());
      if (!stream.ok()) return;
      const char* model = c % 2 == 0 ? "mobilenet" : "sensormlp";
      for (int i = 0; i < kPerClient; ++i) {
        const auto line = "INFER " + std::string{model} + " id=c" +
                          std::to_string(c) + "n" + std::to_string(i);
        if (!stream.value().send_line_for(line, kClientDeadline).ok()) return;
        auto reply = stream.value().recv_line_for(kClientDeadline);
        if (!reply.ok()) return;
        auto parsed = parse_response(reply.value());
        if (parsed.ok() && parsed.value().kind == Response::Kind::Ok) {
          ok_count.fetch_add(1);
        }
      }
    });
  }
  for (auto& client : clients) client.join();
  EXPECT_EQ(ok_count.load(), kClients * kPerClient);

  // SLO accounting saw every request.
  const auto summary = summarize_slo(registry);
  EXPECT_EQ(summary.served, kClients * kPerClient);
  EXPECT_EQ(summary.shed, 0);
  EXPECT_EQ(summary.errors, 0);
  const auto report = slo_report(registry);
  EXPECT_NE(report.find("p99_ms="), std::string::npos);
  EXPECT_NE(report.find("errors=0"), std::string::npos);

  server.value()->shutdown();  // explicit, before the registry goes away
}

TEST(ServeServer, ShutdownDrainsAcceptedRequests) {
  // Accepted (non-shed) requests must be answered even when shutdown lands
  // while they are still queued: the drain path executes leftover tickets.
  auto options = fast_options();
  options.time_scale = 0.2;  // a few wall-ms per batch: requests do queue
  options.models = {"mobilenet"};
  auto server = InferenceServer::start(options);
  ASSERT_TRUE(server.ok()) << server.error();
  auto stream = connect_to(*server.value());
  // Make sure a worker has attached to this connection (accept runs on a
  // 200 ms tick) before racing shutdown against pipelined requests.
  ASSERT_EQ(request_response(stream, "PING").kind, Response::Kind::Pong);

  constexpr int kInflight = 6;
  for (int i = 0; i < kInflight; ++i) {
    ASSERT_TRUE(stream
                    .send_line_for("INFER mobilenet id=d" + std::to_string(i),
                                   kClientDeadline)
                    .ok());
  }
  // The first reply is served before shutdown begins; the rest race it.
  const auto first = request_response(stream, "STATS");
  EXPECT_EQ(first.kind, Response::Kind::Ok);  // FIFO: INFER d0 answers first
  std::thread closer{[&] { server.value()->shutdown(); }};
  int answered = 1;
  // Up to kInflight more replies are pending: d1..d5 plus the STATS answer.
  for (int i = 0; i < kInflight; ++i) {
    auto reply = stream.recv_line_for(kClientDeadline);
    if (!reply.ok()) break;  // server stopped reading after stop_
    const auto parsed = parse_response(reply.value());
    ASSERT_TRUE(parsed.ok());
    // Every reply is a definitive verdict: served, drained at teardown, or
    // refused with 503 — never silence for an accepted request.
    EXPECT_TRUE(parsed.value().kind == Response::Kind::Ok ||
                parsed.value().kind == Response::Kind::Stats ||
                parsed.value().code == 503);
    ++answered;
  }
  closer.join();
  EXPECT_GE(answered, 1);
}

}  // namespace
}  // namespace gauge::serve
