// Chaos coverage for the serving path (DESIGN.md §16): the ServeFaultPlan
// grammar, the SimClock-driven breaker and watchdog state machines, and
// end-to-end recovery — every accepted request gets exactly one verdict
// under any plan, failed batches redispatch onto the CPU lane, stalled
// executors are restarted, and a framing fuzz sweep never wedges a
// connection worker.
#include "serve/fault.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "net/framing.hpp"
#include "net/socket.hpp"
#include "serve/batch.hpp"
#include "serve/health.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/slo.hpp"
#include "telemetry/metrics.hpp"
#include "util/clock.hpp"
#include "util/rng.hpp"

namespace gauge::serve {
namespace {

// --- fault plan grammar --------------------------------------------------

TEST(ServeFaultPlan, ParsesEveryDirective) {
  const auto plan = parse_serve_fault_plan(
      "kill-backend=gpu:50; stall-lane=mobilenet:3:500;"
      "fail-infer=mobilenet:2; fail-infer=fssd:4:3; drop-conn=4;"
      "corrupt-frame=2");
  ASSERT_TRUE(plan.ok()) << plan.error();
  ASSERT_EQ(plan.value().kill_backends.size(), 1u);
  EXPECT_EQ(plan.value().kill_backends[0].backend, device::Backend::GpuFp32);
  EXPECT_EQ(plan.value().kill_backends[0].after_batches, 50);
  ASSERT_EQ(plan.value().stalls.size(), 1u);
  EXPECT_EQ(plan.value().stalls[0].model, "mobilenet");
  EXPECT_EQ(plan.value().stalls[0].nth, 3);
  EXPECT_DOUBLE_EQ(plan.value().stalls[0].ms, 500.0);
  ASSERT_EQ(plan.value().fail_infers.size(), 2u);
  EXPECT_EQ(plan.value().fail_infers[0].count, 1);
  EXPECT_EQ(plan.value().fail_infers[1].nth, 4);
  EXPECT_EQ(plan.value().fail_infers[1].count, 3);
  EXPECT_EQ(plan.value().drop_conns, std::vector<int>{4});
  EXPECT_EQ(plan.value().corrupt_frames, std::vector<int>{2});
  EXPECT_FALSE(plan.value().empty());
}

TEST(ServeFaultPlan, EmptySpecIsEmptyPlan) {
  const auto plan = parse_serve_fault_plan("");
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan.value().empty());
}

TEST(ServeFaultPlan, RejectsMalformedDirectives) {
  EXPECT_FALSE(parse_serve_fault_plan("explode=now").ok());
  EXPECT_FALSE(parse_serve_fault_plan("kill-backend=warp-drive:3").ok());
  EXPECT_FALSE(parse_serve_fault_plan("kill-backend=gpu").ok());
  EXPECT_FALSE(parse_serve_fault_plan("stall-lane=mobilenet:500").ok());
  EXPECT_FALSE(parse_serve_fault_plan("stall-lane=mobilenet:0:500").ok());
  EXPECT_FALSE(parse_serve_fault_plan("fail-infer=mobilenet").ok());
  EXPECT_FALSE(parse_serve_fault_plan("fail-infer=mobilenet:2:0").ok());
  EXPECT_FALSE(parse_serve_fault_plan("drop-conn=0").ok());
  EXPECT_FALSE(parse_serve_fault_plan("corrupt-frame=banana").ok());
}

TEST(ServeFaultPlan, InjectorFiresOnDeterministicIndices) {
  auto plan = parse_serve_fault_plan(
      "kill-backend=gpu:2;fail-infer=mobilenet:2:2;drop-conn=2;"
      "corrupt-frame=3");
  ASSERT_TRUE(plan.ok());
  ServeFaultInjector injector{plan.value()};

  // GPU survives its first two batches, then every later one fails.
  EXPECT_FALSE(injector.on_batch("fssd", device::Backend::GpuFp32).fail);
  EXPECT_FALSE(injector.on_batch("fssd", device::Backend::GpuFp32).fail);
  const auto dead = injector.on_batch("fssd", device::Backend::GpuFp32);
  EXPECT_TRUE(dead.fail);
  EXPECT_EQ(dead.reason, "backend_dead");
  EXPECT_TRUE(injector.on_batch("fssd", device::Backend::GpuFp32).fail);

  // mobilenet batches 2 and 3 (on any backend) fail; 1 and 4 succeed.
  EXPECT_FALSE(injector.on_batch("mobilenet", device::Backend::CpuFp32).fail);
  const auto window = injector.on_batch("mobilenet", device::Backend::CpuFp32);
  EXPECT_TRUE(window.fail);
  EXPECT_EQ(window.reason, "infer_fault");
  EXPECT_TRUE(injector.on_batch("mobilenet", device::Backend::CpuFp32).fail);
  EXPECT_FALSE(injector.on_batch("mobilenet", device::Backend::CpuFp32).fail);

  EXPECT_FALSE(injector.drop_connection());
  EXPECT_TRUE(injector.drop_connection());
  EXPECT_FALSE(injector.drop_connection());

  EXPECT_FALSE(injector.corrupt_frame());
  EXPECT_FALSE(injector.corrupt_frame());
  EXPECT_TRUE(injector.corrupt_frame());
  EXPECT_FALSE(injector.corrupt_frame());
}

TEST(ServeFaultPlan, StallDirectiveReportsMilliseconds) {
  auto plan = parse_serve_fault_plan("stall-lane=fssd:2:750");
  ASSERT_TRUE(plan.ok());
  ServeFaultInjector injector{plan.value()};
  EXPECT_DOUBLE_EQ(injector.on_batch("fssd", device::Backend::CpuFp32).stall_ms,
                   0.0);
  EXPECT_DOUBLE_EQ(injector.on_batch("fssd", device::Backend::CpuFp32).stall_ms,
                   750.0);
  EXPECT_DOUBLE_EQ(injector.on_batch("fssd", device::Backend::CpuFp32).stall_ms,
                   0.0);
}

// --- circuit breaker (SimClock-driven) -----------------------------------

BreakerConfig test_breaker() {
  BreakerConfig config;
  config.failure_threshold = 3;
  config.cooldown_ns = 1'000'000;  // 1 ms of simulated time
  config.probe_successes = 1;
  return config;
}

TEST(ServeFaultBreaker, OpensAfterConsecutiveFailuresOnly) {
  util::SimClock clock;
  CircuitBreaker breaker{test_breaker()};
  EXPECT_EQ(breaker.state(clock.now()), BreakerState::Closed);

  breaker.record_failure(clock.now());
  breaker.record_failure(clock.now());
  breaker.record_success(clock.now());  // resets the consecutive count
  breaker.record_failure(clock.now());
  breaker.record_failure(clock.now());
  EXPECT_EQ(breaker.state(clock.now()), BreakerState::Closed);
  breaker.record_failure(clock.now());
  EXPECT_EQ(breaker.state(clock.now()), BreakerState::Open);
  EXPECT_EQ(breaker.opens(), 1u);
  EXPECT_FALSE(breaker.allow(clock.now()));
  EXPECT_EQ(breaker.open_until_ns(), clock.now() + 1'000'000);
}

TEST(ServeFaultBreaker, FullCycleOpenHalfOpenClosed) {
  util::SimClock clock;
  CircuitBreaker breaker{test_breaker()};
  for (int i = 0; i < 3; ++i) breaker.record_failure(clock.now());
  EXPECT_EQ(breaker.state(clock.now()), BreakerState::Open);

  // Cooldown not elapsed: still open, no traffic.
  clock.advance_ns(999'999);
  EXPECT_FALSE(breaker.allow(clock.now()));

  // Cooldown elapsed: half-open grants exactly one probe.
  clock.advance_ns(1);
  EXPECT_EQ(breaker.state(clock.now()), BreakerState::HalfOpen);
  bool probe = false;
  EXPECT_TRUE(breaker.allow(clock.now(), &probe));
  EXPECT_TRUE(probe);
  EXPECT_FALSE(breaker.allow(clock.now()));  // probe slot taken

  breaker.record_success(clock.now());
  EXPECT_EQ(breaker.state(clock.now()), BreakerState::Closed);
  EXPECT_EQ(breaker.opens(), 1u);
  EXPECT_EQ(breaker.closes(), 1u);
  EXPECT_TRUE(breaker.allow(clock.now()));
}

TEST(ServeFaultBreaker, ProbeFailureReopens) {
  util::SimClock clock;
  CircuitBreaker breaker{test_breaker()};
  for (int i = 0; i < 3; ++i) breaker.record_failure(clock.now());
  clock.advance_ns(1'000'000);
  EXPECT_TRUE(breaker.allow(clock.now()));
  breaker.record_failure(clock.now());
  EXPECT_EQ(breaker.state(clock.now()), BreakerState::Open);
  EXPECT_EQ(breaker.opens(), 2u);
  // The new cooldown restarts from the re-open.
  EXPECT_EQ(breaker.open_until_ns(), clock.now() + 1'000'000);
}

TEST(ServeFaultBreaker, CancelledProbeFreesTheSlot) {
  util::SimClock clock;
  CircuitBreaker breaker{test_breaker()};
  for (int i = 0; i < 3; ++i) breaker.record_failure(clock.now());
  clock.advance_ns(1'000'000);
  bool probe = false;
  EXPECT_TRUE(breaker.allow(clock.now(), &probe));
  EXPECT_TRUE(probe);
  EXPECT_FALSE(breaker.allow(clock.now()));
  breaker.cancel_probe();  // the probe was shed before it could execute
  EXPECT_TRUE(breaker.allow(clock.now(), &probe));
  EXPECT_TRUE(probe);
}

TEST(ServeFaultBreaker, DeterministicAcrossReplays) {
  // Bit-determinism: the same call sequence at the same timestamps produces
  // identical transition counts.
  const auto run = [] {
    util::SimClock clock;
    CircuitBreaker breaker{test_breaker()};
    for (int round = 0; round < 5; ++round) {
      for (int i = 0; i < 3; ++i) {
        breaker.record_failure(clock.now());
        clock.advance_ns(100);
      }
      clock.advance_ns(1'000'000);
      (void)breaker.allow(clock.now());
      breaker.record_success(clock.now());
    }
    return std::pair{breaker.opens(), breaker.closes()};
  };
  EXPECT_EQ(run(), run());
}

// --- lane watchdog (SimClock-driven) -------------------------------------

TEST(ServeFaultWatchdog, ExpiresOnlyPastDeadlineLaunches) {
  util::SimClock clock;
  LaneWatchdog watchdog;
  watchdog.note_start(1, clock.now(), 1'000);
  watchdog.note_start(2, clock.now(), 5'000);
  EXPECT_EQ(watchdog.inflight(), 2u);
  EXPECT_EQ(watchdog.next_deadline_ns(), 1'000u);

  clock.advance_ns(500);
  EXPECT_TRUE(watchdog.expired(clock.now()).empty());

  clock.advance_ns(500);
  const auto expired = watchdog.expired(clock.now());
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0], 1u);
  EXPECT_EQ(watchdog.restarts(), 1u);
  EXPECT_EQ(watchdog.inflight(), 1u);
}

TEST(ServeFaultWatchdog, FirstFinisherWinsTheClaim) {
  // The exactly-one-verdict invariant hinges on this: whoever removes the
  // launch from tracking owns its tickets. A late executor completion after
  // a watchdog expiry must see note_done() == false and discard its result.
  util::SimClock clock;
  LaneWatchdog watchdog;
  watchdog.note_start(7, clock.now(), 1'000);
  clock.advance_ns(2'000);
  ASSERT_EQ(watchdog.expired(clock.now()).size(), 1u);
  EXPECT_FALSE(watchdog.note_done(7));  // abandoned: result must be dropped

  // And the mirror image: a completion first means no expiry later.
  watchdog.note_start(8, clock.now(), 1'000);
  EXPECT_TRUE(watchdog.note_done(8));
  clock.advance_ns(2'000);
  EXPECT_TRUE(watchdog.expired(clock.now()).empty());
  EXPECT_EQ(watchdog.restarts(), 1u);
}

TEST(ServeFaultWatchdog, RequeueRestoresFifoFront) {
  // Redispatched tickets re-enter at the queue front: they carry the oldest
  // enqueue timestamps and must not wait behind younger traffic.
  Frontier frontier;
  frontier.batch = 4;
  frontier.max_wait_ns = 0;
  BatchQueue queue{frontier, 16};
  ASSERT_TRUE(queue.offer(0, {10, 0, 0}).accepted);
  queue.requeue({{1, 0, 0, true, false}, {2, 0, 0, true, false}});
  const auto batch = queue.pop_due(0);
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[0].id, 1u);
  EXPECT_TRUE(batch[0].retried);
  EXPECT_EQ(batch[1].id, 2u);
  EXPECT_EQ(batch[2].id, 10u);
  EXPECT_FALSE(batch[2].retried);
}

// --- STATS lane-health grammar -------------------------------------------

TEST(ServeFaultProtocol, StatsLaneTriplesRoundTrip) {
  Response stats;
  stats.kind = Response::Kind::Stats;
  stats.requests = 10;
  stats.served = 8;
  stats.shed = 1;
  stats.errors = 1;
  stats.lanes.push_back({"mobilenet", "CPU", "closed", 2});
  stats.lanes.push_back({"mobilenet", "GPU", "open", 0});
  stats.lanes.push_back({"fssd", "SNPE-DSP", "half_open", 1});
  const auto parsed = parse_response(format_response(stats));
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  ASSERT_EQ(parsed.value().lanes.size(), 3u);
  EXPECT_EQ(parsed.value().lanes[0].model, "mobilenet");
  EXPECT_EQ(parsed.value().lanes[0].backend, "CPU");
  EXPECT_EQ(parsed.value().lanes[0].state, "closed");
  EXPECT_EQ(parsed.value().lanes[0].inflight, 2u);
  EXPECT_EQ(parsed.value().lanes[1].state, "open");
  EXPECT_EQ(parsed.value().lanes[2].backend, "SNPE-DSP");
  EXPECT_EQ(parsed.value().lanes[2].state, "half_open");
}

TEST(ServeFaultProtocol, StatsLaneGrammarIsStrict) {
  EXPECT_FALSE(parse_response("STATS requests=1 state=open").ok());
  EXPECT_FALSE(parse_response("STATS requests=1 inflight=2").ok());
  EXPECT_FALSE(
      parse_response("STATS lane=mobilenet/CPU state=melted").ok());
  EXPECT_FALSE(parse_response("STATS lane=mobilenetCPU state=open").ok());
  EXPECT_TRUE(
      parse_response("STATS requests=1 served=1 shed=0 errors=0 "
                     "lane=mobilenet/CPU state=closed inflight=0")
          .ok());
}

TEST(ServeFaultProtocol, OkRetriedAndShedRetryAfterRoundTrip) {
  Response ok;
  ok.kind = Response::Kind::Ok;
  ok.model = "mobilenet";
  ok.backend = "CPU";
  ok.retried = true;
  ok.fallback = true;
  const auto line = format_response(ok);
  EXPECT_NE(line.find("retried=1"), std::string::npos);
  const auto parsed = parse_response(line);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().retried);

  Response shed;
  shed.kind = Response::Kind::Shed;
  shed.code = 429;
  shed.retry_after_ms = 125;
  const auto reparsed = parse_response(format_response(shed));
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed.value().retry_after_ms, 125u);
}

// --- end-to-end chaos ----------------------------------------------------

constexpr auto kClientDeadline = std::chrono::milliseconds{5000};

ServeOptions chaos_options() {
  ServeOptions options;
  options.models = {"mobilenet", "sensormlp"};
  options.time_scale = 0.0;  // instant execution
  options.exec_threads = 2;
  options.conn_workers = 8;
  options.breaker_threshold = 2;
  options.breaker_cooldown_ms = 100.0;
  return options;
}

net::TcpStream connect_to(const InferenceServer& server) {
  auto stream = net::TcpStream::connect("127.0.0.1", server.port());
  EXPECT_TRUE(stream.ok()) << stream.error();
  return std::move(stream).take();
}

Response request_response(net::TcpStream& stream, const std::string& line) {
  EXPECT_TRUE(stream.send_line_for(line, kClientDeadline).ok());
  auto reply = stream.recv_line_for(kClientDeadline);
  EXPECT_TRUE(reply.ok()) << reply.error();
  auto parsed = parse_response(reply.ok() ? reply.value() : "");
  EXPECT_TRUE(parsed.ok()) << (parsed.ok() ? "" : parsed.error());
  return parsed.ok() ? parsed.value() : Response{};
}

TEST(ServeFaultChaos, KilledBackendRedispatchesToCpu) {
  telemetry::MetricsRegistry registry;
  const telemetry::ScopedRegistry scoped{registry};
  auto options = chaos_options();
  options.fault_plan = "kill-backend=xnnpack:0";  // dead from the first batch
  auto server = InferenceServer::start(options);
  ASSERT_TRUE(server.ok()) << server.error();
  auto stream = connect_to(*server.value());

  // The first XNNPACK batch dies mid-execution; its ticket is redispatched
  // onto the CPU lane and the request still gets its OK — marked as a
  // retried fallback, not an error.
  const auto ok =
      request_response(stream, "INFER mobilenet id=k1 backend=XNNPACK");
  EXPECT_EQ(ok.kind, Response::Kind::Ok);
  EXPECT_TRUE(ok.retried);
  EXPECT_TRUE(ok.fallback);
  EXPECT_EQ(ok.backend, "CPU");

  server.value()->shutdown();
  const auto summary = summarize_slo(registry);
  EXPECT_EQ(summary.errors, 0);
  EXPECT_EQ(summary.served, 1);
  EXPECT_GT(summary.redispatched, 0);
  const auto report = slo_report(registry);
  EXPECT_NE(report.find("SLO availability breaker_opens="), std::string::npos);
  EXPECT_NE(report.find("SLO backend name=XNNPACK"), std::string::npos);
}

TEST(ServeFaultChaos, BreakerFullCycleUnderTransientFaults) {
  telemetry::MetricsRegistry registry;
  const telemetry::ScopedRegistry scoped{registry};
  auto options = chaos_options();
  options.models = {"mobilenet"};
  options.max_batch = 1;  // one request per batch: failure counts are exact
  // mobilenet batches 1 and 3 fail. The model's batch sequence is XNNPACK
  // (#1, fails) -> CPU redispatch (#2, serves) -> XNNPACK (#3, fails) ->
  // CPU redispatch (#4, serves): two consecutive XNNPACK failures open the
  // breaker, and once the cooldown elapses the probe succeeds and closes it.
  options.fault_plan = "fail-infer=mobilenet:1;fail-infer=mobilenet:3";
  auto server = InferenceServer::start(options);
  ASSERT_TRUE(server.ok()) << server.error();
  auto stream = connect_to(*server.value());

  // Two failing batches. Each request is redispatched onto the CPU lane and
  // still served; the XNNPACK breaker opens on the second failure.
  for (int i = 0; i < 2; ++i) {
    const auto ok = request_response(
        stream, "INFER mobilenet id=w" + std::to_string(i) +
                    " backend=XNNPACK");
    EXPECT_EQ(ok.kind, Response::Kind::Ok);
    EXPECT_TRUE(ok.retried);
  }
  auto stats = request_response(stream, "STATS");
  std::string xnn_state;
  for (const auto& lane : stats.lanes) {
    if (lane.backend == "XNNPACK") xnn_state = lane.state;
  }
  EXPECT_EQ(xnn_state, "open");

  // While open, XNNPACK traffic routes around the dead lane onto CPU
  // without executing there (fallback, not retried).
  const auto around =
      request_response(stream, "INFER mobilenet id=a1 backend=XNNPACK");
  EXPECT_EQ(around.kind, Response::Kind::Ok);
  EXPECT_TRUE(around.fallback);
  EXPECT_FALSE(around.retried);

  // After the cooldown the half-open probe executes on XNNPACK (the fault
  // window is spent), succeeds, and the breaker closes.
  std::this_thread::sleep_for(std::chrono::milliseconds{150});
  const auto probe =
      request_response(stream, "INFER mobilenet id=p1 backend=XNNPACK");
  EXPECT_EQ(probe.kind, Response::Kind::Ok);
  EXPECT_FALSE(probe.fallback);
  stats = request_response(stream, "STATS");
  for (const auto& lane : stats.lanes) {
    if (lane.backend == "XNNPACK") xnn_state = lane.state;
  }
  EXPECT_EQ(xnn_state, "closed");

  server.value()->shutdown();
  const auto summary = summarize_slo(registry);
  EXPECT_EQ(summary.errors, 0);
  EXPECT_GE(summary.breaker_opens, 1);
  EXPECT_GE(summary.breaker_closes, 1);
  EXPECT_GT(summary.redispatched, 0);
}

TEST(ServeFaultChaos, StalledLaneIsRestartedByTheWatchdog) {
  telemetry::MetricsRegistry registry;
  const telemetry::ScopedRegistry scoped{registry};
  auto options = chaos_options();
  options.models = {"mobilenet"};
  options.watchdog_budget_ms = 50.0;
  // The first mobilenet batch wedges for 2 s — well past the 50 ms budget.
  // The watchdog abandons it and redispatches; the retry (the model's
  // second batch) runs clean.
  options.fault_plan = "stall-lane=mobilenet:1:2000";
  auto server = InferenceServer::start(options);
  ASSERT_TRUE(server.ok()) << server.error();
  auto stream = connect_to(*server.value());

  const auto ok = request_response(stream, "INFER mobilenet id=s1");
  EXPECT_EQ(ok.kind, Response::Kind::Ok);
  EXPECT_TRUE(ok.retried);

  server.value()->shutdown();
  const auto summary = summarize_slo(registry);
  EXPECT_EQ(summary.errors, 0);
  EXPECT_GE(summary.watchdog_restarts, 1);
  EXPECT_GT(summary.redispatched, 0);
  const auto report = slo_report(registry);
  EXPECT_NE(report.find("watchdog_restarts="), std::string::npos);
}

TEST(ServeFaultChaos, DroppedConnectionIsInvisibleToTheNextClient) {
  telemetry::MetricsRegistry registry;
  const telemetry::ScopedRegistry scoped{registry};
  auto options = chaos_options();
  options.fault_plan = "drop-conn=1";
  auto server = InferenceServer::start(options);
  ASSERT_TRUE(server.ok()) << server.error();

  {
    // The first accepted connection is dropped before a worker sees it: the
    // client's first round trip fails (send may succeed into the kernel
    // buffer; the reply never comes).
    auto doomed = connect_to(*server.value());
    (void)doomed.send_line_for("PING", std::chrono::milliseconds{500});
    auto reply = doomed.recv_line_for(std::chrono::milliseconds{1000});
    EXPECT_FALSE(reply.ok());
  }
  // The next connection serves normally — a reconnecting client recovers.
  auto stream = connect_to(*server.value());
  EXPECT_EQ(request_response(stream, "PING").kind, Response::Kind::Pong);
  EXPECT_EQ(request_response(stream, "INFER mobilenet id=d1").kind,
            Response::Kind::Ok);
  server.value()->shutdown();
  bool found = false;
  for (const auto& [name, value] : registry.counters()) {
    if (name == "gauge.serve.fault.dropped_conns") {
      found = true;
      EXPECT_EQ(value, 1);
    }
  }
  EXPECT_TRUE(found);
}

TEST(ServeFaultChaos, CorruptFrameClosesOnlyThatConnection) {
  auto options = chaos_options();
  options.fault_plan = "corrupt-frame=1";
  auto server = InferenceServer::start(options);
  ASSERT_TRUE(server.ok()) << server.error();

  {
    auto poisoned = connect_to(*server.value());
    ASSERT_TRUE(poisoned
                    .send_line_for("INFER mobilenet id=c1 payload=8",
                                   kClientDeadline)
                    .ok());
    ASSERT_TRUE(
        net::send_frame(poisoned, util::Bytes(8, 0x2A), kClientDeadline).ok());
    // The injector declares the (well-formed) frame corrupt: the connection
    // is poisoned and closed exactly like a CRC failure.
    auto reply = poisoned.recv_line_for(kClientDeadline);
    EXPECT_FALSE(reply.ok());
  }
  auto stream = connect_to(*server.value());
  ASSERT_TRUE(
      stream.send_line_for("INFER mobilenet id=c2 payload=8", kClientDeadline)
          .ok());
  ASSERT_TRUE(
      net::send_frame(stream, util::Bytes(8, 0x2A), kClientDeadline).ok());
  auto reply = stream.recv_line_for(kClientDeadline);
  ASSERT_TRUE(reply.ok()) << reply.error();
  EXPECT_EQ(parse_response(reply.value()).value().kind, Response::Kind::Ok);
}

TEST(ServeFaultChaos, EveryAcceptedRequestGetsExactlyOneVerdict) {
  // The chaos invariant, end to end: under a combined kill + transient-fault
  // plan, concurrent clients hammering both lanes each receive exactly one
  // reply per request — served, shed or erred, but never silence and never
  // a duplicate.
  telemetry::MetricsRegistry registry;
  const telemetry::ScopedRegistry scoped{registry};
  auto options = chaos_options();
  options.fault_plan = "kill-backend=xnnpack:3;fail-infer=sensormlp:2:2";
  auto server = InferenceServer::start(options);
  ASSERT_TRUE(server.ok()) << server.error();

  constexpr int kClients = 6;
  constexpr int kPerClient = 25;
  std::vector<std::thread> clients;
  std::atomic<int> verdicts{0};
  std::atomic<int> silent{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto stream =
          net::TcpStream::connect("127.0.0.1", server.value()->port());
      if (!stream.ok()) return;
      const char* model = c % 2 == 0 ? "mobilenet" : "sensormlp";
      const char* backend = c % 3 == 0 ? " backend=XNNPACK" : "";
      for (int i = 0; i < kPerClient; ++i) {
        const auto line = "INFER " + std::string{model} + " id=c" +
                          std::to_string(c) + "n" + std::to_string(i) +
                          backend;
        if (!stream.value().send_line_for(line, kClientDeadline).ok()) {
          silent.fetch_add(kPerClient - i);
          return;
        }
        auto reply = stream.value().recv_line_for(kClientDeadline);
        if (!reply.ok()) {
          silent.fetch_add(kPerClient - i);
          return;
        }
        verdicts.fetch_add(1);
      }
    });
  }
  for (auto& client : clients) client.join();
  EXPECT_EQ(verdicts.load(), kClients * kPerClient);
  EXPECT_EQ(silent.load(), 0);

  server.value()->shutdown();
  const auto summary = summarize_slo(registry);
  // Accounting closes: every INFER is served, shed or an error.
  EXPECT_EQ(summary.requests, summary.served + summary.shed + summary.errors);
  EXPECT_GT(summary.redispatched, 0);
}

TEST(ServeFaultChaos, ShutdownDuringStallNeitherHangsNorLeaksTickets) {
  // The watchdog-vs-shutdown interleaving (the bugfix sweep's race): a
  // batch is wedged when shutdown lands. The watchdog thread must join
  // cleanly (no double-join, no deadlock), the drain must answer the
  // redispatched ticket, and the client still gets exactly one verdict.
  telemetry::MetricsRegistry registry;
  const telemetry::ScopedRegistry scoped{registry};
  auto options = chaos_options();
  options.models = {"mobilenet"};
  options.watchdog_budget_ms = 40.0;
  options.fault_plan = "stall-lane=mobilenet:1:700";
  auto server = InferenceServer::start(options);
  ASSERT_TRUE(server.ok()) << server.error();
  auto stream = connect_to(*server.value());
  ASSERT_EQ(request_response(stream, "PING").kind, Response::Kind::Pong);

  ASSERT_TRUE(
      stream.send_line_for("INFER mobilenet id=z1", kClientDeadline).ok());
  // Let the batch launch and wedge, then shut down mid-stall. Concurrently
  // calling shutdown twice also exercises the idempotence guard.
  std::this_thread::sleep_for(std::chrono::milliseconds{20});
  std::thread raced{[&] { server.value()->shutdown(); }};
  server.value()->shutdown();
  raced.join();

  auto reply = stream.recv_line_for(kClientDeadline);
  ASSERT_TRUE(reply.ok()) << reply.error();
  const auto parsed = parse_response(reply.value());
  ASSERT_TRUE(parsed.ok());
  // One verdict, whatever the interleaving produced: served (possibly after
  // a redispatch) or a clean error — never silence.
  EXPECT_TRUE(parsed.value().kind == Response::Kind::Ok ||
              parsed.value().kind == Response::Kind::Err);
  const auto summary = summarize_slo(registry);
  EXPECT_EQ(summary.requests, summary.served + summary.shed + summary.errors);
}

// --- framing fuzz regression ---------------------------------------------

TEST(ServeFaultFuzz, MutatedFramesNeverWedgeAConnWorker) {
  auto options = chaos_options();
  options.models = {"sensormlp"};
  auto server = InferenceServer::start(options);
  ASSERT_TRUE(server.ok()) << server.error();

  util::Rng rng{0xF4A11};
  constexpr int kCases = 256;
  for (int i = 0; i < kCases; ++i) {
    const std::size_t payload_len = 1 + rng.uniform_u64(64);
    util::Bytes payload(payload_len, 0);
    for (auto& byte : payload) {
      byte = static_cast<std::uint8_t>(rng.uniform_u64(256));
    }
    auto frame = net::encode_frame(payload);
    auto stream = connect_to(*server.value());
    const auto line =
        "INFER sensormlp id=fz" + std::to_string(i) +
        " payload=" + std::to_string(payload_len);
    ASSERT_TRUE(stream.send_line_for(line, kClientDeadline).ok());

    if (i % 2 == 0) {
      // Truncation: a prefix of a valid frame, then close mid-frame. The
      // server sees EOF, counts a protocol error and moves on.
      const std::size_t cut = 1 + rng.uniform_u64(frame.size() - 1);
      const std::string prefix{reinterpret_cast<const char*>(frame.data()),
                               cut};
      ASSERT_TRUE(stream.send_raw_for(prefix, kClientDeadline).ok());
      // stream closes at scope exit
    } else {
      // Bit flip anywhere except the length field (bytes 5..8): the codec
      // gets the full frame promptly and must reject it — CRC mismatch,
      // bad magic or version skew — within the deadline, never a hang.
      std::size_t at = rng.uniform_u64(frame.size());
      while (at >= 5 && at < 9) at = rng.uniform_u64(frame.size());
      frame[at] ^= static_cast<std::uint8_t>(1u << rng.uniform_u64(8));
      const std::string bytes{reinterpret_cast<const char*>(frame.data()),
                              frame.size()};
      ASSERT_TRUE(stream.send_raw_for(bytes, kClientDeadline).ok());
      auto reply = stream.recv_line_for(std::chrono::milliseconds{3000});
      if (reply.ok()) {
        // The only acceptable reply is a clean protocol error.
        const auto parsed = parse_response(reply.value());
        ASSERT_TRUE(parsed.ok()) << reply.value();
        EXPECT_EQ(parsed.value().kind, Response::Kind::Err) << reply.value();
      }
      // Otherwise the connection was closed — equally clean.
    }
  }

  // The server survived all 256 hostile connections and still serves.
  auto stream = connect_to(*server.value());
  EXPECT_EQ(request_response(stream, "INFER sensormlp id=alive").kind,
            Response::Kind::Ok);
}

}  // namespace
}  // namespace gauge::serve
