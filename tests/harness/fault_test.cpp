// Fault-injection suite for the harness recovery layer: deadlines on the
// completion channel, HubGuard restoration on every exit path, RetryPolicy
// on pushes, and per-job quarantine/requeue in the batch runners. All
// faults come from the deterministic FaultPlan seam, so every scenario
// replays identically. Suite names carry "HarnessFault" so scripts/check.sh
// can run them under ThreadSanitizer (run_fleet drives one master thread
// per port).
#include <gtest/gtest.h>

#include <chrono>

#include "harness/adb.hpp"
#include "harness/agent.hpp"
#include "harness/fault.hpp"
#include "harness/usbhub.hpp"
#include "harness/workflow.hpp"
#include "nn/trace.hpp"
#include "nn/zoo.hpp"
#include "telemetry/metrics.hpp"

namespace gauge::harness {
namespace {

nn::ModelTrace sample_trace() {
  nn::ZooSpec spec;
  spec.archetype = "mobilenet";
  spec.resolution = 48;
  spec.seed = 3;
  auto trace = nn::trace_model(nn::build_model(spec));
  EXPECT_TRUE(trace.ok());
  return std::move(trace).take();
}

BenchmarkJob sample_job(const std::string& id) {
  BenchmarkJob job;
  job.job_id = id;
  job.model_key = "mobilenet-48";
  job.trace = sample_trace();
  job.warmup_iterations = 2;
  job.iterations = 5;
  job.sleep_between_s = 0.01;
  return job;
}

HarnessOptions fast_options() {
  HarnessOptions options;
  options.job_deadline_s = 0.25;  // keep injected-timeout scenarios fast
  return options;
}

std::int64_t counter_value(telemetry::MetricsRegistry& registry,
                           const std::string& name) {
  for (const auto& [key, value] : registry.counters()) {
    if (key == name) return value;
  }
  return 0;
}

void expect_port_restored(const UsbHub& hub, std::size_t port) {
  EXPECT_TRUE(hub.data_on(port));
  EXPECT_TRUE(hub.power_on(port));
}

// ------------------------------------------------------------- fault plan

TEST(HarnessFault, ParseFaultPlanGrammar) {
  auto plan = parse_fault_plan(
      "drop-push=2,3; kill-daemon=flaky; delay-done=0.25;"
      "refuse-reconnect=2; keep-power");
  ASSERT_TRUE(plan.ok()) << plan.error();
  EXPECT_EQ(plan.value().drop_pushes, (std::vector<int>{2, 3}));
  EXPECT_FALSE(plan.value().kill_daemon_before_connect);
  EXPECT_TRUE(plan.value().daemon_dies_for("flaky"));
  EXPECT_FALSE(plan.value().daemon_dies_for("other"));
  EXPECT_DOUBLE_EQ(plan.value().delay_done_message_s, 0.25);
  EXPECT_EQ(plan.value().refuse_reconnects, 2);
  EXPECT_TRUE(plan.value().keep_power_on);

  EXPECT_TRUE(parse_fault_plan("kill-daemon").value().kill_daemon_before_connect);
  EXPECT_FALSE(parse_fault_plan("drop-push=zero").ok());
  EXPECT_FALSE(parse_fault_plan("explode").ok());
}

// -------------------------------------------------------------- deadlines

TEST(HarnessFault, DeadlineExpiryWhenDaemonNeverConnects) {
  telemetry::MetricsRegistry registry;
  telemetry::ScopedRegistry scope{registry};
  UsbHub hub{1};
  DeviceAgent agent{device::make_device("Q845"), 61};
  FaultPlan faults;
  faults.kill_daemon_before_connect = true;
  agent.inject_faults(faults);
  BenchmarkMaster master{hub, 0, agent, fast_options()};

  const auto start = std::chrono::steady_clock::now();
  const auto result = master.run_job(sample_job("dead-daemon"));
  const auto elapsed = std::chrono::steady_clock::now() - start;

  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().find("timed out"), std::string::npos)
      << result.error();
  // No hang: well within a multiple of the 0.25 s deadline.
  EXPECT_LT(elapsed, std::chrono::seconds{10});
  EXPECT_GE(counter_value(registry, "gauge.harness.deadline_hits"), 1);
  // The guard restored the port despite the failure.
  expect_port_restored(hub, 0);
}

TEST(HarnessFault, DelayedCompletionMessagePastDeadline) {
  telemetry::MetricsRegistry registry;
  telemetry::ScopedRegistry scope{registry};
  UsbHub hub{1};
  DeviceAgent agent{device::make_device("Q855"), 62};
  FaultPlan faults;
  faults.delay_done_message_s = 0.6;  // past the 0.25 s deadline
  agent.inject_faults(faults);
  BenchmarkMaster master{hub, 0, agent, fast_options()};

  const auto result = master.run_job(sample_job("late-done"));
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().find("timed out"), std::string::npos);
  EXPECT_GE(counter_value(registry, "gauge.harness.deadline_hits"), 1);
  expect_port_restored(hub, 0);
}

// ------------------------------------------------------------ hub guard

TEST(HarnessFault, KeepPowerFaultShowsUpInUsbChannel) {
  // Regression for the old `usb_powered_during_run = hub_->power_on(port_)`
  // line that sampled the post-cut state where a restore was intended: with
  // a fault that keeps the rail up during the run, the workflow must report
  // the ~2.5 W charging pollution in usb_energy_j.
  UsbHub hub{1};
  FaultPlan faults;
  faults.keep_power_on = true;
  hub.inject_faults(faults);
  DeviceAgent agent{device::make_device("Q888"), 63};
  BenchmarkMaster master{hub, 0, agent};

  const auto result = master.run_job(sample_job("powered-run"));
  ASSERT_TRUE(result.ok()) << result.error();
  EXPECT_GT(result.value().usb_energy_j, 0.0);
  expect_port_restored(hub, 0);

  // Control: a clean hub on the same device shows a clean channel.
  UsbHub clean_hub{1};
  DeviceAgent clean_agent{device::make_device("Q888"), 63};
  BenchmarkMaster clean_master{clean_hub, 0, clean_agent};
  const auto clean = clean_master.run_job(sample_job("powered-run"));
  ASSERT_TRUE(clean.ok());
  EXPECT_DOUBLE_EQ(clean.value().usb_energy_j, 0.0);
}

TEST(HarnessFault, HubRefusingFirstReconnectIsRetriedInPlace) {
  telemetry::MetricsRegistry registry;
  telemetry::ScopedRegistry scope{registry};
  UsbHub hub{1};
  FaultPlan faults;
  faults.refuse_reconnects = 1;
  hub.inject_faults(faults);
  DeviceAgent agent{device::make_device("Q845"), 64};
  BenchmarkMaster master{hub, 0, agent};

  const auto result = master.run_job(sample_job("flaky-hub"));
  ASSERT_TRUE(result.ok()) << result.error();
  EXPECT_GE(counter_value(registry, "gauge.harness.hub_reconnect_retries"), 1);
  expect_port_restored(hub, 0);
}

// --------------------------------------------------------- push retries

TEST(HarnessFault, FlakyPushRecoversViaRetryPolicy) {
  telemetry::MetricsRegistry registry;
  telemetry::ScopedRegistry scope{registry};
  UsbHub hub{1};
  DeviceAgent agent{device::make_device("Q845"), 65};
  FaultPlan faults;
  faults.drop_pushes = {1};  // first push call fails, retry succeeds
  agent.inject_faults(faults);
  BenchmarkMaster master{hub, 0, agent};

  const auto result = master.run_job(sample_job("flaky-push"));
  ASSERT_TRUE(result.ok()) << result.error();
  EXPECT_EQ(counter_value(registry, "gauge.harness.push_retries"), 1);
  EXPECT_EQ(counter_value(registry, "gauge.harness.push_failed"), 0);
  // The retry slept its backoff on the simulated clock, not the wall clock.
  bool found_backoff = false;
  for (const auto& [name, snapshot] : registry.histograms()) {
    if (name == "gauge.harness.push_backoff_s") {
      found_backoff = snapshot.count == 1 && snapshot.sum > 0.0;
    }
  }
  EXPECT_TRUE(found_backoff);
}

TEST(HarnessFault, TerminalPushFailureIsCountedAndAnnotated) {
  telemetry::MetricsRegistry registry;
  telemetry::ScopedRegistry scope{registry};
  UsbHub hub{1};
  DeviceAgent agent{device::make_device("Q855"), 66};
  FaultPlan faults;
  faults.drop_pushes = {1, 2, 3};  // exhausts the default 3 attempts
  agent.inject_faults(faults);
  BenchmarkMaster master{hub, 0, agent};

  const auto result = master.run_job(sample_job("dead-push"));
  ASSERT_FALSE(result.ok());
  // Two retries and, unlike the old push_with_retry, the terminal failure
  // itself is counted.
  EXPECT_EQ(counter_value(registry, "gauge.harness.push_retries"), 2);
  EXPECT_EQ(counter_value(registry, "gauge.harness.push_failed"), 1);
  // The failing harness.job span carries the error string and stage.
  bool annotated = false;
  for (const auto& span : registry.spans()) {
    if (span.name != "harness.job") continue;
    bool has_error = false;
    bool has_stage = false;
    for (const auto& [key, value] : span.args) {
      if (key == "error" && value.find("push i/o error") != std::string::npos) {
        has_error = true;
      }
      if (key == "stage" && value == "push") has_stage = true;
    }
    annotated = has_error && has_stage;
  }
  EXPECT_TRUE(annotated);
}

// ----------------------------------------------------- quarantine/requeue

TEST(HarnessFault, TransientPushFailureIsRequeuedAndSucceeds) {
  telemetry::MetricsRegistry registry;
  telemetry::ScopedRegistry scope{registry};
  UsbHub hub{1};
  DeviceAgent agent{device::make_device("Q845"), 67};
  FaultPlan faults;
  // Job order a, b, c: job b's first attempt burns push calls 3-5 (three
  // tries on the runner push); its requeued attempt starts at call 8.
  faults.drop_pushes = {3, 4, 5};
  agent.inject_faults(faults);
  BenchmarkMaster master{hub, 0, agent};

  const auto outcomes = master.run_jobs_detailed(
      {sample_job("a"), sample_job("b"), sample_job("c")});
  ASSERT_EQ(outcomes.size(), 3u);
  // Outcomes stay in input order even though b ran last.
  EXPECT_EQ(outcomes[1].job_id, "b");
  for (const auto& outcome : outcomes) {
    EXPECT_TRUE(outcome.ok()) << outcome.job_id;
  }
  EXPECT_EQ(outcomes[0].attempts, 1);
  EXPECT_EQ(outcomes[1].attempts, 2);
  EXPECT_EQ(outcomes[2].attempts, 1);
  EXPECT_NE(outcomes[1].recovery_action.find("requeued after push failure"),
            std::string::npos);
  EXPECT_NE(outcomes[1].recovery_action.find("requeue succeeded"),
            std::string::npos);
  EXPECT_EQ(counter_value(registry, "gauge.harness.requeues"), 1);
  EXPECT_EQ(counter_value(registry, "gauge.harness.recoveries"), 1);
  EXPECT_EQ(counter_value(registry, "gauge.harness.quarantined_jobs"), 0);
}

TEST(HarnessFault, ExhaustedRequeueBudgetQuarantinesOnlyThatJob) {
  telemetry::MetricsRegistry registry;
  telemetry::ScopedRegistry scope{registry};
  UsbHub hub{1};
  DeviceAgent agent{device::make_device("Q888"), 68};
  FaultPlan faults;
  // Job b fails all pushes on both attempts (calls 3-5 first, 8-10 after
  // the requeue); a and c are untouched.
  faults.drop_pushes = {3, 4, 5, 8, 9, 10};
  agent.inject_faults(faults);
  BenchmarkMaster master{hub, 0, agent};

  const auto outcomes = master.run_jobs_detailed(
      {sample_job("a"), sample_job("b"), sample_job("c")});
  ASSERT_EQ(outcomes.size(), 3u);
  EXPECT_TRUE(outcomes[0].ok());
  EXPECT_TRUE(outcomes[2].ok());
  ASSERT_FALSE(outcomes[1].ok());
  EXPECT_EQ(outcomes[1].attempts, 2);
  EXPECT_EQ(outcomes[1].failure_stage, "push");
  EXPECT_NE(outcomes[1].result.error().find("push i/o error"),
            std::string::npos);
  EXPECT_NE(outcomes[1].recovery_action.find("quarantined"),
            std::string::npos);
  EXPECT_EQ(counter_value(registry, "gauge.harness.quarantined_jobs"), 1);
  expect_port_restored(hub, 0);
}

TEST(HarnessFault, QuarantineThenRequeueSucceedsOnFlakyPort) {
  // The hub refuses 3 reconnects: the in-job restore (2 tries) fails the
  // first attempt, the guard's destructor gets the port back on its second
  // try, and the requeued attempt runs clean.
  telemetry::MetricsRegistry registry;
  telemetry::ScopedRegistry scope{registry};
  UsbHub hub{1};
  FaultPlan faults;
  faults.refuse_reconnects = 3;
  hub.inject_faults(faults);
  DeviceAgent agent{device::make_device("Q855"), 69};
  HarnessOptions options;
  options.hub_retry.max_attempts = 2;
  BenchmarkMaster master{hub, 0, agent, options};

  const auto outcomes = master.run_jobs_detailed({sample_job("flaky-port")});
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_TRUE(outcomes[0].ok()) << outcomes[0].result.error();
  EXPECT_EQ(outcomes[0].attempts, 2);
  EXPECT_NE(outcomes[0].recovery_action.find("requeued after reconnect"),
            std::string::npos);
  EXPECT_GE(counter_value(registry, "gauge.harness.hub_reconnect_retries"), 2);
  expect_port_restored(hub, 0);
}

// ------------------------------------------------------------- fleet

TEST(HarnessFault, FleetReturnsPartialPerDeviceResults) {
  telemetry::MetricsRegistry registry;
  telemetry::ScopedRegistry scope{registry};
  UsbHub hub{3};
  DeviceAgent clean{device::make_device("Q845"), 71};
  DeviceAgent flaky{device::make_device("Q855"), 72};
  DeviceAgent mixed{device::make_device("Q888"), 73};
  FaultPlan flaky_faults;
  flaky_faults.drop_pushes = {1};  // one transient drop, retried in place
  flaky.inject_faults(flaky_faults);
  FaultPlan mixed_faults;
  mixed_faults.kill_daemon_for_jobs = {"m-bad"};  // one dead job on the device
  mixed.inject_faults(mixed_faults);

  std::vector<FleetDevice> fleet;
  fleet.push_back({&clean, {sample_job("c-1"), sample_job("c-2")}});
  fleet.push_back({&flaky, {sample_job("f-1")}});
  fleet.push_back(
      {&mixed, {sample_job("m-ok"), sample_job("m-bad"), sample_job("m-ok2")}});

  const auto results = run_fleet(hub, std::move(fleet), fast_options());
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].results.ok());
  EXPECT_TRUE(results[1].results.ok());
  // The mixed device: the dead job is quarantined with a reason while the
  // healthy jobs on the same device still return results.
  EXPECT_FALSE(results[2].results.ok());
  ASSERT_EQ(results[2].outcomes.size(), 3u);
  EXPECT_TRUE(results[2].outcomes[0].ok());
  ASSERT_FALSE(results[2].outcomes[1].ok());
  EXPECT_EQ(results[2].outcomes[1].failure_stage, "deadline");
  EXPECT_NE(results[2].outcomes[1].recovery_action.find("quarantined"),
            std::string::npos);
  EXPECT_TRUE(results[2].outcomes[2].ok());
  EXPECT_EQ(results[2].outcomes[2].result.value().done_message, "DONE m-ok2");
  // Every port's data+power restored no matter what failed on it.
  for (std::size_t port = 0; port < 3; ++port) expect_port_restored(hub, port);
}

// --------------------------------------------------- fault-free identity

TEST(HarnessFault, FaultFreeDetailedRunMatchesLegacyBatch) {
  UsbHub hub_a{1};
  UsbHub hub_b{1};
  DeviceAgent agent_a{device::make_device("Q845"), 74};
  DeviceAgent agent_b{device::make_device("Q845"), 74};
  BenchmarkMaster legacy{hub_a, 0, agent_a};
  BenchmarkMaster detailed{hub_b, 0, agent_b};
  const std::vector<BenchmarkJob> jobs{sample_job("same-1"),
                                       sample_job("same-2")};

  const auto batch = legacy.run_jobs(jobs);
  const auto outcomes = detailed.run_jobs_detailed(jobs);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(outcomes.size(), 2u);
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    ASSERT_TRUE(outcomes[i].ok());
    const auto& a = batch.value()[i];
    const auto& b = outcomes[i].result.value();
    EXPECT_EQ(a.done_message, b.done_message);
    EXPECT_EQ(a.job.latencies_s, b.job.latencies_s);
    EXPECT_DOUBLE_EQ(a.monsoon_energy_j, b.monsoon_energy_j);
    EXPECT_DOUBLE_EQ(a.measured_energy_per_inference_j,
                     b.measured_energy_per_inference_j);
    EXPECT_DOUBLE_EQ(a.usb_energy_j, 0.0);
    EXPECT_DOUBLE_EQ(b.usb_energy_j, 0.0);
  }
}

}  // namespace
}  // namespace gauge::harness
