#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "harness/adb.hpp"
#include "harness/agent.hpp"
#include "harness/usbhub.hpp"
#include "harness/workflow.hpp"
#include "net/socket.hpp"
#include "nn/trace.hpp"
#include "nn/zoo.hpp"
#include "util/stats.hpp"

namespace gauge::harness {
namespace {

nn::ModelTrace sample_trace() {
  nn::ZooSpec spec;
  spec.archetype = "mobilenet";
  spec.resolution = 48;
  spec.seed = 3;
  auto trace = nn::trace_model(nn::build_model(spec));
  EXPECT_TRUE(trace.ok());
  return std::move(trace).take();
}

BenchmarkJob sample_job(const std::string& id = "job-1") {
  BenchmarkJob job;
  job.job_id = id;
  job.model_key = "mobilenet-48";
  job.trace = sample_trace();
  job.warmup_iterations = 3;
  job.iterations = 10;
  job.sleep_between_s = 0.02;
  return job;
}

// -------------------------------------------------------------------- net

TEST(Net, LoopbackLineRoundtrip) {
  auto listener = net::TcpListener::bind(0);
  ASSERT_TRUE(listener.ok()) << listener.error();
  const auto port = listener.value().port();
  ASSERT_GT(port, 0);

  std::thread client{[port] {
    auto stream = net::TcpStream::connect("127.0.0.1", port);
    ASSERT_TRUE(stream.ok()) << stream.error();
    ASSERT_TRUE(stream.value().send_line("hello from device").ok());
    auto reply = stream.value().recv_line();
    ASSERT_TRUE(reply.ok());
    EXPECT_EQ(reply.value(), "ack");
  }};

  auto server = listener.value().accept();
  ASSERT_TRUE(server.ok()) << server.error();
  auto line = server.value().recv_line();
  ASSERT_TRUE(line.ok()) << line.error();
  EXPECT_EQ(line.value(), "hello from device");
  ASSERT_TRUE(server.value().send_line("ack").ok());
  client.join();
}

TEST(Net, MultipleLinesBuffered) {
  auto listener = net::TcpListener::bind(0);
  ASSERT_TRUE(listener.ok());
  const auto port = listener.value().port();
  std::thread client{[port] {
    auto stream = net::TcpStream::connect("127.0.0.1", port);
    ASSERT_TRUE(stream.ok());
    ASSERT_TRUE(stream.value().send_line("one").ok());
    ASSERT_TRUE(stream.value().send_line("two").ok());
  }};
  auto server = listener.value().accept();
  ASSERT_TRUE(server.ok());
  EXPECT_EQ(server.value().recv_line().value(), "one");
  EXPECT_EQ(server.value().recv_line().value(), "two");
  client.join();
}

TEST(Net, LargeLineCrossesRecvChunks) {
  // Lines larger than the 512-byte recv chunk must reassemble correctly.
  auto listener = net::TcpListener::bind(0);
  ASSERT_TRUE(listener.ok());
  const auto port = listener.value().port();
  const std::string payload(10'000, 'x');
  std::thread client{[port, &payload] {
    auto stream = net::TcpStream::connect("127.0.0.1", port);
    ASSERT_TRUE(stream.ok());
    ASSERT_TRUE(stream.value().send_line(payload).ok());
  }};
  auto server = listener.value().accept();
  ASSERT_TRUE(server.ok());
  auto line = server.value().recv_line();
  client.join();
  ASSERT_TRUE(line.ok()) << line.error();
  EXPECT_EQ(line.value(), payload);
}

TEST(Net, EmptyLineIsDelivered) {
  auto listener = net::TcpListener::bind(0);
  ASSERT_TRUE(listener.ok());
  const auto port = listener.value().port();
  std::thread client{[port] {
    auto stream = net::TcpStream::connect("127.0.0.1", port);
    ASSERT_TRUE(stream.ok());
    ASSERT_TRUE(stream.value().send_line("").ok());
    ASSERT_TRUE(stream.value().send_line("after").ok());
  }};
  auto server = listener.value().accept();
  ASSERT_TRUE(server.ok());
  EXPECT_EQ(server.value().recv_line().value(), "");
  EXPECT_EQ(server.value().recv_line().value(), "after");
  client.join();
}

TEST(Net, SequentialAcceptsOnOneListener) {
  auto listener = net::TcpListener::bind(0);
  ASSERT_TRUE(listener.ok());
  const auto port = listener.value().port();
  for (int round = 0; round < 3; ++round) {
    std::thread client{[port, round] {
      auto stream = net::TcpStream::connect("127.0.0.1", port);
      ASSERT_TRUE(stream.ok());
      ASSERT_TRUE(stream.value().send_line("round " + std::to_string(round)).ok());
    }};
    auto server = listener.value().accept();
    ASSERT_TRUE(server.ok());
    EXPECT_EQ(server.value().recv_line().value(),
              "round " + std::to_string(round));
    client.join();
  }
}

TEST(Net, ConnectToClosedPortFails) {
  // Bind then drop a listener to find a (very likely) free port.
  std::uint16_t port;
  {
    auto listener = net::TcpListener::bind(0);
    ASSERT_TRUE(listener.ok());
    port = listener.value().port();
  }
  EXPECT_FALSE(net::TcpStream::connect("127.0.0.1", port).ok());
}

TEST(Net, FdMoveTransfersOwnership) {
  const int raw = ::open("/dev/null", O_RDONLY);
  ASSERT_GE(raw, 0);
  net::Fd a{raw};
  net::Fd b{std::move(a)};
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move): moved-from state is specified
  EXPECT_EQ(a.get(), -1);
  ASSERT_TRUE(b.valid());
  EXPECT_EQ(b.get(), raw);

  // Move assignment closes the destination's old fd and transfers the new.
  const int raw2 = ::open("/dev/null", O_RDONLY);
  ASSERT_GE(raw2, 0);
  net::Fd c{raw2};
  c = std::move(b);
  EXPECT_EQ(c.get(), raw);
  EXPECT_FALSE(b.valid());  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(::fcntl(raw2, F_GETFD), -1);  // raw2 really was closed
  EXPECT_EQ(::fcntl(raw, F_GETFD), 0);    // raw still owned by c
}

TEST(Net, TruncatedLineOnPeerCloseIsReported) {
  // A peer that dies mid-line (no trailing '\n') must not have its partial
  // payload silently discarded: the error carries what arrived.
  auto listener = net::TcpListener::bind(0);
  ASSERT_TRUE(listener.ok());
  const auto port = listener.value().port();
  std::thread client{[port] {
    auto stream = net::TcpStream::connect("127.0.0.1", port);
    ASSERT_TRUE(stream.ok());
    ASSERT_TRUE(stream.value().send_raw("DONE job-x").ok());
    // close without the newline
  }};
  auto server = listener.value().accept();
  ASSERT_TRUE(server.ok());
  client.join();
  auto line = server.value().recv_line();
  ASSERT_FALSE(line.ok());
  EXPECT_NE(line.error().find("truncated line"), std::string::npos);
  EXPECT_NE(line.error().find("DONE job-x"), std::string::npos);
  EXPECT_FALSE(net::is_timeout(line.error()));
}

TEST(Net, AcceptForTimesOutWithoutClient) {
  auto listener = net::TcpListener::bind(0);
  ASSERT_TRUE(listener.ok());
  const auto start = std::chrono::steady_clock::now();
  auto connection = listener.value().accept_for(std::chrono::milliseconds{50});
  const auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_FALSE(connection.ok());
  EXPECT_TRUE(net::is_timeout(connection.error())) << connection.error();
  EXPECT_LT(elapsed, std::chrono::seconds{5});
}

TEST(Net, RecvLineForTimesOutOnSilentPeer) {
  auto listener = net::TcpListener::bind(0);
  ASSERT_TRUE(listener.ok());
  const auto port = listener.value().port();
  std::atomic<bool> done{false};
  std::thread client{[port, &done] {
    auto stream = net::TcpStream::connect("127.0.0.1", port);
    ASSERT_TRUE(stream.ok());
    while (!done.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds{5});
    }
  }};
  auto server = listener.value().accept();
  ASSERT_TRUE(server.ok());
  auto line = server.value().recv_line_for(std::chrono::milliseconds{50});
  done.store(true);
  client.join();
  ASSERT_FALSE(line.ok());
  EXPECT_TRUE(net::is_timeout(line.error())) << line.error();
}

TEST(Net, RecvLineForDeliversPromptLine) {
  auto listener = net::TcpListener::bind(0);
  ASSERT_TRUE(listener.ok());
  const auto port = listener.value().port();
  std::thread client{[port] {
    auto stream = net::TcpStream::connect("127.0.0.1", port);
    ASSERT_TRUE(stream.ok());
    ASSERT_TRUE(stream.value().send_line("on time").ok());
  }};
  auto server = listener.value().accept_for(std::chrono::seconds{5});
  ASSERT_TRUE(server.ok());
  auto line = server.value().recv_line_for(std::chrono::seconds{5});
  client.join();
  ASSERT_TRUE(line.ok()) << line.error();
  EXPECT_EQ(line.value(), "on time");
}

TEST(Net, RecvOnClosedPeerFails) {
  auto listener = net::TcpListener::bind(0);
  ASSERT_TRUE(listener.ok());
  const auto port = listener.value().port();
  std::thread client{[port] {
    auto stream = net::TcpStream::connect("127.0.0.1", port);
    ASSERT_TRUE(stream.ok());
    // close immediately without sending a full line
  }};
  auto server = listener.value().accept();
  ASSERT_TRUE(server.ok());
  client.join();
  EXPECT_FALSE(server.value().recv_line().ok());
}

TEST(Net, SendRawForTimesOutWhenPeerStopsDraining) {
  // A peer that never reads eventually fills both socket buffers; the
  // deadline variant must give up instead of wedging the writer forever.
  auto listener = net::TcpListener::bind(0);
  ASSERT_TRUE(listener.ok());
  auto client = net::TcpStream::connect("127.0.0.1", listener.value().port());
  ASSERT_TRUE(client.ok());
  auto server = listener.value().accept();
  ASSERT_TRUE(server.ok());
  // 64 MiB safely exceeds the default loopback send+receive buffers.
  const std::string payload(64u << 20, 'x');
  const auto start = std::chrono::steady_clock::now();
  auto sent = client.value().send_raw_for(payload, std::chrono::milliseconds{100});
  const auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_FALSE(sent.ok());
  EXPECT_TRUE(net::is_timeout(sent.error())) << sent.error();
  EXPECT_LT(elapsed, std::chrono::seconds{10});
}

TEST(Net, SendLineForCompletesWhenPeerReads) {
  auto listener = net::TcpListener::bind(0);
  ASSERT_TRUE(listener.ok());
  const auto port = listener.value().port();
  std::thread client{[port] {
    auto stream = net::TcpStream::connect("127.0.0.1", port);
    ASSERT_TRUE(stream.ok());
    ASSERT_TRUE(
        stream.value().send_line_for("hello", std::chrono::seconds{5}).ok());
  }};
  auto server = listener.value().accept_for(std::chrono::seconds{5});
  ASSERT_TRUE(server.ok());
  auto line = server.value().recv_line_for(std::chrono::seconds{5});
  client.join();
  ASSERT_TRUE(line.ok()) << line.error();
  EXPECT_EQ(line.value(), "hello");
}

TEST(Net, RecvExactForReadsLengthFramedPayloadAfterLine) {
  // recv_line over-reads into its buffer; recv_exact_for must consume those
  // buffered bytes before touching the socket again.
  auto listener = net::TcpListener::bind(0);
  ASSERT_TRUE(listener.ok());
  const auto port = listener.value().port();
  std::thread client{[port] {
    auto stream = net::TcpStream::connect("127.0.0.1", port);
    ASSERT_TRUE(stream.ok());
    ASSERT_TRUE(stream.value().send_raw("HEADER payload=8\nabcdefgh").ok());
  }};
  auto server = listener.value().accept();
  ASSERT_TRUE(server.ok());
  client.join();
  auto line = server.value().recv_line_for(std::chrono::seconds{5});
  ASSERT_TRUE(line.ok()) << line.error();
  EXPECT_EQ(line.value(), "HEADER payload=8");
  auto payload = server.value().recv_exact_for(8, std::chrono::seconds{5});
  ASSERT_TRUE(payload.ok()) << payload.error();
  EXPECT_EQ(payload.value(), "abcdefgh");
}

TEST(Net, RecvExactForReportsTruncatedPayload) {
  auto listener = net::TcpListener::bind(0);
  ASSERT_TRUE(listener.ok());
  const auto port = listener.value().port();
  std::thread client{[port] {
    auto stream = net::TcpStream::connect("127.0.0.1", port);
    ASSERT_TRUE(stream.ok());
    ASSERT_TRUE(stream.value().send_raw("abc").ok());
    // close with 5 bytes still owed
  }};
  auto server = listener.value().accept();
  ASSERT_TRUE(server.ok());
  client.join();
  auto payload = server.value().recv_exact_for(8, std::chrono::seconds{5});
  ASSERT_FALSE(payload.ok());
  EXPECT_NE(payload.error().find("truncated payload"), std::string::npos);
  EXPECT_FALSE(net::is_timeout(payload.error()));
}

TEST(Net, BoundedBacklogListenerStillServes) {
  // The backlog caps the kernel accept queue; connections accepted promptly
  // behave exactly as with the default backlog.
  auto listener = net::TcpListener::bind(0, /*backlog=*/1);
  ASSERT_TRUE(listener.ok());
  const auto port = listener.value().port();
  std::thread client{[port] {
    auto stream = net::TcpStream::connect("127.0.0.1", port);
    ASSERT_TRUE(stream.ok());
    ASSERT_TRUE(stream.value().send_line("bounded").ok());
  }};
  auto server = listener.value().accept_for(std::chrono::seconds{5});
  ASSERT_TRUE(server.ok());
  auto line = server.value().recv_line_for(std::chrono::seconds{5});
  client.join();
  ASSERT_TRUE(line.ok()) << line.error();
  EXPECT_EQ(line.value(), "bounded");
}

// -------------------------------------------------------------------- hub

TEST(UsbHub, ChannelsToggle) {
  UsbHub hub{2};
  EXPECT_TRUE(hub.data_on(0));
  EXPECT_TRUE(hub.power_on(1));
  hub.disconnect(0);
  EXPECT_FALSE(hub.data_on(0));
  EXPECT_FALSE(hub.power_on(0));
  EXPECT_TRUE(hub.data_on(1));
  hub.reconnect(0);
  EXPECT_TRUE(hub.power_on(0));
}

// -------------------------------------------------------------------- adb

TEST(Adb, PushPullRequiresDataChannel) {
  UsbHub hub{1};
  DeviceAgent agent{device::make_device("Q845")};
  AdbConnection adb{hub, 0, agent};

  ASSERT_TRUE(adb.push("/data/local/tmp/x", util::to_bytes("abc")).ok());
  auto pulled = adb.pull("/data/local/tmp/x");
  ASSERT_TRUE(pulled.ok());
  EXPECT_EQ(util::as_view(pulled.value()), "abc");

  hub.set_data(0, false);
  EXPECT_FALSE(adb.push("/y", util::to_bytes("z")).ok());
  EXPECT_FALSE(adb.pull("/data/local/tmp/x").ok());
  EXPECT_FALSE(adb.assert_benchmark_state().ok());

  hub.set_data(0, true);
  ASSERT_TRUE(adb.remove_all().ok());
  EXPECT_FALSE(agent.has_file("/data/local/tmp/x"));
}

TEST(Adb, AssertBenchmarkStateSetsFlags) {
  UsbHub hub{1};
  DeviceAgent agent{device::make_device("Q855")};
  AdbConnection adb{hub, 0, agent};
  ASSERT_TRUE(adb.assert_benchmark_state().ok());
  EXPECT_FALSE(agent.state().wifi_on);
  EXPECT_FALSE(agent.state().sensors_on);
  EXPECT_TRUE(agent.state().screen_on);
  EXPECT_TRUE(agent.state().screen_black);
  EXPECT_GE(agent.state().screen_timeout_s, 600);
}

// ------------------------------------------------------------------ agent

TEST(Agent, DaemonProducesLatenciesAndPhases) {
  DeviceAgent agent{device::make_device("Q845"), 11};
  agent.state().wifi_on = false;
  const auto result = agent.run_benchmark_daemon(sample_job());
  EXPECT_EQ(result.latencies_s.size(), 10u);
  for (double t : result.latencies_s) EXPECT_GT(t, 0.0);
  EXPECT_GT(result.energy_per_inference_j, 0.0);
  EXPECT_GT(result.total_duration_s, 0.0);
  EXPECT_TRUE(agent.state().wifi_on);  // daemon re-enables WiFi at the end
  // Phases: idle lead-in + warmups + (run + sleep) per iteration.
  EXPECT_EQ(agent.last_power_phases().size(), 1u + 3u + 2u * 10u);
  EXPECT_GT(agent.clock().now_seconds(), 0.0);
}

TEST(Agent, WarmupsAreSlowerThanSteadyState) {
  DeviceAgent agent{device::make_device("Q888"), 5};
  BenchmarkJob job = sample_job("warm");
  const auto result = agent.run_benchmark_daemon(job);
  // First warm-up phase duration (index 1, after the idle lead-in) should
  // exceed the mean measured latency.
  const double first_warmup = agent.last_power_phases()[1].duration_s;
  EXPECT_GT(first_warmup, util::mean(result.latencies_s));
}

// --------------------------------------------------------------- workflow

TEST(Workflow, EndToEndJob) {
  UsbHub hub{1};
  DeviceAgent agent{device::make_device("Q845"), 21};
  BenchmarkMaster master{hub, 0, agent};

  const auto result = master.run_job(sample_job("e2e-1"));
  ASSERT_TRUE(result.ok()) << result.error();
  EXPECT_EQ(result.value().done_message, "DONE e2e-1");
  EXPECT_EQ(result.value().job.latencies_s.size(), 10u);
  EXPECT_GT(result.value().monsoon_energy_j, 0.0);
  EXPECT_GT(result.value().measured_energy_per_inference_j, 0.0);
  // The hub cut USB power for the whole run: no charging current polluted
  // the measurement.
  EXPECT_DOUBLE_EQ(result.value().usb_energy_j, 0.0);
  // USB restored, device cleaned up for the next job.
  EXPECT_TRUE(hub.data_on(0));
  EXPECT_TRUE(hub.power_on(0));
  EXPECT_TRUE(agent.list_files().empty());
}

TEST(Workflow, MonsoonAgreesWithAnalyticEnergy) {
  UsbHub hub{1};
  DeviceAgent agent{device::make_device("Q855"), 23};
  BenchmarkMaster master{hub, 0, agent};
  const auto result = master.run_job(sample_job("energy-check"));
  ASSERT_TRUE(result.ok()) << result.error();
  const double analytic = result.value().job.energy_per_inference_j;
  const double measured = result.value().measured_energy_per_inference_j;
  // Within 25%: the Monsoon path includes warmup energy attribution noise.
  EXPECT_NEAR(measured, analytic, analytic * 0.25);
}

TEST(Workflow, BatchOfJobsRunsSerially) {
  UsbHub hub{1};
  DeviceAgent agent{device::make_device("Q888"), 31};
  BenchmarkMaster master{hub, 0, agent};
  std::vector<BenchmarkJob> jobs{sample_job("a"), sample_job("b"),
                                 sample_job("c")};
  const auto results = master.run_jobs(jobs);
  ASSERT_TRUE(results.ok()) << results.error();
  ASSERT_EQ(results.value().size(), 3u);
  EXPECT_EQ(results.value()[2].done_message, "DONE c");
}

TEST(Workflow, FleetRunsDevicesConcurrently) {
  // One master thread per hub port, as in the paper's Fig. 2 platform.
  UsbHub hub{3};
  DeviceAgent q845{device::make_device("Q845"), 41};
  DeviceAgent q855{device::make_device("Q855"), 42};
  DeviceAgent q888{device::make_device("Q888"), 43};
  std::vector<FleetDevice> fleet;
  fleet.push_back({&q845, {sample_job("f845-a"), sample_job("f845-b")}});
  fleet.push_back({&q855, {sample_job("f855-a")}});
  fleet.push_back({&q888, {sample_job("f888-a"), sample_job("f888-b"),
                           sample_job("f888-c")}});

  const auto results = run_fleet(hub, std::move(fleet));
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].device, "Q845");
  ASSERT_TRUE(results[0].results.ok()) << results[0].results.error();
  EXPECT_EQ(results[0].results.value().size(), 2u);
  ASSERT_TRUE(results[1].results.ok());
  EXPECT_EQ(results[1].results.value().size(), 1u);
  ASSERT_TRUE(results[2].results.ok());
  EXPECT_EQ(results[2].results.value().size(), 3u);
  EXPECT_EQ(results[2].results.value()[2].done_message, "DONE f888-c");
  // All ports restored.
  for (std::size_t p = 0; p < 3; ++p) {
    EXPECT_TRUE(hub.data_on(p));
    EXPECT_TRUE(hub.power_on(p));
  }
}

TEST(Workflow, FleetIsolatesFailures) {
  UsbHub hub{2};
  hub.set_data(1, false);  // second device starts offline...
  DeviceAgent ok_dev{device::make_device("Q845"), 51};
  DeviceAgent dead_dev{device::make_device("Q855"), 52};
  // ...and even once hub recovery brings the port back, its daemon is dead,
  // so every attempt times out and the device's queue is quarantined.
  FaultPlan dead_faults;
  dead_faults.kill_daemon_before_connect = true;
  dead_dev.inject_faults(dead_faults);
  std::vector<FleetDevice> fleet;
  fleet.push_back({&ok_dev, {sample_job("alive")}});
  fleet.push_back({&dead_dev, {sample_job("dead")}});
  HarnessOptions options;
  options.job_deadline_s = 0.2;  // keep the dead device's timeouts short
  const auto results = run_fleet(hub, std::move(fleet), options);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[0].results.ok());
  EXPECT_FALSE(results[1].results.ok());
  ASSERT_EQ(results[1].outcomes.size(), 1u);
  EXPECT_FALSE(results[1].outcomes[0].ok());
  EXPECT_FALSE(results[1].outcomes[0].result.error().empty());
  // The healthy device's outcomes carry its results.
  ASSERT_EQ(results[0].outcomes.size(), 1u);
  EXPECT_TRUE(results[0].outcomes[0].ok());
}

TEST(Workflow, FailsWhenDeviceAlreadyOffline) {
  UsbHub hub{1};
  hub.set_data(0, false);
  DeviceAgent agent{device::make_device("Q845")};
  BenchmarkMaster master{hub, 0, agent};
  const auto result = master.run_job(sample_job());
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace gauge::harness
