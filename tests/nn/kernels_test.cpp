// Parity suite for the kernel engine (src/nn/kernels, DESIGN.md §13): every
// optimised / quantised kernel is cross-checked against the scalar reference
// backend over deliberately awkward shapes — 1x1 kernels, stride 2, SAME
// padding edges, channel counts that are not multiples of the 8-lane panel —
// plus the true int8 path, relu fusion, multi-threaded dispatch and a full
// zoo sweep. scripts/check.sh runs this suite standalone (plain and under
// sanitizers) via `ctest -R Kernel`.
#include "nn/kernels/kernels.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "nn/interp.hpp"
#include "nn/zoo.hpp"

namespace gauge::nn {
namespace {

namespace kernels = nn::kernels;

Layer input_layer(Shape shape) {
  Layer l;
  l.type = LayerType::Input;
  l.input_shape = std::move(shape);
  return l;
}

// Deterministic pseudo-random values in [-1, 1) — no <random> so the suite
// is bit-stable across standard libraries.
std::vector<float> jitter(std::size_t n, std::uint32_t seed) {
  std::vector<float> v(n);
  std::uint32_t state = seed * 2654435761u + 12345u;
  for (auto& x : v) {
    state = state * 1664525u + 1013904223u;
    x = static_cast<float>(state >> 8) * (1.0f / 8388608.0f) - 1.0f;
  }
  return v;
}

Tensor f32_tensor(Shape shape, std::vector<float> values) {
  Tensor t{std::move(shape), DType::F32};
  EXPECT_EQ(t.f32().size(), values.size());
  t.f32() = std::move(values);
  return t;
}

Tensor random_f32(Shape shape, std::uint32_t seed) {
  Tensor t{std::move(shape), DType::F32};
  t.f32() = jitter(t.f32().size(), seed);
  return t;
}

// Runs `g` under `backend` and the reference backend with the same inputs
// and expects elementwise agreement within `tol` (absolute + relative).
void expect_parity(const Graph& g, const std::vector<Tensor>& inputs,
                   kernels::ExecBackend backend, double tol) {
  Interpreter ref{g, 1, kernels::ExecBackend::Reference};
  Interpreter alt{g, 1, backend};
  auto a = ref.run(inputs);
  auto b = alt.run(inputs);
  ASSERT_TRUE(a.ok()) << a.error();
  ASSERT_TRUE(b.ok()) << b.error();
  ASSERT_EQ(a.value().size(), b.value().size());
  for (std::size_t t = 0; t < a.value().size(); ++t) {
    if (a.value()[t].dtype() != DType::F32) continue;
    const auto& av = a.value()[t].f32();
    const auto& bv = b.value()[t].f32();
    ASSERT_EQ(av.size(), bv.size());
    for (std::size_t i = 0; i < av.size(); ++i) {
      EXPECT_NEAR(av[i], bv[i], tol * (1.0 + std::abs(av[i])))
          << "output " << t << " elem " << i << " backend "
          << kernels::exec_backend_name(backend);
    }
  }
}

// ---- conv shapes -----------------------------------------------------------

struct ConvCase {
  const char* name;
  int in_h, in_w, cin, cout, kh, kw, sh, sw;
  Padding padding;
};

Graph conv_graph(const ConvCase& c, bool relu6 = false) {
  Graph g;
  const int in = g.add(input_layer(Shape{1, c.in_h, c.in_w, c.cin}));
  Layer conv;
  conv.type = LayerType::Conv2D;
  conv.inputs = {in};
  conv.kernel_h = c.kh;
  conv.kernel_w = c.kw;
  conv.stride_h = c.sh;
  conv.stride_w = c.sw;
  conv.padding = c.padding;
  conv.weights.push_back(random_f32(Shape{c.kh, c.kw, c.cin, c.cout}, 7));
  conv.weights.push_back(random_f32(Shape{c.cout}, 9));
  const int ci = g.add(std::move(conv));
  if (relu6) {
    Layer r;
    r.type = LayerType::Relu6;
    r.inputs = {ci};
    g.add(std::move(r));
  }
  return g;
}

class KernelConvParity : public ::testing::TestWithParam<ConvCase> {};

TEST_P(KernelConvParity, OptimisedMatchesReference) {
  const auto& c = GetParam();
  const Graph g = conv_graph(c);
  const auto x = random_f32(Shape{1, c.in_h, c.in_w, c.cin}, 21);
  expect_parity(g, {x}, kernels::ExecBackend::Optimised, 1e-4);
}

TEST_P(KernelConvParity, HybridQuantisedTracksReference) {
  // The quantised backend runs f32 convs through dynamic-range int8:
  // agreement is approximate, bounded by the two quantisation steps.
  const auto& c = GetParam();
  const Graph g = conv_graph(c);
  const auto x = random_f32(Shape{1, c.in_h, c.in_w, c.cin}, 21);
  expect_parity(g, {x}, kernels::ExecBackend::Quantised, 0.2);
}

INSTANTIATE_TEST_SUITE_P(
    OddShapes, KernelConvParity,
    ::testing::Values(
        ConvCase{"conv1x1", 8, 8, 3, 10, 1, 1, 1, 1, Padding::Valid},
        ConvCase{"stride2_same_odd", 9, 9, 4, 6, 3, 3, 2, 2, Padding::Same},
        ConvCase{"same_edges", 5, 5, 3, 8, 3, 3, 1, 1, Padding::Same},
        ConvCase{"offpanel_cout13", 7, 6, 5, 13, 3, 3, 1, 1, Padding::Valid},
        ConvCase{"panel_aligned", 6, 6, 8, 16, 3, 3, 1, 1, Padding::Same},
        ConvCase{"tall_kernel", 8, 5, 2, 9, 5, 1, 1, 1, Padding::Valid},
        ConvCase{"stride2_valid", 8, 8, 3, 12, 2, 2, 2, 2, Padding::Valid},
        ConvCase{"single_pixel_out", 3, 3, 6, 7, 3, 3, 1, 1, Padding::Valid}),
    [](const auto& info) { return std::string{info.param.name}; });

// ---- depthwise -------------------------------------------------------------

struct DwCase {
  const char* name;
  int in_h, in_w, channels, kh, kw, sh, sw;
  Padding padding;
};

Graph dw_graph(const DwCase& c) {
  Graph g;
  const int in = g.add(input_layer(Shape{1, c.in_h, c.in_w, c.channels}));
  Layer dw;
  dw.type = LayerType::DepthwiseConv2D;
  dw.inputs = {in};
  dw.kernel_h = c.kh;
  dw.kernel_w = c.kw;
  dw.stride_h = c.sh;
  dw.stride_w = c.sw;
  dw.padding = c.padding;
  dw.weights.push_back(random_f32(Shape{c.kh, c.kw, c.channels, 1}, 13));
  dw.weights.push_back(random_f32(Shape{c.channels}, 15));
  g.add(std::move(dw));
  return g;
}

class KernelDepthwiseParity : public ::testing::TestWithParam<DwCase> {};

TEST_P(KernelDepthwiseParity, OptimisedMatchesReference) {
  const auto& c = GetParam();
  const Graph g = dw_graph(c);
  const auto x = random_f32(Shape{1, c.in_h, c.in_w, c.channels}, 31);
  expect_parity(g, {x}, kernels::ExecBackend::Optimised, 1e-4);
}

TEST_P(KernelDepthwiseParity, HybridQuantisedTracksReference) {
  const auto& c = GetParam();
  const Graph g = dw_graph(c);
  const auto x = random_f32(Shape{1, c.in_h, c.in_w, c.channels}, 31);
  expect_parity(g, {x}, kernels::ExecBackend::Quantised, 0.2);
}

INSTANTIATE_TEST_SUITE_P(
    OddShapes, KernelDepthwiseParity,
    ::testing::Values(
        DwCase{"offlane_c10", 6, 6, 10, 3, 3, 1, 1, Padding::Same},
        DwCase{"stride2_c8", 9, 9, 8, 3, 3, 2, 2, Padding::Same},
        DwCase{"narrow_c3_1x1", 4, 4, 3, 1, 1, 1, 1, Padding::Valid},
        DwCase{"valid_c17", 7, 7, 17, 3, 3, 1, 1, Padding::Valid}),
    [](const auto& info) { return std::string{info.param.name}; });

// ---- dense -----------------------------------------------------------------

Graph dense_graph(int in_dim, int out_dim) {
  Graph g;
  const int in = g.add(input_layer(Shape{1, in_dim}));
  Layer dense;
  dense.type = LayerType::Dense;
  dense.inputs = {in};
  dense.units = out_dim;
  dense.weights.push_back(random_f32(Shape{in_dim, out_dim}, 41));
  dense.weights.push_back(random_f32(Shape{out_dim}, 43));
  g.add(std::move(dense));
  return g;
}

TEST(KernelDenseParity, OddDimsAndBatches) {
  for (const auto& [in_dim, out_dim] : std::vector<std::pair<int, int>>{
           {7, 13}, {32, 8}, {5, 1}, {64, 100}}) {
    const Graph g = dense_graph(in_dim, out_dim);
    for (int batch : {1, 3}) {
      Tensor x{Shape{batch, in_dim}, DType::F32};
      x.f32() = jitter(x.f32().size(), 51);
      expect_parity(g, {x}, kernels::ExecBackend::Optimised, 1e-4);
      expect_parity(g, {x}, kernels::ExecBackend::Quantised, 0.2);
    }
  }
}

// ---- true int8 (integer accumulate + requantise) ---------------------------

Graph int8_conv_graph() {
  Graph g;
  const int in = g.add(input_layer(Shape{1, 5, 5, 3}));
  Layer q;
  q.type = LayerType::Quantize;
  q.inputs = {in};
  q.quant_scale = 0.05f;
  q.quant_zero_point = 3;
  const int qi = g.add(std::move(q));
  Layer conv;
  conv.type = LayerType::Conv2D;
  conv.inputs = {qi};
  conv.kernel_h = conv.kernel_w = 3;
  conv.padding = Padding::Same;
  Tensor w{Shape{3, 3, 3, 10}, DType::I8};
  w.quant_scale = 0.02f;
  const auto raw = jitter(w.i8().size(), 61);
  for (std::size_t i = 0; i < raw.size(); ++i) {
    w.i8()[i] = static_cast<std::int8_t>(std::lround(raw[i] * 100.0f));
  }
  conv.weights.push_back(std::move(w));
  conv.weights.push_back(random_f32(Shape{10}, 63));
  conv.quant_scale = 0.1f;
  conv.quant_zero_point = 5;
  const int ci = g.add(std::move(conv));
  Layer dq;
  dq.type = LayerType::Dequantize;
  dq.inputs = {ci};
  g.add(std::move(dq));
  return g;
}

TEST(KernelInt8, ConvIntegerPathMatchesReferenceWithinOneStep) {
  const Graph g = int8_conv_graph();
  const auto x = random_f32(Shape{1, 5, 5, 3}, 71);
  Interpreter ref{g, 1, kernels::ExecBackend::Reference};
  Interpreter quant{g, 1, kernels::ExecBackend::Quantised};
  auto a = ref.run({x});
  auto b = quant.run({x});
  ASSERT_TRUE(a.ok()) << a.error();
  ASSERT_TRUE(b.ok()) << b.error();
  const auto& av = a.value()[0].f32();
  const auto& bv = b.value()[0].f32();
  ASSERT_EQ(av.size(), bv.size());
  bool nonzero = false;
  for (std::size_t i = 0; i < av.size(); ++i) {
    // Both sides run i8 x i8 -> i32 integer accumulation; only the final
    // float requantise rounding may differ, i.e. at most one output step.
    EXPECT_NEAR(av[i], bv[i], 0.1f + 1e-4f) << i;
    nonzero = nonzero || av[i] != 0.0f;
  }
  EXPECT_TRUE(nonzero);
}

TEST(KernelInt8, DenseIntegerPathMatchesReference) {
  Graph g;
  const int in = g.add(input_layer(Shape{1, 6}));
  Layer q;
  q.type = LayerType::Quantize;
  q.inputs = {in};
  q.quant_scale = 0.05f;
  const int qi = g.add(std::move(q));
  Layer dense;
  dense.type = LayerType::Dense;
  dense.inputs = {qi};
  dense.units = 9;
  Tensor w{Shape{6, 9}, DType::I8};
  w.quant_scale = 0.03f;
  const auto raw = jitter(w.i8().size(), 81);
  for (std::size_t i = 0; i < raw.size(); ++i) {
    w.i8()[i] = static_cast<std::int8_t>(std::lround(raw[i] * 90.0f));
  }
  dense.weights.push_back(std::move(w));
  dense.quant_scale = 0.05f;
  const int di = g.add(std::move(dense));
  Layer dq;
  dq.type = LayerType::Dequantize;
  dq.inputs = {di};
  g.add(std::move(dq));

  const auto x = random_f32(Shape{1, 6}, 83);
  Interpreter ref{g, 1, kernels::ExecBackend::Reference};
  Interpreter quant{g, 1, kernels::ExecBackend::Quantised};
  auto a = ref.run({x});
  auto b = quant.run({x});
  ASSERT_TRUE(a.ok()) << a.error();
  ASSERT_TRUE(b.ok()) << b.error();
  for (std::size_t i = 0; i < a.value()[0].f32().size(); ++i) {
    EXPECT_NEAR(a.value()[0].f32()[i], b.value()[0].f32()[i], 0.05f + 1e-4f);
  }
}

TEST(KernelInt8, QuantizedStemModelParity) {
  ZooSpec spec;
  spec.archetype = "mobilenet";
  spec.resolution = 32;
  spec.seed = 8;
  const Graph stem = with_quantized_stem(build_model(spec));
  auto inputs = random_inputs(stem, 12);
  ASSERT_TRUE(inputs.ok());
  expect_parity(stem, inputs.value(), kernels::ExecBackend::Quantised, 0.25);
}

// ---- relu fusion -----------------------------------------------------------

TEST(KernelFusion, FusedReluMatchesReferenceAndCounts) {
  const ConvCase c{"fused", 6, 6, 4, 10, 3, 3, 1, 1, Padding::Same};
  const Graph g = conv_graph(c, /*relu6=*/true);
  const auto x = random_f32(Shape{1, 6, 6, 4}, 91);

  Interpreter ref{g, 1, kernels::ExecBackend::Reference};
  Interpreter opt{g, 1, kernels::ExecBackend::Optimised};
  auto a = ref.run({x});
  auto b = opt.run({x});
  ASSERT_TRUE(a.ok()) << a.error();
  ASSERT_TRUE(b.ok()) << b.error();
  const auto& av = a.value()[0].f32();
  const auto& bv = b.value()[0].f32();
  ASSERT_EQ(av.size(), bv.size());
  for (std::size_t i = 0; i < av.size(); ++i) {
    EXPECT_NEAR(av[i], bv[i], 1e-4f) << i;
    EXPECT_GE(bv[i], 0.0f);
    EXPECT_LE(bv[i], 6.0f);
  }
  // The optimised backend folded the relu6 into the conv's store; the relu
  // layer itself became a tensor move.
  EXPECT_EQ(opt.stats().fused_activations, 1);
  EXPECT_EQ(ref.stats().fused_activations, 0);
}

TEST(KernelFusion, ReluWithTwoConsumersIsNotFused) {
  // conv feeds relu AND add: fusing the clamp into conv would corrupt the
  // second consumer, so the planner must leave it alone.
  Graph g;
  const int in = g.add(input_layer(Shape{1, 4, 4, 3}));
  Layer conv;
  conv.type = LayerType::Conv2D;
  conv.inputs = {in};
  conv.kernel_h = conv.kernel_w = 1;
  conv.weights.push_back(random_f32(Shape{1, 1, 3, 3}, 95));
  const int ci = g.add(std::move(conv));
  Layer relu;
  relu.type = LayerType::Relu;
  relu.inputs = {ci};
  const int ri = g.add(std::move(relu));
  Layer add;
  add.type = LayerType::Add;
  add.inputs = {ci, ri};
  g.add(std::move(add));

  const auto x = random_f32(Shape{1, 4, 4, 3}, 97);
  Interpreter opt{g, 1, kernels::ExecBackend::Optimised};
  auto out = opt.run({x});
  ASSERT_TRUE(out.ok()) << out.error();
  EXPECT_EQ(opt.stats().fused_activations, 0);
  expect_parity(g, {x}, kernels::ExecBackend::Optimised, 1e-4);
}

// ---- lstm ------------------------------------------------------------------

TEST(KernelLstmParity, WordRnnOptimisedMatchesReference) {
  ZooSpec spec;
  spec.archetype = "wordrnn";
  spec.resolution = 12;
  spec.seed = 23;
  const Graph g = build_model(spec);
  auto inputs = random_inputs(g, 29);
  ASSERT_TRUE(inputs.ok());
  expect_parity(g, inputs.value(), kernels::ExecBackend::Optimised, 1e-3);
  expect_parity(g, inputs.value(), kernels::ExecBackend::Quantised, 0.2);
}

// ---- threading -------------------------------------------------------------

TEST(KernelThreading, MultithreadedMatchesSingleThreaded) {
  ZooSpec spec;
  spec.archetype = "mobilenet";
  spec.resolution = 32;
  spec.seed = 3;
  const Graph g = build_model(spec);
  auto inputs = random_inputs(g, 17);
  ASSERT_TRUE(inputs.ok());
  for (const auto backend :
       {kernels::ExecBackend::Optimised, kernels::ExecBackend::Quantised}) {
    Interpreter single{g, 1, backend};
    Interpreter quad{g, 4, backend};
    auto a = single.run(inputs.value());
    auto b = quad.run(inputs.value());
    ASSERT_TRUE(a.ok()) << a.error();
    ASSERT_TRUE(b.ok()) << b.error();
    const auto& av = a.value()[0].f32();
    const auto& bv = b.value()[0].f32();
    ASSERT_EQ(av.size(), bv.size());
    for (std::size_t i = 0; i < av.size(); ++i) {
      // Thread count must not change results at all: chunking never splits
      // a reduction, so both runs do identical arithmetic.
      EXPECT_EQ(av[i], bv[i]) << i;
    }
  }
}

// ---- backend plumbing ------------------------------------------------------

TEST(KernelBackend, NameParseRoundtrip) {
  EXPECT_EQ(kernels::exec_backends().size(), 3u);
  for (const auto backend : kernels::exec_backends()) {
    const auto parsed =
        kernels::parse_exec_backend(kernels::exec_backend_name(backend));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, backend);
  }
  EXPECT_EQ(kernels::parse_exec_backend("ref"),
            kernels::ExecBackend::Reference);
  EXPECT_EQ(kernels::parse_exec_backend("optimized"),
            kernels::ExecBackend::Optimised);
  EXPECT_EQ(kernels::parse_exec_backend("quantized"),
            kernels::ExecBackend::Quantised);
  EXPECT_FALSE(kernels::parse_exec_backend("warp-drive").has_value());
  EXPECT_FALSE(kernels::parse_exec_backend("").has_value());
}

TEST(KernelBackend, InterpreterReportsItsBackend) {
  const Graph g = dense_graph(4, 4);
  for (const auto backend : kernels::exec_backends()) {
    Interpreter interp{g, 1, backend};
    EXPECT_EQ(interp.backend(), backend);
  }
}

// ---- zoo sweep -------------------------------------------------------------

class KernelZooSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(KernelZooSweep, EveryArchetypeRunsOnEveryBackend) {
  ZooSpec spec;
  spec.archetype = GetParam();
  spec.resolution =
      archetype_modality(spec.archetype) == Modality::Image ? 32 : 16;
  spec.seed = 42;
  const Graph g = build_model(spec);
  auto inputs = random_inputs(g, 9);
  ASSERT_TRUE(inputs.ok()) << inputs.error();
  expect_parity(g, inputs.value(), kernels::ExecBackend::Optimised, 1e-3);
  expect_parity(g, inputs.value(), kernels::ExecBackend::Quantised, 0.35);
}

INSTANTIATE_TEST_SUITE_P(AllArchetypes, KernelZooSweep,
                         ::testing::ValuesIn(zoo_archetypes()));

}  // namespace
}  // namespace gauge::nn
