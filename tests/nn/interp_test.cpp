#include "nn/interp.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "nn/zoo.hpp"

namespace gauge::nn {
namespace {

Layer input_layer(Shape shape) {
  Layer l;
  l.type = LayerType::Input;
  l.input_shape = std::move(shape);
  return l;
}

Tensor tensor_from(Shape shape, std::vector<float> values) {
  Tensor t{std::move(shape), DType::F32};
  EXPECT_EQ(t.f32().size(), values.size());
  t.f32() = std::move(values);
  return t;
}

TEST(Interp, IdentityConv1x1) {
  // 1x1 conv with identity weights passes values through.
  Graph g;
  const int in = g.add(input_layer(Shape{1, 2, 2, 2}));
  Layer conv;
  conv.type = LayerType::Conv2D;
  conv.inputs = {in};
  conv.kernel_h = conv.kernel_w = 1;
  conv.weights.push_back(Tensor::zeros(Shape{1, 1, 2, 2}));
  // W[0,0,ci,co] = identity
  conv.weights[0].f32() = {1, 0, 0, 1};
  conv.weights.push_back(Tensor::zeros(Shape{2}));
  g.add(std::move(conv));

  Interpreter interp{g};
  auto out = interp.run({tensor_from(Shape{1, 2, 2, 2},
                                     {1, 2, 3, 4, 5, 6, 7, 8})});
  ASSERT_TRUE(out.ok()) << out.error();
  EXPECT_EQ(out.value()[0].f32(), (std::vector<float>{1, 2, 3, 4, 5, 6, 7, 8}));
}

TEST(Interp, Conv3x3KnownValues) {
  // Single-channel 3x3 sum filter (all-ones kernel), VALID padding.
  Graph g;
  const int in = g.add(input_layer(Shape{1, 3, 3, 1}));
  Layer conv;
  conv.type = LayerType::Conv2D;
  conv.inputs = {in};
  conv.kernel_h = conv.kernel_w = 3;
  conv.padding = Padding::Valid;
  conv.weights.push_back(Tensor::zeros(Shape{3, 3, 1, 1}));
  for (auto& w : conv.weights[0].f32()) w = 1.0f;
  g.add(std::move(conv));

  Interpreter interp{g};
  auto out = interp.run({tensor_from(Shape{1, 3, 3, 1},
                                     {1, 2, 3, 4, 5, 6, 7, 8, 9})});
  ASSERT_TRUE(out.ok()) << out.error();
  ASSERT_EQ(out.value()[0].f32().size(), 1u);
  EXPECT_FLOAT_EQ(out.value()[0].f32()[0], 45.0f);
}

TEST(Interp, ConvSamePaddingZeroBorders) {
  // All-ones 3x3 kernel, SAME padding on 2x2 input: corners see 4 values.
  Graph g;
  const int in = g.add(input_layer(Shape{1, 2, 2, 1}));
  Layer conv;
  conv.type = LayerType::Conv2D;
  conv.inputs = {in};
  conv.kernel_h = conv.kernel_w = 3;
  conv.weights.push_back(Tensor::zeros(Shape{3, 3, 1, 1}));
  for (auto& w : conv.weights[0].f32()) w = 1.0f;
  g.add(std::move(conv));
  Interpreter interp{g};
  auto out = interp.run({tensor_from(Shape{1, 2, 2, 1}, {1, 2, 3, 4})});
  ASSERT_TRUE(out.ok()) << out.error();
  // Every output = sum of all 4 inputs (kernel covers whole input).
  for (float v : out.value()[0].f32()) EXPECT_FLOAT_EQ(v, 10.0f);
}

TEST(Interp, BiasApplied) {
  Graph g;
  const int in = g.add(input_layer(Shape{1, 1, 1, 1}));
  Layer conv;
  conv.type = LayerType::Conv2D;
  conv.inputs = {in};
  conv.weights.push_back(tensor_from(Shape{1, 1, 1, 1}, {2.0f}));
  conv.weights.push_back(tensor_from(Shape{1}, {0.5f}));
  g.add(std::move(conv));
  Interpreter interp{g};
  auto out = interp.run({tensor_from(Shape{1, 1, 1, 1}, {3.0f})});
  ASSERT_TRUE(out.ok());
  EXPECT_FLOAT_EQ(out.value()[0].f32()[0], 6.5f);
}

TEST(Interp, DepthwiseConvPerChannel) {
  Graph g;
  const int in = g.add(input_layer(Shape{1, 1, 1, 2}));
  Layer dw;
  dw.type = LayerType::DepthwiseConv2D;
  dw.inputs = {in};
  dw.weights.push_back(tensor_from(Shape{1, 1, 2, 1}, {10.0f, 100.0f}));
  g.add(std::move(dw));
  Interpreter interp{g};
  auto out = interp.run({tensor_from(Shape{1, 1, 1, 2}, {1.0f, 2.0f})});
  ASSERT_TRUE(out.ok()) << out.error();
  EXPECT_EQ(out.value()[0].f32(), (std::vector<float>{10.0f, 200.0f}));
}

TEST(Interp, DenseMatmul) {
  Graph g;
  const int in = g.add(input_layer(Shape{1, 3}));
  Layer dense;
  dense.type = LayerType::Dense;
  dense.inputs = {in};
  dense.units = 2;
  dense.weights.push_back(tensor_from(Shape{3, 2}, {1, 4, 2, 5, 3, 6}));
  dense.weights.push_back(tensor_from(Shape{2}, {0.0f, 1.0f}));
  g.add(std::move(dense));
  Interpreter interp{g};
  auto out = interp.run({tensor_from(Shape{1, 3}, {1, 1, 1})});
  ASSERT_TRUE(out.ok()) << out.error();
  EXPECT_EQ(out.value()[0].f32(), (std::vector<float>{6.0f, 16.0f}));
}

TEST(Interp, ActivationsClampCorrectly) {
  Graph g;
  const int in = g.add(input_layer(Shape{1, 4}));
  Layer relu6;
  relu6.type = LayerType::Relu6;
  relu6.inputs = {in};
  g.add(std::move(relu6));
  Interpreter interp{g};
  auto out = interp.run({tensor_from(Shape{1, 4}, {-1.0f, 0.5f, 6.0f, 9.0f})});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value()[0].f32(), (std::vector<float>{0.0f, 0.5f, 6.0f, 6.0f}));
}

TEST(Interp, SoftmaxSumsToOne) {
  Graph g;
  const int in = g.add(input_layer(Shape{1, 5}));
  Layer sm;
  sm.type = LayerType::Softmax;
  sm.inputs = {in};
  g.add(std::move(sm));
  Interpreter interp{g};
  auto out = interp.run({tensor_from(Shape{1, 5}, {1, 2, 3, 4, 100})});
  ASSERT_TRUE(out.ok());
  double sum = 0.0;
  for (float v : out.value()[0].f32()) {
    EXPECT_GE(v, 0.0f);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-5);
  EXPECT_GT(out.value()[0].f32()[4], 0.99f);  // stable under large logits
}

TEST(Interp, MaxAndAvgPool) {
  Graph g;
  const int in = g.add(input_layer(Shape{1, 2, 2, 1}));
  Layer mp;
  mp.type = LayerType::MaxPool2D;
  mp.inputs = {in};
  mp.kernel_h = mp.kernel_w = 2;
  mp.stride_h = mp.stride_w = 2;
  g.add(std::move(mp));
  Layer ap;
  ap.type = LayerType::AvgPool2D;
  ap.inputs = {in};
  ap.kernel_h = ap.kernel_w = 2;
  ap.stride_h = ap.stride_w = 2;
  g.add(std::move(ap));
  Interpreter interp{g};
  auto out = interp.run({tensor_from(Shape{1, 2, 2, 1}, {1, 2, 3, 4})});
  ASSERT_TRUE(out.ok());
  EXPECT_FLOAT_EQ(out.value()[0].f32()[0], 4.0f);   // max
  EXPECT_FLOAT_EQ(out.value()[1].f32()[0], 2.5f);   // avg
}

TEST(Interp, AddMulConcat) {
  Graph g;
  const int a = g.add(input_layer(Shape{1, 2}));
  const int b = g.add(input_layer(Shape{1, 2}));
  Layer add;
  add.type = LayerType::Add;
  add.inputs = {a, b};
  const int s = g.add(std::move(add));
  Layer mul;
  mul.type = LayerType::Mul;
  mul.inputs = {a, b};
  const int m = g.add(std::move(mul));
  Layer cat;
  cat.type = LayerType::Concat;
  cat.inputs = {s, m};
  cat.axis = 1;
  g.add(std::move(cat));
  Interpreter interp{g};
  auto out = interp.run({tensor_from(Shape{1, 2}, {1, 2}),
                         tensor_from(Shape{1, 2}, {3, 4})});
  ASSERT_TRUE(out.ok()) << out.error();
  EXPECT_EQ(out.value()[0].f32(), (std::vector<float>{4, 6, 3, 8}));
}

TEST(Interp, ResizeNearestDoubles) {
  Graph g;
  const int in = g.add(input_layer(Shape{1, 1, 2, 1}));
  Layer rs;
  rs.type = LayerType::ResizeNearest;
  rs.inputs = {in};
  rs.resize_scale = 2;
  g.add(std::move(rs));
  Interpreter interp{g};
  auto out = interp.run({tensor_from(Shape{1, 1, 2, 1}, {1, 2})});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value()[0].f32(), (std::vector<float>{1, 1, 2, 2, 1, 1, 2, 2}));
}

TEST(Interp, SliceExtractsWindow) {
  Graph g;
  const int in = g.add(input_layer(Shape{1, 4}));
  Layer slice;
  slice.type = LayerType::Slice;
  slice.inputs = {in};
  slice.slice_begin = {0, 1};
  slice.slice_size = {1, 2};
  g.add(std::move(slice));
  Interpreter interp{g};
  auto out = interp.run({tensor_from(Shape{1, 4}, {10, 20, 30, 40})});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value()[0].f32(), (std::vector<float>{20, 30}));
}

TEST(Interp, PadAddsZeroBorder) {
  Graph g;
  const int in = g.add(input_layer(Shape{1, 1, 1, 1}));
  Layer pad;
  pad.type = LayerType::Pad;
  pad.inputs = {in};
  pad.pad_top = pad.pad_bottom = pad.pad_left = pad.pad_right = 1;
  g.add(std::move(pad));
  Interpreter interp{g};
  auto out = interp.run({tensor_from(Shape{1, 1, 1, 1}, {7})});
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out.value()[0].shape(), (Shape{1, 3, 3, 1}));
  EXPECT_FLOAT_EQ(out.value()[0].f32()[4], 7.0f);
  EXPECT_FLOAT_EQ(out.value()[0].f32()[0], 0.0f);
}

TEST(Interp, BatchNormScalesAndShifts) {
  Graph g;
  const int in = g.add(input_layer(Shape{1, 1, 1, 2}));
  Layer bn;
  bn.type = LayerType::BatchNorm;
  bn.inputs = {in};
  bn.weights.push_back(tensor_from(Shape{2}, {2.0f, 3.0f}));
  bn.weights.push_back(tensor_from(Shape{2}, {1.0f, -1.0f}));
  g.add(std::move(bn));
  Interpreter interp{g};
  auto out = interp.run({tensor_from(Shape{1, 1, 1, 2}, {10, 10})});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value()[0].f32(), (std::vector<float>{21.0f, 29.0f}));
}

TEST(Interp, QuantizeDequantizeRoundtrip) {
  Graph g;
  const int in = g.add(input_layer(Shape{1, 4}));
  Layer q;
  q.type = LayerType::Quantize;
  q.inputs = {in};
  q.quant_scale = 0.05f;
  q.quant_zero_point = 0;
  const int qi = g.add(std::move(q));
  Layer dq;
  dq.type = LayerType::Dequantize;
  dq.inputs = {qi};
  g.add(std::move(dq));
  Interpreter interp{g};
  auto out = interp.run({tensor_from(Shape{1, 4}, {-1.0f, 0.0f, 0.52f, 3.0f})});
  ASSERT_TRUE(out.ok()) << out.error();
  const auto& v = out.value()[0].f32();
  EXPECT_NEAR(v[0], -1.0f, 0.05f);
  EXPECT_NEAR(v[1], 0.0f, 0.05f);
  EXPECT_NEAR(v[2], 0.52f, 0.05f);
  EXPECT_NEAR(v[3], 3.0f, 0.05f);
}

TEST(Interp, Int8ConvMatchesFloatApproximately) {
  // Build a conv and compare float vs quantised execution end to end.
  ZooSpec spec;
  spec.archetype = "contournet";
  spec.resolution = 16;
  spec.seed = 99;
  const Graph fg = build_model(spec);

  // Quantised variant: same weights, int8.
  Graph qg = fg;
  quantize_weights(qg);

  auto inputs = random_inputs(fg, 4242);
  ASSERT_TRUE(inputs.ok());
  Interpreter fi{fg};
  Interpreter qi{qg};
  auto fo = fi.run(inputs.value());
  auto qo = qi.run(inputs.value());
  ASSERT_TRUE(fo.ok()) << fo.error();
  ASSERT_TRUE(qo.ok()) << qo.error();
  const auto& fv = fo.value()[0].f32();
  const auto& qv = qo.value()[0].f32();
  ASSERT_EQ(fv.size(), qv.size());
  double err = 0.0;
  for (std::size_t i = 0; i < fv.size(); ++i) {
    err += std::abs(static_cast<double>(fv[i]) - qv[i]);
  }
  err /= static_cast<double>(fv.size());
  EXPECT_LT(err, 0.05);  // hybrid quantisation keeps outputs close
}

TEST(Interp, BatchedRunProducesBatchedOutput) {
  ZooSpec spec;
  spec.archetype = "sensormlp";
  spec.resolution = 8;
  const Graph g = build_model(spec);
  Interpreter interp{g};
  auto inputs = random_inputs(g, 7, /*batch=*/5);
  ASSERT_TRUE(inputs.ok());
  auto out = interp.run(inputs.value());
  ASSERT_TRUE(out.ok()) << out.error();
  EXPECT_EQ(out.value()[0].shape()[0], 5);
}

TEST(Interp, BatchEqualsRepeatedSingles) {
  // Running a batch must produce the same per-row results as N single runs.
  ZooSpec spec;
  spec.archetype = "sensormlp";
  spec.resolution = 4;
  spec.seed = 5;
  const Graph g = build_model(spec);
  Interpreter interp{g};

  auto batch_in = random_inputs(g, 11, /*batch=*/3);
  ASSERT_TRUE(batch_in.ok());
  auto batch_out = interp.run(batch_in.value());
  ASSERT_TRUE(batch_out.ok()) << batch_out.error();

  const auto& bt = batch_in.value()[0];
  const std::int64_t row = bt.elements() / 3;
  for (int r = 0; r < 3; ++r) {
    Tensor single{Shape{1, row}, DType::F32};
    for (std::int64_t k = 0; k < row; ++k) {
      single.f32()[static_cast<std::size_t>(k)] =
          bt.f32()[static_cast<std::size_t>(r * row + k)];
    }
    auto out = interp.run({single});
    ASSERT_TRUE(out.ok()) << out.error();
    const std::int64_t out_row = batch_out.value()[0].elements() / 3;
    for (std::int64_t k = 0; k < out_row; ++k) {
      EXPECT_NEAR(out.value()[0].f32()[static_cast<std::size_t>(k)],
                  batch_out.value()[0]
                      .f32()[static_cast<std::size_t>(r * out_row + k)],
                  1e-4f)
          << "row " << r << " elem " << k;
    }
  }
}

TEST(Interp, MultithreadedMatchesSingleThreaded) {
  ZooSpec spec;
  spec.archetype = "mobilenet";
  spec.resolution = 32;
  spec.seed = 3;
  const Graph g = build_model(spec);
  auto inputs = random_inputs(g, 17);
  ASSERT_TRUE(inputs.ok());
  Interpreter single{g, 1};
  Interpreter quad{g, 4};
  auto a = single.run(inputs.value());
  auto b = quad.run(inputs.value());
  ASSERT_TRUE(a.ok()) << a.error();
  ASSERT_TRUE(b.ok()) << b.error();
  const auto& av = a.value()[0].f32();
  const auto& bv = b.value()[0].f32();
  ASSERT_EQ(av.size(), bv.size());
  for (std::size_t i = 0; i < av.size(); ++i) {
    EXPECT_NEAR(av[i], bv[i], 1e-5f);
  }
}

TEST(Interp, InputMismatchRejected) {
  ZooSpec spec;
  spec.archetype = "sensormlp";
  spec.resolution = 4;
  const Graph g = build_model(spec);
  Interpreter interp{g};
  EXPECT_FALSE(interp.run({}).ok());
  Tensor wrong{Shape{1, 999}, DType::F32};
  EXPECT_FALSE(interp.run({wrong}).ok());
}

TEST(Interp, StatsTrackPeakMemory) {
  ZooSpec spec;
  spec.archetype = "mobilenet";
  spec.resolution = 32;
  const Graph g = build_model(spec);
  Interpreter interp{g};
  auto inputs = random_inputs(g, 1);
  ASSERT_TRUE(inputs.ok());
  ASSERT_TRUE(interp.run(inputs.value()).ok());
  EXPECT_GT(interp.stats().peak_activation_bytes, 0);
  EXPECT_EQ(interp.stats().layers_executed,
            static_cast<std::int64_t>(g.size()));
}

class ZooExecution : public ::testing::TestWithParam<std::string> {};

TEST_P(ZooExecution, EveryArchetypeRunsAndIsFinite) {
  ZooSpec spec;
  spec.archetype = GetParam();
  spec.resolution = archetype_modality(spec.archetype) == Modality::Image ? 32 : 16;
  spec.seed = 42;
  const Graph g = build_model(spec);
  ASSERT_TRUE(g.validate().ok());
  Interpreter interp{g};
  auto inputs = random_inputs(g, 9);
  ASSERT_TRUE(inputs.ok()) << inputs.error();
  auto out = interp.run(inputs.value());
  ASSERT_TRUE(out.ok()) << out.error();
  ASSERT_FALSE(out.value().empty());
  for (const auto& t : out.value()) {
    if (t.dtype() != DType::F32) continue;
    for (float v : t.f32()) EXPECT_TRUE(std::isfinite(v));
  }
}

INSTANTIATE_TEST_SUITE_P(AllArchetypes, ZooExecution,
                         ::testing::ValuesIn(zoo_archetypes()));

}  // namespace
}  // namespace gauge::nn
