#include "nn/trace.hpp"

#include <gtest/gtest.h>

#include "nn/zoo.hpp"

namespace gauge::nn {
namespace {

TEST(Trace, ConvFlopsMatchClosedForm) {
  Graph g;
  Layer in;
  in.type = LayerType::Input;
  in.input_shape = Shape{1, 8, 8, 3};
  const int i = g.add(std::move(in));
  Layer conv;
  conv.type = LayerType::Conv2D;
  conv.inputs = {i};
  conv.kernel_h = conv.kernel_w = 3;
  conv.weights.push_back(Tensor::zeros(Shape{3, 3, 3, 16}));
  conv.weights.push_back(Tensor::zeros(Shape{16}));
  g.add(std::move(conv));

  const auto trace = trace_model(g);
  ASSERT_TRUE(trace.ok()) << trace.error();
  // out = 1x8x8x16, MACs = 8*8*16 * 3*3*3 = 27648, FLOPs = 2x.
  EXPECT_EQ(trace.value().layers[1].macs, 27648);
  EXPECT_EQ(trace.value().layers[1].flops, 55296);
  EXPECT_EQ(trace.value().layers[1].params, 3 * 3 * 3 * 16 + 16);
}

TEST(Trace, DepthwiseIsCheaperThanFullConv) {
  ZooSpec spec;
  spec.archetype = "mobilenet";
  spec.resolution = 32;
  const Graph g = build_model(spec);
  const auto trace = trace_model(g);
  ASSERT_TRUE(trace.ok());
  std::int64_t dw_macs = 0, conv_macs = 0;
  for (const auto& layer : trace.value().layers) {
    if (layer.type == LayerType::DepthwiseConv2D) dw_macs += layer.macs;
    if (layer.type == LayerType::Conv2D) conv_macs += layer.macs;
  }
  EXPECT_GT(dw_macs, 0);
  EXPECT_GT(conv_macs, dw_macs);
}

TEST(Trace, TotalsAreSumsOfLayers) {
  ZooSpec spec;
  spec.archetype = "fssd";
  spec.resolution = 32;
  const Graph g = build_model(spec);
  const auto trace = trace_model(g);
  ASSERT_TRUE(trace.ok());
  std::int64_t flops = 0, params = 0, macs = 0;
  for (const auto& layer : trace.value().layers) {
    flops += layer.flops;
    params += layer.params;
    macs += layer.macs;
  }
  EXPECT_EQ(trace.value().total_flops, flops);
  EXPECT_EQ(trace.value().total_params, params);
  EXPECT_EQ(trace.value().total_macs, macs);
  EXPECT_EQ(params, g.total_parameters());
}

TEST(Trace, ResolutionScalesFlopsQuadratically) {
  ZooSpec small, large;
  small.archetype = large.archetype = "mobilenet";
  small.resolution = 32;
  large.resolution = 64;
  const auto ts = trace_model(build_model(small));
  const auto tl = trace_model(build_model(large));
  ASSERT_TRUE(ts.ok() && tl.ok());
  const double ratio = static_cast<double>(tl.value().total_flops) /
                       static_cast<double>(ts.value().total_flops);
  EXPECT_GT(ratio, 3.0);
  EXPECT_LT(ratio, 5.0);
  // Parameters are resolution-independent for a convnet trunk.
  EXPECT_NEAR(static_cast<double>(tl.value().total_params),
              static_cast<double>(ts.value().total_params),
              0.02 * static_cast<double>(ts.value().total_params));
}

TEST(Trace, WidthScalesParams) {
  ZooSpec thin, wide;
  thin.archetype = wide.archetype = "mobilenet";
  thin.resolution = wide.resolution = 32;
  thin.width = 1.0;
  wide.width = 2.0;
  const auto tt = trace_model(build_model(thin));
  const auto tw = trace_model(build_model(wide));
  ASSERT_TRUE(tt.ok() && tw.ok());
  EXPECT_GT(tw.value().total_params, 2 * tt.value().total_params);
}

TEST(Trace, Int8HalvesWeightTraffic) {
  ZooSpec spec;
  spec.archetype = "contournet";
  spec.resolution = 32;
  Graph fp = build_model(spec);
  Graph q = fp;
  quantize_weights(q);
  const auto tf = trace_model(fp);
  const auto tq = trace_model(q);
  ASSERT_TRUE(tf.ok() && tq.ok());
  EXPECT_LT(tq.value().total_bytes, tf.value().total_bytes);
}

TEST(Trace, PeakMemoryAtLeastLargestActivation) {
  ZooSpec spec;
  spec.archetype = "unet";
  spec.resolution = 32;
  const Graph g = build_model(spec);
  const auto trace = trace_model(g);
  ASSERT_TRUE(trace.ok());
  std::int64_t largest = 0;
  for (const auto& layer : trace.value().layers) {
    largest = std::max(largest, layer.output_shape.elements() * 4);
  }
  EXPECT_GE(trace.value().peak_activation_bytes, largest);
}

TEST(Trace, OpFamilyCountsExcludeInput) {
  ZooSpec spec;
  spec.archetype = "mobilenet";
  spec.resolution = 32;
  const auto trace = trace_model(build_model(spec));
  ASSERT_TRUE(trace.ok());
  const auto counts = trace.value().op_family_counts();
  EXPECT_EQ(counts.count("input"), 0u);
  EXPECT_GT(counts.at("conv"), 0);
  EXPECT_GT(counts.at("depth_conv"), 0);
  EXPECT_GT(counts.at("activation"), 0);
}

TEST(Trace, FourOrdersOfMagnitudeAcrossZoo) {
  // The corpus must span the paper's reported FLOPs spread (Fig. 7).
  std::int64_t min_flops = std::numeric_limits<std::int64_t>::max();
  std::int64_t max_flops = 0;
  for (const auto& arch : zoo_archetypes()) {
    ZooSpec spec;
    spec.archetype = arch;
    spec.resolution = archetype_modality(arch) == Modality::Image ? 96 : 16;
    if (arch == "sensormlp") spec.resolution = 8;
    const auto trace = trace_model(build_model(spec));
    ASSERT_TRUE(trace.ok()) << arch << ": " << trace.error();
    min_flops = std::min(min_flops, trace.value().total_flops);
    max_flops = std::max(max_flops, trace.value().total_flops);
  }
  EXPECT_GT(max_flops / std::max<std::int64_t>(min_flops, 1), 1000);
}

}  // namespace
}  // namespace gauge::nn
