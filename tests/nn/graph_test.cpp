#include "nn/graph.hpp"

#include <gtest/gtest.h>

namespace gauge::nn {
namespace {

Layer input_layer(Shape shape) {
  Layer l;
  l.type = LayerType::Input;
  l.input_shape = std::move(shape);
  return l;
}

Layer conv_layer(int from, int kernel, int stride, int cin, int cout,
                 Padding pad = Padding::Same) {
  Layer l;
  l.type = LayerType::Conv2D;
  l.inputs = {from};
  l.kernel_h = l.kernel_w = kernel;
  l.stride_h = l.stride_w = stride;
  l.padding = pad;
  l.weights.push_back(Tensor::zeros(Shape{kernel, kernel, cin, cout}));
  l.weights.push_back(Tensor::zeros(Shape{cout}));
  return l;
}

TEST(Graph, ValidateEmptyFails) {
  Graph g;
  EXPECT_FALSE(g.validate().ok());
}

TEST(Graph, ValidateNoInputFails) {
  Graph g;
  Layer l;
  l.type = LayerType::Relu;
  l.inputs = {};
  g.add(std::move(l));
  EXPECT_FALSE(g.validate().ok());
}

TEST(Graph, ValidateArity) {
  Graph g;
  const int in = g.add(input_layer(Shape{1, 4, 4, 3}));
  Layer add;
  add.type = LayerType::Add;
  add.inputs = {in};  // Add needs two inputs
  g.add(std::move(add));
  const auto status = g.validate();
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.error().find("expected 2 inputs"), std::string::npos);
}

TEST(Graph, InputAndOutputIndices) {
  Graph g;
  const int in = g.add(input_layer(Shape{1, 8, 8, 3}));
  const int conv = g.add(conv_layer(in, 3, 1, 3, 4));
  Layer relu;
  relu.type = LayerType::Relu;
  relu.inputs = {conv};
  const int out = g.add(std::move(relu));
  EXPECT_EQ(g.input_indices(), std::vector<int>{in});
  EXPECT_EQ(g.output_indices(), std::vector<int>{out});
  EXPECT_TRUE(g.validate().ok());
}

TEST(Graph, MultipleOutputs) {
  Graph g;
  const int in = g.add(input_layer(Shape{1, 8, 8, 3}));
  g.add(conv_layer(in, 3, 1, 3, 4));
  g.add(conv_layer(in, 3, 1, 3, 8));
  EXPECT_EQ(g.output_indices().size(), 2u);
}

TEST(ShapeInfer, ConvSamePadding) {
  Graph g;
  const int in = g.add(input_layer(Shape{1, 32, 32, 3}));
  g.add(conv_layer(in, 3, 2, 3, 16));
  const auto shapes = infer_shapes(g);
  ASSERT_TRUE(shapes.ok()) << shapes.error();
  EXPECT_EQ(shapes.value()[1], (Shape{1, 16, 16, 16}));
}

TEST(ShapeInfer, ConvValidPadding) {
  Graph g;
  const int in = g.add(input_layer(Shape{1, 32, 32, 3}));
  g.add(conv_layer(in, 5, 1, 3, 8, Padding::Valid));
  const auto shapes = infer_shapes(g);
  ASSERT_TRUE(shapes.ok()) << shapes.error();
  EXPECT_EQ(shapes.value()[1], (Shape{1, 28, 28, 8}));
}

TEST(ShapeInfer, ConvChannelMismatchFails) {
  Graph g;
  const int in = g.add(input_layer(Shape{1, 32, 32, 4}));
  g.add(conv_layer(in, 3, 1, 3, 8));  // weights expect 3 channels
  EXPECT_FALSE(infer_shapes(g).ok());
}

TEST(ShapeInfer, DenseShape) {
  Graph g;
  const int in = g.add(input_layer(Shape{1, 10}));
  Layer dense;
  dense.type = LayerType::Dense;
  dense.inputs = {in};
  dense.units = 4;
  dense.weights.push_back(Tensor::zeros(Shape{10, 4}));
  g.add(std::move(dense));
  const auto shapes = infer_shapes(g);
  ASSERT_TRUE(shapes.ok()) << shapes.error();
  EXPECT_EQ(shapes.value()[1], (Shape{1, 4}));
}

TEST(ShapeInfer, ConcatAlongChannels) {
  Graph g;
  const int in = g.add(input_layer(Shape{1, 8, 8, 3}));
  const int a = g.add(conv_layer(in, 1, 1, 3, 4));
  const int b = g.add(conv_layer(in, 1, 1, 3, 6));
  Layer concat;
  concat.type = LayerType::Concat;
  concat.inputs = {a, b};
  concat.axis = 3;
  g.add(std::move(concat));
  const auto shapes = infer_shapes(g);
  ASSERT_TRUE(shapes.ok()) << shapes.error();
  EXPECT_EQ(shapes.value()[3], (Shape{1, 8, 8, 10}));
}

TEST(ShapeInfer, ConcatNegativeAxis) {
  Graph g;
  const int in = g.add(input_layer(Shape{1, 8, 8, 3}));
  const int a = g.add(conv_layer(in, 1, 1, 3, 4));
  Layer concat;
  concat.type = LayerType::Concat;
  concat.inputs = {a, a};
  concat.axis = -1;
  g.add(std::move(concat));
  const auto shapes = infer_shapes(g);
  ASSERT_TRUE(shapes.ok()) << shapes.error();
  EXPECT_EQ(shapes.value().back(), (Shape{1, 8, 8, 8}));
}

TEST(ShapeInfer, ReshapeWildcard) {
  Graph g;
  const int in = g.add(input_layer(Shape{1, 4, 4, 2}));
  Layer reshape;
  reshape.type = LayerType::Reshape;
  reshape.inputs = {in};
  reshape.target_shape = {1, -1};
  g.add(std::move(reshape));
  const auto shapes = infer_shapes(g);
  ASSERT_TRUE(shapes.ok()) << shapes.error();
  EXPECT_EQ(shapes.value()[1], (Shape{1, 32}));
}

TEST(ShapeInfer, ReshapeBadElementCountFails) {
  Graph g;
  const int in = g.add(input_layer(Shape{1, 4, 4, 2}));
  Layer reshape;
  reshape.type = LayerType::Reshape;
  reshape.inputs = {in};
  reshape.target_shape = {1, 31};
  g.add(std::move(reshape));
  EXPECT_FALSE(infer_shapes(g).ok());
}

TEST(ShapeInfer, SliceBoundsChecked) {
  Graph g;
  const int in = g.add(input_layer(Shape{1, 10, 10, 3}));
  Layer slice;
  slice.type = LayerType::Slice;
  slice.inputs = {in};
  slice.slice_begin = {0, 2, 2, 0};
  slice.slice_size = {1, 4, -1, 3};
  g.add(std::move(slice));
  const auto shapes = infer_shapes(g);
  ASSERT_TRUE(shapes.ok()) << shapes.error();
  EXPECT_EQ(shapes.value()[1], (Shape{1, 4, 8, 3}));
}

TEST(ShapeInfer, SliceOutOfBoundsFails) {
  Graph g;
  const int in = g.add(input_layer(Shape{1, 10, 10, 3}));
  Layer slice;
  slice.type = LayerType::Slice;
  slice.inputs = {in};
  slice.slice_begin = {0, 8, 0, 0};
  slice.slice_size = {1, 4, 10, 3};
  g.add(std::move(slice));
  EXPECT_FALSE(infer_shapes(g).ok());
}

TEST(ShapeInfer, LstmAndEmbedding) {
  Graph g;
  Layer in;
  in.type = LayerType::Input;
  in.input_shape = Shape{1, 12};
  const int input = g.add(std::move(in));
  Layer embed;
  embed.type = LayerType::Embedding;
  embed.inputs = {input};
  embed.units = 8;
  embed.weights.push_back(Tensor::zeros(Shape{100, 8}));
  const int e = g.add(std::move(embed));
  Layer lstm;
  lstm.type = LayerType::Lstm;
  lstm.inputs = {e};
  lstm.units = 16;
  lstm.weights.push_back(Tensor::zeros(Shape{8 + 16, 64}));
  lstm.weights.push_back(Tensor::zeros(Shape{64}));
  g.add(std::move(lstm));
  const auto shapes = infer_shapes(g);
  ASSERT_TRUE(shapes.ok()) << shapes.error();
  EXPECT_EQ(shapes.value()[1], (Shape{1, 12, 8}));
  EXPECT_EQ(shapes.value()[2], (Shape{1, 12, 16}));
}

TEST(ShapeInfer, PoolAndGlobalPool) {
  Graph g;
  const int in = g.add(input_layer(Shape{1, 16, 16, 8}));
  Layer pool;
  pool.type = LayerType::MaxPool2D;
  pool.inputs = {in};
  pool.kernel_h = pool.kernel_w = 2;
  pool.stride_h = pool.stride_w = 2;
  const int p = g.add(std::move(pool));
  Layer gap;
  gap.type = LayerType::GlobalAvgPool;
  gap.inputs = {p};
  g.add(std::move(gap));
  const auto shapes = infer_shapes(g);
  ASSERT_TRUE(shapes.ok()) << shapes.error();
  EXPECT_EQ(shapes.value()[1], (Shape{1, 8, 8, 8}));
  EXPECT_EQ(shapes.value()[2], (Shape{1, 1, 1, 8}));
}

TEST(LayerTypes, NamesAndFamiliesAreTotal) {
  for (int t = 0; t < static_cast<int>(LayerType::kCount); ++t) {
    const auto type = static_cast<LayerType>(t);
    EXPECT_STRNE(layer_type_name(type), "?");
    EXPECT_STRNE(op_family_name(op_family(type)), "?");
  }
}

TEST(LayerTypes, FamilyGrouping) {
  EXPECT_EQ(op_family(LayerType::Conv2D), OpFamily::Conv);
  EXPECT_EQ(op_family(LayerType::DepthwiseConv2D), OpFamily::DepthConv);
  EXPECT_EQ(op_family(LayerType::Quantize), OpFamily::Quant);
  EXPECT_EQ(op_family(LayerType::Lstm), OpFamily::Recurrent);
}

}  // namespace
}  // namespace gauge::nn
