#include "nn/threadpool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "telemetry/metrics.hpp"

namespace gauge::nn {
namespace {

TEST(ThreadPool, CoversFullRangeExactlyOnce) {
  ThreadPool pool{4};
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t i = begin; i < end; ++i) {
      hits[static_cast<std::size_t>(i)].fetch_add(1);
    }
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ZeroAndNegativeTotalsAreNoops) {
  ThreadPool pool{2};
  int calls = 0;
  pool.parallel_for(0, [&](std::int64_t, std::int64_t) { ++calls; });
  pool.parallel_for(-5, [&](std::int64_t, std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, SingleItemRunsInline) {
  ThreadPool pool{4};
  std::atomic<int> calls{0};
  pool.parallel_for(1, [&](std::int64_t begin, std::int64_t end) {
    EXPECT_EQ(begin, 0);
    EXPECT_EQ(end, 1);
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPool, RepeatedUseIsStable) {
  ThreadPool pool{3};
  std::atomic<std::int64_t> sum{0};
  for (int round = 0; round < 50; ++round) {
    pool.parallel_for(100, [&](std::int64_t begin, std::int64_t end) {
      std::int64_t local = 0;
      for (std::int64_t i = begin; i < end; ++i) local += i;
      sum.fetch_add(local);
    });
  }
  EXPECT_EQ(sum.load(), 50 * (99 * 100 / 2));
}

TEST(ThreadPool, SizeReportsWorkers) {
  ThreadPool pool{5};
  EXPECT_EQ(pool.size(), 5u);
}

TEST(ThreadPool, MoreItemsThanWorkers) {
  ThreadPool pool{2};
  std::atomic<std::int64_t> count{0};
  pool.parallel_for(10'000, [&](std::int64_t begin, std::int64_t end) {
    count.fetch_add(end - begin);
  });
  EXPECT_EQ(count.load(), 10'000);
}

TEST(ThreadPool, SurvivesThrowingTasks) {
  telemetry::MetricsRegistry registry;
  telemetry::ScopedRegistry scoped{registry};
  ThreadPool pool{4};

  // Every chunk throws; the workers must catch, count, and keep going —
  // and parallel_for must still return (in-flight accounting intact).
  std::atomic<int> attempts{0};
  pool.parallel_for(8, [&](std::int64_t, std::int64_t) {
    attempts.fetch_add(1);
    throw std::runtime_error("boom");
  });
  EXPECT_GT(attempts.load(), 0);
  EXPECT_GT(registry.counter("gauge.nn.threadpool.task_failures").value(), 0);

  // The same workers are alive and still execute follow-up work.
  std::atomic<std::int64_t> sum{0};
  pool.parallel_for(1000, [&](std::int64_t begin, std::int64_t end) {
    sum.fetch_add(end - begin);
  });
  EXPECT_EQ(sum.load(), 1000);
  EXPECT_GE(registry.counter("gauge.nn.threadpool.tasks").value(),
            attempts.load());
}

TEST(ThreadPool, NonExceptionThrowIsAlsoCaught) {
  telemetry::MetricsRegistry registry;
  telemetry::ScopedRegistry scoped{registry};
  ThreadPool pool{2};
  pool.parallel_for(4, [&](std::int64_t, std::int64_t) { throw 42; });
  EXPECT_GT(registry.counter("gauge.nn.threadpool.task_failures").value(), 0);
  std::atomic<int> ran{0};
  pool.parallel_for(4, [&](std::int64_t, std::int64_t) { ran.fetch_add(1); });
  EXPECT_GT(ran.load(), 0);
}

}  // namespace
}  // namespace gauge::nn
