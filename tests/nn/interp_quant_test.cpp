// Focused tests of the quantised interpreter paths: int8 conv/dense with
// requantisation, i8 max-pooling and relu, the quantised-stem transform,
// and rejection of unsupported dtype combinations.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/interp.hpp"
#include "nn/zoo.hpp"

namespace gauge::nn {
namespace {

Layer input_layer(Shape shape) {
  Layer l;
  l.type = LayerType::Input;
  l.input_shape = std::move(shape);
  return l;
}

Tensor f32_tensor(Shape shape, std::vector<float> values) {
  Tensor t{std::move(shape), DType::F32};
  EXPECT_EQ(t.f32().size(), values.size());
  t.f32() = std::move(values);
  return t;
}

// A graph quantizing input -> int8 dense -> dequantize.
Graph int8_dense_graph(float in_scale, float out_scale) {
  Graph g;
  const int in = g.add(input_layer(Shape{1, 2}));
  Layer q;
  q.type = LayerType::Quantize;
  q.inputs = {in};
  q.quant_scale = in_scale;
  const int qi = g.add(std::move(q));

  Layer dense;
  dense.type = LayerType::Dense;
  dense.inputs = {qi};
  dense.units = 1;
  Tensor w{Shape{2, 1}, DType::I8};
  w.quant_scale = 0.5f;  // weights 2 and 4 -> stored as 4 and 8
  w.i8() = {4, 8};
  dense.weights.push_back(std::move(w));
  dense.quant_scale = out_scale;
  dense.quant_zero_point = 0;
  const int di = g.add(std::move(dense));

  Layer dq;
  dq.type = LayerType::Dequantize;
  dq.inputs = {di};
  g.add(std::move(dq));
  return g;
}

TEST(InterpQuant, Int8DenseComputesCorrectProduct) {
  // y = 2*x0 + 4*x1 with x = (1, 2) -> 10.
  const Graph g = int8_dense_graph(/*in_scale=*/0.05f, /*out_scale=*/0.1f);
  Interpreter interp{g};
  auto out = interp.run({f32_tensor(Shape{1, 2}, {1.0f, 2.0f})});
  ASSERT_TRUE(out.ok()) << out.error();
  EXPECT_NEAR(out.value()[0].f32()[0], 10.0f, 0.2f);
}

TEST(InterpQuant, OutputScaleControlsSaturation) {
  // With a tiny output scale, the int8 result saturates at 127*scale.
  const Graph g = int8_dense_graph(0.05f, 0.01f);
  Interpreter interp{g};
  auto out = interp.run({f32_tensor(Shape{1, 2}, {1.0f, 2.0f})});
  ASSERT_TRUE(out.ok());
  EXPECT_NEAR(out.value()[0].f32()[0], 1.27f, 0.02f);  // clamped
}

TEST(InterpQuant, Int8ReluClampsAtZeroPoint) {
  Graph g;
  const int in = g.add(input_layer(Shape{1, 4}));
  Layer q;
  q.type = LayerType::Quantize;
  q.inputs = {in};
  q.quant_scale = 0.1f;
  q.quant_zero_point = 10;  // asymmetric
  const int qi = g.add(std::move(q));
  Layer relu;
  relu.type = LayerType::Relu;
  relu.inputs = {qi};
  const int ri = g.add(std::move(relu));
  Layer dq;
  dq.type = LayerType::Dequantize;
  dq.inputs = {ri};
  g.add(std::move(dq));

  Interpreter interp{g};
  auto out = interp.run({f32_tensor(Shape{1, 4}, {-2.0f, -0.1f, 0.0f, 1.0f})});
  ASSERT_TRUE(out.ok()) << out.error();
  EXPECT_NEAR(out.value()[0].f32()[0], 0.0f, 0.05f);   // negatives clamp to 0
  EXPECT_NEAR(out.value()[0].f32()[1], 0.0f, 0.05f);
  EXPECT_NEAR(out.value()[0].f32()[3], 1.0f, 0.06f);   // positives preserved
}

TEST(InterpQuant, Int8MaxPoolPreservesScale) {
  Graph g;
  const int in = g.add(input_layer(Shape{1, 2, 2, 1}));
  Layer q;
  q.type = LayerType::Quantize;
  q.inputs = {in};
  q.quant_scale = 0.1f;
  const int qi = g.add(std::move(q));
  Layer pool;
  pool.type = LayerType::MaxPool2D;
  pool.inputs = {qi};
  pool.kernel_h = pool.kernel_w = 2;
  pool.stride_h = pool.stride_w = 2;
  const int pi = g.add(std::move(pool));
  Layer dq;
  dq.type = LayerType::Dequantize;
  dq.inputs = {pi};
  g.add(std::move(dq));

  Interpreter interp{g};
  auto out = interp.run({f32_tensor(Shape{1, 2, 2, 1}, {0.3f, 1.2f, -0.5f, 0.8f})});
  ASSERT_TRUE(out.ok()) << out.error();
  EXPECT_NEAR(out.value()[0].f32()[0], 1.2f, 0.06f);
}

TEST(InterpQuant, Int8ConvRequiresInt8Weights) {
  Graph g;
  const int in = g.add(input_layer(Shape{1, 2, 2, 1}));
  Layer q;
  q.type = LayerType::Quantize;
  q.inputs = {in};
  q.quant_scale = 0.1f;
  const int qi = g.add(std::move(q));
  Layer conv;
  conv.type = LayerType::Conv2D;
  conv.inputs = {qi};
  conv.weights.push_back(Tensor::zeros(Shape{1, 1, 1, 1}));  // f32 weights
  g.add(std::move(conv));
  Interpreter interp{g};
  const auto out = interp.run({f32_tensor(Shape{1, 2, 2, 1}, {1, 2, 3, 4})});
  ASSERT_FALSE(out.ok());
  EXPECT_NE(out.error().find("int8"), std::string::npos);
}

TEST(InterpQuant, Int8AvgPoolRoundsToNearest) {
  Graph g;
  const int in = g.add(input_layer(Shape{1, 2, 2, 1}));
  Layer q;
  q.type = LayerType::Quantize;
  q.inputs = {in};
  q.quant_scale = 1.0f;  // ints map to themselves
  const int qi = g.add(std::move(q));
  Layer pool;
  pool.type = LayerType::AvgPool2D;
  pool.inputs = {qi};
  pool.kernel_h = pool.kernel_w = 2;
  pool.stride_h = pool.stride_w = 2;
  const int pi = g.add(std::move(pool));
  Layer dq;
  dq.type = LayerType::Dequantize;
  dq.inputs = {pi};
  g.add(std::move(dq));
  Interpreter interp{g};
  auto out = interp.run({f32_tensor(Shape{1, 2, 2, 1}, {1, 2, 3, 4})});
  ASSERT_TRUE(out.ok()) << out.error();
  // avg(1,2,3,4) = 2.5 -> rounds to 3 in the integer domain.
  EXPECT_NEAR(out.value()[0].f32()[0], 3.0f, 0.01f);
}

TEST(InterpQuant, Int8DepthwiseConvMatchesFloat) {
  // Two channels, identity-ish depthwise kernels: quantised output tracks
  // the float path.
  Graph fg;
  const int fin = fg.add(input_layer(Shape{1, 2, 2, 2}));
  Layer fdw;
  fdw.type = LayerType::DepthwiseConv2D;
  fdw.inputs = {fin};
  fdw.weights.push_back(f32_tensor(Shape{1, 1, 2, 1}, {0.5f, 2.0f}));
  fg.add(std::move(fdw));

  Graph qg;
  const int qin = qg.add(input_layer(Shape{1, 2, 2, 2}));
  Layer quant;
  quant.type = LayerType::Quantize;
  quant.inputs = {qin};
  quant.quant_scale = 0.05f;
  const int qi = qg.add(std::move(quant));
  Layer qdw;
  qdw.type = LayerType::DepthwiseConv2D;
  qdw.inputs = {qi};
  Tensor w8{Shape{1, 1, 2, 1}, DType::I8};
  w8.quant_scale = 0.5f / 127.0f * 4.0f;  // covers [-2, 2]
  w8.i8() = {static_cast<std::int8_t>(std::lround(0.5f / w8.quant_scale)),
             static_cast<std::int8_t>(std::lround(2.0f / w8.quant_scale))};
  qdw.weights.push_back(std::move(w8));
  qdw.quant_scale = 0.1f;
  const int di = qg.add(std::move(qdw));
  Layer dq;
  dq.type = LayerType::Dequantize;
  dq.inputs = {di};
  qg.add(std::move(dq));

  const std::vector<float> input{1.0f, -1.0f, 0.5f, 2.0f, -0.5f, 1.5f, 0.0f, 3.0f};
  Interpreter fi{fg}, qiterp{qg};
  auto fo = fi.run({f32_tensor(Shape{1, 2, 2, 2}, input)});
  auto qo = qiterp.run({f32_tensor(Shape{1, 2, 2, 2}, input)});
  ASSERT_TRUE(fo.ok()) << fo.error();
  ASSERT_TRUE(qo.ok()) << qo.error();
  for (std::size_t i = 0; i < fo.value()[0].f32().size(); ++i) {
    EXPECT_NEAR(fo.value()[0].f32()[i], qo.value()[0].f32()[i], 0.15f) << i;
  }
}

TEST(InterpQuant, QuantizedStemModelRunsEndToEnd) {
  ZooSpec spec;
  spec.archetype = "mobilenet";
  spec.resolution = 32;
  spec.seed = 8;
  const Graph base = build_model(spec);
  const Graph stem = with_quantized_stem(base);
  ASSERT_GT(stem.size(), base.size());  // Quantize + Dequantize inserted
  ASSERT_TRUE(stem.validate().ok());

  bool has_q = false, has_dq = false;
  for (const auto& layer : stem.layers()) {
    if (layer.type == LayerType::Quantize) has_q = true;
    if (layer.type == LayerType::Dequantize) has_dq = true;
  }
  EXPECT_TRUE(has_q && has_dq);

  auto inputs = random_inputs(stem, 12);
  ASSERT_TRUE(inputs.ok());
  Interpreter interp{stem};
  auto out = interp.run(inputs.value());
  ASSERT_TRUE(out.ok()) << out.error();
  for (float v : out.value()[0].f32()) EXPECT_TRUE(std::isfinite(v));

  // The stem closely tracks the float model.
  Interpreter base_interp{base};
  auto base_out = base_interp.run(inputs.value());
  ASSERT_TRUE(base_out.ok());
  double err = 0.0;
  for (std::size_t i = 0; i < base_out.value()[0].f32().size(); ++i) {
    err += std::abs(base_out.value()[0].f32()[i] - out.value()[0].f32()[i]);
  }
  err /= static_cast<double>(base_out.value()[0].f32().size());
  EXPECT_LT(err, 0.1);
}

TEST(InterpQuant, StemIsNoopWithoutConv) {
  ZooSpec spec;
  spec.archetype = "sensormlp";
  spec.resolution = 8;
  const Graph base = build_model(spec);
  const Graph stem = with_quantized_stem(base);
  EXPECT_EQ(stem.size(), base.size());
}

}  // namespace
}  // namespace gauge::nn
