#include "nn/checksum.hpp"

#include <gtest/gtest.h>

#include "nn/zoo.hpp"

namespace gauge::nn {
namespace {

ZooSpec spec_of(const std::string& arch, std::uint64_t seed) {
  ZooSpec spec;
  spec.archetype = arch;
  spec.resolution = 32;
  spec.seed = seed;
  return spec;
}

TEST(Checksum, IdenticalModelsMatch) {
  const Graph a = build_model(spec_of("mobilenet", 1));
  const Graph b = build_model(spec_of("mobilenet", 1));
  EXPECT_EQ(model_checksum(a), model_checksum(b));
  EXPECT_EQ(architecture_checksum(a), architecture_checksum(b));
}

TEST(Checksum, DifferentSeedsDifferInWeightsOnly) {
  const Graph a = build_model(spec_of("mobilenet", 1));
  const Graph b = build_model(spec_of("mobilenet", 2));
  EXPECT_NE(model_checksum(a), model_checksum(b));
  EXPECT_EQ(architecture_checksum(a), architecture_checksum(b));
}

TEST(Checksum, DifferentArchitecturesDiffer) {
  const Graph a = build_model(spec_of("mobilenet", 1));
  const Graph b = build_model(spec_of("fssd", 1));
  EXPECT_NE(architecture_checksum(a), architecture_checksum(b));
}

TEST(Checksum, LayerDigestCountMatchesWeightedLayers) {
  const Graph g = build_model(spec_of("mobilenet", 1));
  std::size_t weighted = 0;
  for (const auto& layer : g.layers()) {
    if (layer.has_weights()) ++weighted;
  }
  EXPECT_EQ(layer_weight_checksums(g).size(), weighted);
}

TEST(Checksum, FinetunedSharesPrefixLayers) {
  const Graph base = build_model(spec_of("mobilenet", 7));
  const Graph tuned = make_finetuned(base, 2, 555);

  // Same architecture, different full checksum.
  EXPECT_EQ(architecture_checksum(base), architecture_checksum(tuned));
  EXPECT_NE(model_checksum(base), model_checksum(tuned));

  const auto base_digests = layer_weight_checksums(base);
  const auto tuned_digests = layer_weight_checksums(tuned);
  const int differing = differing_layer_count(base_digests, tuned_digests);
  EXPECT_EQ(differing, 2);

  const double shared = shared_layer_fraction(tuned_digests, base_digests);
  EXPECT_GT(shared, 0.5);
  EXPECT_LT(shared, 1.0);
}

TEST(Checksum, FinetuneAllLayersSharesNothing) {
  const Graph base = build_model(spec_of("contournet", 3));
  const Graph tuned = make_finetuned(base, 100, 556);
  const double shared = shared_layer_fraction(
      layer_weight_checksums(tuned), layer_weight_checksums(base));
  EXPECT_DOUBLE_EQ(shared, 0.0);
}

TEST(Checksum, SharedFractionHandlesDuplicates) {
  const std::vector<std::string> a{"x", "x", "y"};
  const std::vector<std::string> b{"x", "z"};
  // Only one of a's two "x" digests can be matched against b.
  EXPECT_NEAR(shared_layer_fraction(a, b), 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(shared_layer_fraction({}, b), 0.0);
}

TEST(Checksum, DifferingLayerCountRequiresSameLength) {
  EXPECT_EQ(differing_layer_count({"a"}, {"a", "b"}), -1);
  EXPECT_EQ(differing_layer_count({"a", "b"}, {"a", "c"}), 1);
  EXPECT_EQ(differing_layer_count({}, {}), 0);
}

TEST(Checksum, QuantisationChangesChecksum) {
  Graph g = build_model(spec_of("contournet", 5));
  const std::string before = model_checksum(g);
  quantize_weights(g);
  EXPECT_NE(model_checksum(g), before);
}

TEST(Zoo, NearZeroFractionIsSmallButPresent) {
  // Models carry a 0-6% exactly-zero weight share (see build_model); the
  // corpus-wide mean lands near the paper's 3.15%.
  double total = 0.0;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    total += near_zero_weight_fraction(build_model(spec_of("mobilenet", seed)));
  }
  const double mean = total / 20.0;
  EXPECT_GT(mean, 0.005);
  EXPECT_LT(mean, 0.08);
}

TEST(Zoo, QuantizedModelsMarkWeightBits) {
  Graph g = build_model(spec_of("mobilenet", 11));
  quantize_weights(g);
  for (const auto& layer : g.layers()) {
    if (layer.has_weights()) {
      EXPECT_EQ(layer.weight_bits, 8);
    }
  }
}

TEST(Zoo, ArchetypeModalitiesCoverAllFour) {
  bool image = false, text = false, audio = false, sensor = false;
  for (const auto& arch : zoo_archetypes()) {
    switch (archetype_modality(arch)) {
      case Modality::Image: image = true; break;
      case Modality::Text: text = true; break;
      case Modality::Audio: audio = true; break;
      case Modality::Sensor: sensor = true; break;
      case Modality::Unknown: break;
    }
  }
  EXPECT_TRUE(image && text && audio && sensor);
}

}  // namespace
}  // namespace gauge::nn
