#include "nn/training.hpp"

#include <gtest/gtest.h>

#include "nn/zoo.hpp"

namespace gauge::nn {
namespace {

ModelTrace trace_of(const std::string& arch, int res = 48) {
  ZooSpec spec;
  spec.archetype = arch;
  spec.resolution = res;
  spec.seed = 13;
  auto trace = trace_model(build_model(spec));
  EXPECT_TRUE(trace.ok());
  return std::move(trace).take();
}

TEST(Training, FullTrainingCostsRoughly3xInference) {
  const auto trace = trace_of("mobilenet");
  const auto cost = training_step_cost(trace, -1);
  const double multiplier = static_cast<double>(cost.total_flops()) /
                            static_cast<double>(cost.forward_flops);
  EXPECT_GT(multiplier, 2.0);
  EXPECT_LT(multiplier, 4.0);
  EXPECT_EQ(cost.trainable_params, trace.total_params);
}

TEST(Training, HeadOnlyFineTuningIsMuchCheaper) {
  const auto trace = trace_of("mobilenet");
  const auto full = training_step_cost(trace, -1);
  const auto head = training_step_cost(trace, 2);
  EXPECT_LT(head.total_flops(), full.total_flops());
  EXPECT_LT(head.trainable_params, full.trainable_params);
  EXPECT_LT(head.activation_stash_bytes, full.activation_stash_bytes);
  // The paper's observation: fine-tuning a few last layers has a
  // "significantly smaller training footprint".
  const double backward_saving =
      static_cast<double>(head.backward_flops) /
      static_cast<double>(full.backward_flops);
  EXPECT_LT(backward_saving, 0.5);
}

TEST(Training, MonotoneInTrainableLayers) {
  const auto trace = trace_of("vggnet");
  std::int64_t prev = 0;
  for (int k : {1, 2, 3, 4, 100}) {
    const auto cost = training_step_cost(trace, k);
    EXPECT_GE(cost.total_flops(), prev);
    prev = cost.total_flops();
  }
}

TEST(Training, ZeroTrainableLayersIsInferenceOnly) {
  const auto trace = trace_of("audiocnn", 32);
  const auto cost = training_step_cost(trace, 0);
  EXPECT_EQ(cost.backward_flops, 0);
  EXPECT_EQ(cost.update_flops, 0);
  EXPECT_EQ(cost.trainable_params, 0);
  EXPECT_EQ(cost.total_flops(), trace.total_flops);
}

TEST(Training, UpdateCostScalesWithParams) {
  const auto trace = trace_of("sensormlp", 16);
  const auto full = training_step_cost(trace, -1);
  EXPECT_EQ(full.update_flops, 4 * trace.total_params);
}

class TrainingAllArchetypes : public ::testing::TestWithParam<std::string> {};

TEST_P(TrainingAllArchetypes, CostsAreConsistent) {
  ZooSpec spec;
  spec.archetype = GetParam();
  spec.resolution = archetype_modality(spec.archetype) == Modality::Image ? 32 : 16;
  const auto trace = trace_model(build_model(spec));
  ASSERT_TRUE(trace.ok());
  const auto full = training_step_cost(trace.value(), -1);
  const auto head = training_step_cost(trace.value(), 1);
  EXPECT_GE(full.total_flops(), head.total_flops());
  EXPECT_GE(full.total_flops(), trace.value().total_flops);
  EXPECT_GT(head.trainable_params, 0);
}

INSTANTIATE_TEST_SUITE_P(Zoo, TrainingAllArchetypes,
                         ::testing::ValuesIn(zoo_archetypes()));

}  // namespace
}  // namespace gauge::nn
