#include <gtest/gtest.h>

#include "device/backends.hpp"
#include "device/latency.hpp"
#include "device/monsoon.hpp"
#include "device/sched.hpp"
#include "device/soc.hpp"
#include "nn/trace.hpp"
#include "nn/zoo.hpp"
#include "util/stats.hpp"

namespace gauge::device {
namespace {

nn::ModelTrace trace_of(const std::string& arch, int resolution = 64,
                        double width = 1.0, std::uint64_t seed = 1) {
  nn::ZooSpec spec;
  spec.archetype = arch;
  spec.resolution = resolution;
  spec.width = width;
  spec.seed = seed;
  auto trace = nn::trace_model(nn::build_model(spec));
  EXPECT_TRUE(trace.ok());
  return std::move(trace).take();
}

// A small model population shared by the statistics-driven tests.
std::vector<nn::ModelTrace> population() {
  std::vector<nn::ModelTrace> out;
  int seed = 1;
  for (const char* arch : {"mobilenet", "fssd", "blazeface", "unet",
                           "contournet", "posenet", "vggnet", "stylenet"}) {
    for (int res : {48, 64, 96}) {
      out.push_back(trace_of(arch, res, 0.75 + 0.25 * (seed % 3),
                             static_cast<std::uint64_t>(seed)));
      ++seed;
    }
  }
  return out;
}

double mean_latency_ms(const Device& device, const RunConfig& config) {
  const auto pop = population();
  std::vector<double> lat;
  int key = 0;
  for (const auto& trace : pop) {
    lat.push_back(
        simulate_inference(device, trace, config, "m" + std::to_string(key++))
            .latency_s *
        1e3);
  }
  return util::mean(lat);
}

// ------------------------------------------------------------------- SoC

TEST(Soc, Table1Devices) {
  const auto devices = all_devices();
  ASSERT_EQ(devices.size(), 6u);
  EXPECT_EQ(devices[0].name, "A20");
  EXPECT_EQ(devices[0].soc.name, "Exynos 7884");
  EXPECT_EQ(devices[0].ram_gb, 4);
  EXPECT_DOUBLE_EQ(devices[0].battery_mah, 4000);
  EXPECT_EQ(devices[2].soc.name, "Snapdragon 888");
  EXPECT_TRUE(devices[3].open_deck);
  EXPECT_DOUBLE_EQ(devices[4].battery_mah, 0);  // Q855 N/A in Table 1
}

TEST(Soc, Q888SharesS21Soc) {
  EXPECT_EQ(make_device("Q888").soc.name, make_device("S21").soc.name);
}

TEST(Soc, TopologyMatchesPaper) {
  // "Q888 has 1xX1, 3xA78, 4xA55; Q675 has 2xA76 and [6]xA55" (§6.2).
  const Device q888 = make_device("Q888");
  ASSERT_EQ(q888.soc.clusters.size(), 3u);
  EXPECT_EQ(q888.soc.clusters[0].count, 1);
  EXPECT_EQ(q888.soc.clusters[1].count, 3);
  EXPECT_EQ(q888.soc.clusters[2].count, 4);
  const Device a70 = make_device("A70");
  EXPECT_EQ(a70.soc.clusters[0].count, 2);
}

// -------------------------------------------------------------- scheduler

TEST(Sched, MoreIsNotAlwaysBetter) {
  // Fig. 12: best thread count is 4 / 2 / 4 for A20 / A70 / S21.
  auto best_threads = [](const std::string& name) {
    const Device d = make_device(name);
    int best = 0;
    double best_gflops = 0.0;
    for (int t : {2, 4, 8}) {
      const double g = schedule(d, {t, 0}).effective_gflops;
      if (g > best_gflops) {
        best_gflops = g;
        best = t;
      }
    }
    return best;
  };
  EXPECT_EQ(best_threads("A20"), 4);
  EXPECT_EQ(best_threads("A70"), 2);
  EXPECT_EQ(best_threads("S21"), 4);
}

TEST(Sched, EightThreadsCollapse) {
  for (const auto& device : phones()) {
    const double g4 = schedule(device, {4, 0}).effective_gflops;
    const double g8 = schedule(device, {8, 0}).effective_gflops;
    EXPECT_LT(g8, g4 * 0.6) << device.name;
  }
}

TEST(Sched, OversubscriptionDegrades) {
  // 4a2 and 8a4 must be significantly worse than the unpinned setups.
  for (const auto& device : phones()) {
    const double g4 = schedule(device, {4, 0}).effective_gflops;
    const double g4a2 = schedule(device, {4, 2}).effective_gflops;
    EXPECT_LT(g4a2, g4 * 0.75) << device.name;
    const double g8a4 = schedule(device, {8, 4}).effective_gflops;
    EXPECT_LT(g8a4, g4 * 0.5) << device.name;
  }
}

TEST(Sched, PinningSameCoresIsNoWin) {
  // 4a4 <= 4 and 2a2 <= 2 (Fig. 12's "no significant gain" finding).
  for (const auto& device : phones()) {
    EXPECT_LE(schedule(device, {4, 4}).effective_gflops,
              schedule(device, {4, 0}).effective_gflops)
        << device.name;
    EXPECT_LE(schedule(device, {2, 2}).effective_gflops,
              schedule(device, {2, 0}).effective_gflops)
        << device.name;
  }
}

TEST(Sched, LabelFormat) {
  EXPECT_EQ((ThreadConfig{4, 2}.label()), "4a2");
  EXPECT_EQ((ThreadConfig{8, 0}.label()), "8");
}

TEST(Sched, PowerScalesWithCoresUsed) {
  const Device d = make_device("S21");
  EXPECT_LT(schedule(d, {1, 0}).active_watts, schedule(d, {4, 0}).active_watts);
}

// ---------------------------------------------------------------- latency

TEST(Latency, TierOrdering) {
  const RunConfig config{};
  const double a20 = mean_latency_ms(make_device("A20"), config);
  const double a70 = mean_latency_ms(make_device("A70"), config);
  const double s21 = mean_latency_ms(make_device("S21"), config);
  EXPECT_GT(a20, a70);
  EXPECT_GT(a70, s21);
  // Fig. 9: A20 ~3.4x and A70 ~1.51x slower than S21 (wide tolerance: this
  // is a shape target).
  EXPECT_NEAR(a20 / s21, 3.4, 1.2);
  EXPECT_NEAR(a70 / s21, 1.51, 0.5);
}

TEST(Latency, GenerationOrdering) {
  const RunConfig config{};
  const double q845 = mean_latency_ms(make_device("Q845"), config);
  const double q855 = mean_latency_ms(make_device("Q855"), config);
  const double q888 = mean_latency_ms(make_device("Q888"), config);
  EXPECT_GT(q845, q855);
  EXPECT_GT(q855, q888);
  // Fig. 9 means are 76/58/35 ms -> ratios ~2.17 and ~1.66 vs Q888.
  EXPECT_NEAR(q845 / q888, 2.17, 0.7);
  EXPECT_NEAR(q855 / q888, 1.66, 0.5);
}

TEST(Latency, OpenDeckBeatsPhoneWithSameSoc) {
  const RunConfig config{};
  EXPECT_LT(mean_latency_ms(make_device("Q888"), config),
            mean_latency_ms(make_device("S21"), config));
}

TEST(Latency, MidTierPhoneCanBeatOldFlagshipSoc) {
  // "a next-gen mid-tier phone may perform better than the high-end SoC of
  // a prior generation" (A70 vs Q845).
  const RunConfig config{};
  EXPECT_LT(mean_latency_ms(make_device("A70"), config),
            mean_latency_ms(make_device("Q845"), config));
}

TEST(Latency, FlopsAreNotLinearInLatency) {
  // Fig. 8: across a model population, latency correlates with FLOPs but
  // far from perfectly (depthwise/memory-bound ops, overheads).
  const Device device = make_device("Q845");
  const auto pop = population();
  std::vector<double> flops, lat;
  int key = 0;
  for (const auto& trace : pop) {
    const auto r =
        simulate_inference(device, trace, {}, "m" + std::to_string(key++));
    flops.push_back(r.flops);
    lat.push_back(r.latency_s);
  }
  const double corr = util::correlation(flops, lat);
  EXPECT_GT(corr, 0.4);   // related...
  EXPECT_LT(corr, 0.99);  // ...but not a clean line
  const auto fit = util::fit_line(flops, lat);
  EXPECT_LT(fit.r2, 0.98);
}

TEST(Latency, DeterministicPerModelKey) {
  const Device device = make_device("S21");
  const auto trace = trace_of("mobilenet");
  const auto a = simulate_inference(device, trace, {}, "model-x");
  const auto b = simulate_inference(device, trace, {}, "model-x");
  EXPECT_DOUBLE_EQ(a.latency_s, b.latency_s);
  const auto c = simulate_inference(device, trace, {}, "model-y");
  EXPECT_NE(a.latency_s, c.latency_s);
}

TEST(Latency, BatchThroughputScalesNearLinearly) {
  // Fig. 11: throughput grows with batch, near-linearly up to 25.
  const Device device = make_device("S21");
  const auto trace = trace_of("mobilenet", 64);
  double prev_throughput = 0.0;
  for (int batch : {1, 2, 5, 10, 25}) {
    RunConfig config;
    config.batch = batch;
    const auto r = simulate_inference(device, trace, config, "batch-model");
    EXPECT_GT(r.throughput_ips, prev_throughput);
    prev_throughput = r.throughput_ips;
  }
  // Batch 25 should be clearly above batch 1 (overhead amortised).
  RunConfig b1, b25;
  b1.batch = 1;
  b25.batch = 25;
  const double t1 =
      simulate_inference(device, trace, b1, "batch-model").throughput_ips;
  const double t25 =
      simulate_inference(device, trace, b25, "batch-model").throughput_ips;
  EXPECT_GT(t25 / t1, 1.3);
}

TEST(Latency, ThermalThrottlingKicksIn) {
  const Device phone = make_device("A20");
  EXPECT_DOUBLE_EQ(thermal_factor(phone, 0.0), 1.0);
  EXPECT_LT(thermal_factor(phone, 120.0), 1.0);
  EXPECT_GE(thermal_factor(phone, 1e6), phone.throttle_floor);
  // Open-deck boards throttle less.
  const Device board = make_device("Q888");
  EXPECT_GT(thermal_factor(board, 300.0), thermal_factor(phone, 300.0));

  const auto trace = trace_of("unet", 96);
  RunConfig cold, hot;
  hot.sustained_seconds = 600.0;
  EXPECT_GT(simulate_inference(phone, trace, hot, "m").latency_s,
            simulate_inference(phone, trace, cold, "m").latency_s);
}

// ----------------------------------------------------------------- energy

TEST(Energy, SimilarAcrossGenerationsButPowerGrows) {
  // Fig. 10a/10b: energy/inference roughly flat across Q845/855/888; power
  // strictly grows with generation.
  const auto pop = population();
  std::vector<double> energy_means, power_means;
  for (const auto& name : {"Q845", "Q855", "Q888"}) {
    const Device device = make_device(name);
    std::vector<double> e, p;
    int key = 0;
    for (const auto& trace : pop) {
      const auto r =
          simulate_inference(device, trace, {}, "e" + std::to_string(key++));
      e.push_back(r.soc_energy_j);
      p.push_back(r.avg_power_w);
    }
    energy_means.push_back(util::mean(e));
    power_means.push_back(util::mean(p));
  }
  EXPECT_LT(power_means[0], power_means[1]);
  EXPECT_LT(power_means[1], power_means[2]);
  // Energy within ~40% band across generations.
  const double emax = *std::max_element(energy_means.begin(), energy_means.end());
  const double emin = *std::min_element(energy_means.begin(), energy_means.end());
  EXPECT_LT(emax / emin, 1.5);
}

TEST(Energy, EfficiencyImprovesWithGeneration) {
  // Fig. 10c: median efficiency 730/765/873 MFLOP/sW across generations.
  const auto pop = population();
  std::vector<double> medians;
  for (const auto& name : {"Q845", "Q855", "Q888"}) {
    const Device device = make_device(name);
    std::vector<double> eff;
    int key = 0;
    for (const auto& trace : pop) {
      eff.push_back(
          simulate_inference(device, trace, {}, "f" + std::to_string(key++))
              .efficiency_mflops_sw);
    }
    medians.push_back(util::median(util::drop_iqr_outliers(eff)));
  }
  EXPECT_LT(medians[0], medians[2]);
  EXPECT_LE(medians[0], medians[1] * 1.05);
}

TEST(Energy, BatteryDrainArithmetic) {
  const Device a20 = make_device("A20");
  // 4000 mAh at 3.85 V = 55,440 J.
  const double capacity_j = 4000.0 / 1000.0 * 3600.0 * 3.85;
  EXPECT_NEAR(battery_drain_fraction(a20, capacity_j), 1.0, 1e-9);
  EXPECT_NEAR(battery_drain_mah(a20, capacity_j), 4000.0, 1e-6);
  const Device q855 = make_device("Q855");
  EXPECT_DOUBLE_EQ(battery_drain_fraction(q855, 100.0), 0.0);  // no battery
}

// --------------------------------------------------------------- backends

TEST(Backends, AvailabilityRules) {
  const Device a20 = make_device("A20");  // Exynos
  EXPECT_TRUE(backend_available(Backend::CpuFp32, a20));
  EXPECT_TRUE(backend_available(Backend::Nnapi, a20));
  EXPECT_FALSE(backend_available(Backend::SnpeDsp, a20));
  EXPECT_FALSE(backend_available(Backend::SnpeCpu, a20));
  const Device q845 = make_device("Q845");
  EXPECT_TRUE(backend_available(Backend::SnpeDsp, q845));
}

TEST(Backends, XnnpackSlightlyFasterOnAverage) {
  const Device q845 = make_device("Q845");
  const auto pop = population();
  std::vector<double> ratios, eff_ratios;
  int key = 0;
  for (const auto& trace : pop) {
    const std::string k = "x" + std::to_string(key++);
    RunConfig cpu, xnn;
    xnn.backend = Backend::CpuXnnpack;
    const auto rc = simulate_inference(q845, trace, cpu, k);
    const auto rx = simulate_inference(q845, trace, xnn, k);
    ratios.push_back(rc.latency_s / rx.latency_s);
    eff_ratios.push_back(rx.efficiency_mflops_sw / rc.efficiency_mflops_sw);
  }
  EXPECT_NEAR(util::geomean(ratios), 1.03, 0.08);
  EXPECT_GT(util::geomean(eff_ratios), 1.0);
}

TEST(Backends, NnapiLagsBehindCpu) {
  const Device q845 = make_device("Q845");
  const auto pop = population();
  std::vector<double> speedups;
  int key = 0;
  for (const auto& trace : pop) {
    const std::string k = "n" + std::to_string(key++);
    RunConfig cpu, nnapi;
    nnapi.backend = Backend::Nnapi;
    speedups.push_back(simulate_inference(q845, trace, cpu, k).latency_s /
                       simulate_inference(q845, trace, nnapi, k).latency_s);
  }
  EXPECT_NEAR(util::geomean(speedups), 0.49, 0.2);
}

TEST(Backends, SnpeHierarchy) {
  // Fig. 14: DSP > GPU > CPU, with DSP ~5.7x and GPU ~2.3x over CPU.
  const Device q845 = make_device("Q845");
  const auto pop = population();
  std::vector<double> dsp_speedup, gpu_speedup;
  int key = 0;
  for (const auto& trace : pop) {
    const std::string k = "s" + std::to_string(key++);
    RunConfig cpu, dsp, gpu;
    dsp.backend = Backend::SnpeDsp;
    gpu.backend = Backend::SnpeGpu;
    const double base = simulate_inference(q845, trace, cpu, k).latency_s;
    // Factor means are quoted over models that map fully onto the target
    // (SNPE users convert compatible models); fallback runs are separate.
    const auto rd = simulate_inference(q845, trace, dsp, k);
    if (!rd.cpu_fallback) dsp_speedup.push_back(base / rd.latency_s);
    const auto rg = simulate_inference(q845, trace, gpu, k);
    if (!rg.cpu_fallback) gpu_speedup.push_back(base / rg.latency_s);
  }
  ASSERT_FALSE(dsp_speedup.empty());
  ASSERT_FALSE(gpu_speedup.empty());
  EXPECT_GT(util::geomean(dsp_speedup), util::geomean(gpu_speedup));
  EXPECT_NEAR(util::geomean(dsp_speedup), 5.72, 2.0);
  EXPECT_NEAR(util::geomean(gpu_speedup), 2.28, 0.8);
}

TEST(Backends, UnsupportedOpsFallBack) {
  // wordrnn is full of layers the DSP cannot run.
  const Device q845 = make_device("Q845");
  const auto trace = trace_of("wordrnn", 16);
  RunConfig dsp;
  dsp.backend = Backend::SnpeDsp;
  const auto r = simulate_inference(q845, trace, dsp, "rnn");
  EXPECT_TRUE(r.cpu_fallback);
  EXPECT_LT(r.supported_flop_share, 0.6);
  // The fallback + transitions mean the speedup is far below the nominal.
  RunConfig cpu;
  const auto rc = simulate_inference(q845, trace, cpu, "rnn");
  EXPECT_LT(rc.latency_s / r.latency_s, 3.0);
}

TEST(Backends, EveryBackendHasNameAndProfile) {
  for (int b = 0; b < static_cast<int>(Backend::kCount); ++b) {
    const auto backend = static_cast<Backend>(b);
    EXPECT_STRNE(backend_name(backend), "?");
    EXPECT_GT(backend_profile(backend).speed_factor, 0.0);
  }
}

// ---------------------------------------------------------------- monsoon

TEST(Monsoon, IntegratesKnownEnergy) {
  Monsoon monsoon{5000.0, 4.2, 7};
  // 2 seconds at 3 W + 1 second at 1 W = 7 J.
  const auto trace = monsoon.record({{2.0, 3.0}, {1.0, 1.0}});
  EXPECT_NEAR(Monsoon::integrate_energy_j(trace), 7.0, 0.15);
  EXPECT_NEAR(Monsoon::mean_power_w(trace), 7.0 / 3.0, 0.1);
}

TEST(Monsoon, SampleRateRespected) {
  Monsoon monsoon{5000.0};
  const auto trace = monsoon.record({{0.5, 2.0}});
  EXPECT_NEAR(static_cast<double>(trace.size()), 2500.0, 5.0);
  for (std::size_t i = 1; i < std::min<std::size_t>(trace.size(), 100); ++i) {
    EXPECT_NEAR(trace[i].t_s - trace[i - 1].t_s, 1.0 / 5000.0, 1e-9);
  }
}

TEST(Monsoon, EmptyAndZeroPhases) {
  Monsoon monsoon;
  EXPECT_TRUE(monsoon.record({}).empty());
  EXPECT_DOUBLE_EQ(Monsoon::integrate_energy_j({}), 0.0);
  EXPECT_DOUBLE_EQ(Monsoon::mean_power_w({}), 0.0);
}

TEST(Monsoon, MatchesAnalyticInferenceEnergy) {
  // Recording the simulated inference phases and integrating must agree
  // with the analytic energy within noise.
  const Device q845 = make_device("Q845");
  const auto trace = trace_of("mobilenet");
  const auto r = simulate_inference(q845, trace, {}, "monsoon-model");
  Monsoon monsoon{5000.0, 4.2, 3};
  // 100 back-to-back inferences for a trace long enough to sample well.
  const auto samples =
      monsoon.record({{r.latency_s * 100.0, r.avg_power_w}});
  const double measured = Monsoon::integrate_energy_j(samples) / 100.0;
  EXPECT_NEAR(measured, r.energy_j, r.energy_j * 0.1);
}

}  // namespace
}  // namespace gauge::device
