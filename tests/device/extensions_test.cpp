// Tests for the paper's §8 extension features: DNN co-habitation and the
// A16W8 NPU ablation backend.
#include <gtest/gtest.h>

#include "device/latency.hpp"
#include "device/soc.hpp"
#include "nn/trace.hpp"
#include "nn/zoo.hpp"
#include "util/stats.hpp"

namespace gauge::device {
namespace {

nn::ModelTrace trace_of(const std::string& arch, std::uint64_t seed = 1) {
  nn::ZooSpec spec;
  spec.archetype = arch;
  spec.resolution = 48;
  spec.seed = seed;
  auto trace = nn::trace_model(nn::build_model(spec));
  EXPECT_TRUE(trace.ok());
  return std::move(trace).take();
}

TEST(Cohabitation, SingleModelMatchesPlainSimulation) {
  const Device dev = make_device("S21");
  const auto trace = trace_of("mobilenet");
  const auto solo = simulate_inference(dev, trace, {}, "m");
  const auto co = simulate_cohabitation(dev, {&trace}, {}, {"m"});
  ASSERT_EQ(co.size(), 1u);
  EXPECT_DOUBLE_EQ(co[0].latency_s, solo.latency_s);
}

TEST(Cohabitation, TwoModelsSlowEachOtherSuperlinearly) {
  const Device dev = make_device("S21");
  const auto a = trace_of("mobilenet", 1);
  const auto b = trace_of("blazeface", 2);
  const auto solo_a = simulate_inference(dev, a, {}, "a");
  const auto co = simulate_cohabitation(dev, {&a, &b}, {}, {"a", "b"});
  ASSERT_EQ(co.size(), 2u);
  // Each model runs slower than 2x its solo latency (fair share +
  // contention), the paper's anticipated co-habitation problem.
  EXPECT_GT(co[0].latency_s, 2.0 * solo_a.latency_s);
  EXPECT_LT(co[0].latency_s, 3.5 * solo_a.latency_s);
}

TEST(Cohabitation, ContentionGrowsWithResidentCount) {
  const Device dev = make_device("Q845");
  const auto t1 = trace_of("mobilenet", 1);
  const auto t2 = trace_of("contournet", 2);
  const auto t3 = trace_of("blazeface", 3);
  const auto t4 = trace_of("vggnet", 4);
  const auto solo = simulate_inference(dev, t1, {}, "k1").latency_s;
  double prev_ratio = 1.0;
  std::vector<const nn::ModelTrace*> traces{&t1};
  std::vector<std::string> keys{"k1"};
  const nn::ModelTrace* extra[] = {&t2, &t3, &t4};
  const char* extra_keys[] = {"k2", "k3", "k4"};
  for (int n = 0; n < 3; ++n) {
    traces.push_back(extra[n]);
    keys.emplace_back(extra_keys[n]);
    const auto co = simulate_cohabitation(dev, traces, {}, keys);
    const double per_model_ratio =
        co[0].latency_s / solo / static_cast<double>(traces.size());
    // The contention factor (slowdown beyond fair share) keeps growing.
    EXPECT_GT(per_model_ratio, prev_ratio);
    prev_ratio = per_model_ratio;
  }
}

TEST(Cohabitation, EfficiencyDegrades) {
  const Device dev = make_device("Q888");
  const auto a = trace_of("mobilenet", 5);
  const auto b = trace_of("unet", 6);
  const auto solo = simulate_inference(dev, a, {}, "a");
  const auto co = simulate_cohabitation(dev, {&a, &b}, {}, {"a", "b"});
  EXPECT_LT(co[0].efficiency_mflops_sw, solo.efficiency_mflops_sw);
}

TEST(Cohabitation, EmptyInputYieldsNothing) {
  const Device dev = make_device("A20");
  EXPECT_TRUE(simulate_cohabitation(dev, {}, {}, {}).empty());
}

TEST(NpuA16W8, AvailabilityIsNewestGenOnly) {
  EXPECT_TRUE(backend_available(Backend::NpuA16W8, make_device("Q888")));
  EXPECT_TRUE(backend_available(Backend::NpuA16W8, make_device("S21")));
  EXPECT_FALSE(backend_available(Backend::NpuA16W8, make_device("Q845")));
  EXPECT_FALSE(backend_available(Backend::NpuA16W8, make_device("A20")));
}

TEST(NpuA16W8, SitsBetweenGpuAndDsp) {
  // Per-model lognormal variation makes single draws noisy; compare
  // geomean speedups over a small population, as the paper's averages do.
  const Device dev = make_device("Q888");
  std::vector<double> npu_vs_cpu, gpu_vs_cpu, dsp_vs_cpu, npu_eff;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const auto trace = trace_of(seed % 2 ? "mobilenet" : "blazeface", seed);
    const std::string key = "npu-test-" + std::to_string(seed);
    auto run = [&](Backend b) {
      RunConfig config;
      config.backend = b;
      return simulate_inference(dev, trace, config, key);
    };
    const auto cpu = run(Backend::CpuFp32);
    const auto gpu = run(Backend::SnpeGpu);
    const auto npu = run(Backend::NpuA16W8);
    const auto dsp = run(Backend::SnpeDsp);
    npu_vs_cpu.push_back(cpu.latency_s / npu.latency_s);
    gpu_vs_cpu.push_back(cpu.latency_s / gpu.latency_s);
    dsp_vs_cpu.push_back(cpu.latency_s / dsp.latency_s);
    npu_eff.push_back(npu.efficiency_mflops_sw / cpu.efficiency_mflops_sw);
  }
  EXPECT_GT(util::geomean(npu_vs_cpu), util::geomean(gpu_vs_cpu));
  EXPECT_LT(util::geomean(npu_vs_cpu), util::geomean(dsp_vs_cpu));
  EXPECT_GT(util::geomean(npu_eff), 5.0);
}

TEST(NpuA16W8, SupportsSmoothActivationsUnlikeDsp) {
  // stylenet carries Sigmoid: DSP falls back, the A16W8 NPU does not.
  const Device dev = make_device("Q888");
  const auto trace = trace_of("stylenet", 4);
  RunConfig dsp, npu;
  dsp.backend = Backend::SnpeDsp;
  npu.backend = Backend::NpuA16W8;
  EXPECT_TRUE(simulate_inference(dev, trace, dsp, "s").cpu_fallback);
  EXPECT_FALSE(simulate_inference(dev, trace, npu, "s").cpu_fallback);
}

TEST(Breakdown, SharesSumToModelLatencyShape) {
  const Device dev = make_device("Q845");
  const auto trace = trace_of("mobilenet", 7);
  const auto layers = layer_breakdown(dev, trace);
  ASSERT_FALSE(layers.empty());
  double total = 0.0;
  bool any_memory_bound = false, any_compute_bound = false;
  for (const auto& timing : layers) {
    EXPECT_GT(timing.seconds, 0.0);
    EXPECT_GE(timing.seconds,
              std::max(timing.compute_seconds, timing.memory_seconds));
    total += timing.seconds;
    if (timing.memory_bound) any_memory_bound = true;
    else any_compute_bound = true;
  }
  // Mixed boundedness is exactly what breaks the FLOPs-latency line (Fig 8).
  EXPECT_TRUE(any_memory_bound);
  EXPECT_TRUE(any_compute_bound);
  EXPECT_GT(total, 0.0);
}

TEST(Breakdown, DepthwiseLayersAreMemoryBoundish) {
  const Device dev = make_device("S21");
  const auto trace = trace_of("mobilenet", 8);
  double dw_ratio = 0.0, conv_ratio = 0.0;
  int dw = 0, conv = 0;
  for (const auto& timing : layer_breakdown(dev, trace)) {
    if (timing.flops <= 0.0) continue;
    const double per_flop = timing.seconds / timing.flops;
    if (timing.type == nn::LayerType::DepthwiseConv2D) {
      dw_ratio += per_flop;
      ++dw;
    } else if (timing.type == nn::LayerType::Conv2D) {
      conv_ratio += per_flop;
      ++conv;
    }
  }
  ASSERT_GT(dw, 0);
  ASSERT_GT(conv, 0);
  // Per-FLOP, depthwise convolutions are far more expensive than dense
  // convolutions — the paper's core argument against FLOPs as a proxy.
  EXPECT_GT(dw_ratio / dw, 2.0 * (conv_ratio / conv));
}

TEST(RunResult, MemoryAndUtilisationDimensions) {
  const Device dev = make_device("S21");
  const auto trace = trace_of("mobilenet", 3);
  const auto r1 = simulate_inference(dev, trace, {}, "mem");
  EXPECT_GT(r1.peak_memory_bytes, 0.0);
  EXPECT_GT(r1.cpu_utilisation, 0.0);
  EXPECT_LE(r1.cpu_utilisation, 1.0);

  // Batch grows the activation share of the footprint, not the weights.
  RunConfig batched;
  batched.batch = 8;
  const auto r8 = simulate_inference(dev, trace, batched, "mem");
  EXPECT_GT(r8.peak_memory_bytes, r1.peak_memory_bytes);
  EXPECT_LT(r8.peak_memory_bytes, 8.0 * r1.peak_memory_bytes);

  // Offloading to the DSP frees the CPU.
  RunConfig dsp;
  dsp.backend = Backend::SnpeDsp;
  const Device q888 = make_device("Q888");
  const auto rd = simulate_inference(q888, trace, dsp, "mem");
  const auto rc = simulate_inference(q888, trace, {}, "mem");
  EXPECT_LT(rd.cpu_utilisation, rc.cpu_utilisation);
}

// Property sweep: on every device, scaling a model up (resolution or
// batch) never makes it faster, and energy moves with latency.
class DeviceMonotonicity
    : public ::testing::TestWithParam<std::tuple<const char*, const char*>> {};

TEST_P(DeviceMonotonicity, BiggerModelsAreNeverFaster) {
  const auto [device_name, archetype] = GetParam();
  const Device dev = make_device(device_name);
  double prev_latency = 0.0;
  for (int res : {32, 64, 96}) {
    nn::ZooSpec spec;
    spec.archetype = archetype;
    spec.resolution = res;
    spec.seed = 7;  // same weights-distribution family
    const auto trace = nn::trace_model(nn::build_model(spec));
    ASSERT_TRUE(trace.ok());
    // Use the same variation key so only the model size changes.
    const auto r = simulate_inference(dev, trace.value(), {}, "mono-key");
    EXPECT_GT(r.latency_s, prev_latency)
        << device_name << "/" << archetype << " res " << res;
    EXPECT_GT(r.energy_j, 0.0);
    prev_latency = r.latency_s;
  }
}

TEST_P(DeviceMonotonicity, BatchNeverReducesLatency) {
  const auto [device_name, archetype] = GetParam();
  const Device dev = make_device(device_name);
  nn::ZooSpec spec;
  spec.archetype = archetype;
  spec.resolution = 48;
  const auto trace = nn::trace_model(nn::build_model(spec));
  ASSERT_TRUE(trace.ok());
  double prev = 0.0;
  for (int batch : {1, 2, 4, 8, 16}) {
    RunConfig config;
    config.batch = batch;
    const auto r = simulate_inference(dev, trace.value(), config, "batch-key");
    EXPECT_GT(r.latency_s, prev);
    prev = r.latency_s;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DeviceMonotonicity,
    ::testing::Combine(::testing::Values("A20", "A70", "S21", "Q845", "Q855",
                                         "Q888"),
                       ::testing::Values("mobilenet", "fssd", "unet")));

TEST(Trace, A16ActivationBytesAreTracked) {
  nn::ZooSpec spec;
  spec.archetype = "contournet";
  spec.resolution = 32;
  nn::Graph g = nn::build_model(spec);
  auto fp32 = nn::trace_model(g);
  for (auto& layer : g.layers()) layer.act_bits = 16;
  auto a16 = nn::trace_model(g);
  ASSERT_TRUE(fp32.ok() && a16.ok());
  EXPECT_LT(a16.value().total_bytes, fp32.value().total_bytes);
  EXPECT_GT(a16.value().total_bytes, fp32.value().total_bytes / 3);
}

}  // namespace
}  // namespace gauge::device
