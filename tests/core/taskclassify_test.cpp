#include "core/taskclassify.hpp"

#include <gtest/gtest.h>

#include "nn/zoo.hpp"

namespace gauge::core {
namespace {

nn::ModelTrace trace_of(const std::string& arch, int res = 48) {
  nn::ZooSpec spec;
  spec.archetype = arch;
  spec.resolution = res;
  spec.seed = 5;
  auto trace = nn::trace_model(nn::build_model(spec));
  EXPECT_TRUE(trace.ok());
  return std::move(trace).take();
}

TEST(TaskClassify, NameKeywords) {
  EXPECT_EQ(classify_by_name("hair_segmentation_mobilenet.tflite"),
            "semantic segmentation");
  EXPECT_EQ(classify_by_name("face_detection_blazeface_12.tflite"),
            "face detection");
  EXPECT_EQ(classify_by_name("FSSD_v2.tflite"), "object detection");
  EXPECT_EQ(classify_by_name("auto_complete_wordrnn_3.tflite"), "auto-complete");
  EXPECT_EQ(classify_by_name("model_7.tflite"), kUnidentified);
}

TEST(TaskClassify, ModalityFromInputShape) {
  EXPECT_EQ(infer_modality(trace_of("mobilenet")), nn::Modality::Image);
  EXPECT_EQ(infer_modality(trace_of("audiocnn")), nn::Modality::Audio);
  EXPECT_EQ(infer_modality(trace_of("speechrnn", 16)), nn::Modality::Audio);
  EXPECT_EQ(infer_modality(trace_of("wordrnn", 16)), nn::Modality::Text);
  EXPECT_EQ(infer_modality(trace_of("textcnn", 16)), nn::Modality::Text);
  EXPECT_EQ(infer_modality(trace_of("sensormlp", 8)), nn::Modality::Sensor);
}

TEST(TaskClassify, StructureHeuristics) {
  EXPECT_EQ(classify_by_layers(trace_of("wordrnn", 16)), "auto-complete");
  EXPECT_EQ(classify_by_layers(trace_of("textcnn", 16)), "sentiment prediction");
  EXPECT_EQ(classify_by_layers(trace_of("ocrnet")), "text recognition");
  EXPECT_EQ(classify_by_layers(trace_of("speechrnn", 16)), "speech recognition");
  EXPECT_EQ(classify_by_layers(trace_of("audiocnn")), "sound recognition");
  EXPECT_EQ(classify_by_layers(trace_of("sensormlp", 8)), "movement tracking");
  EXPECT_EQ(classify_by_layers(trace_of("unet")), "semantic segmentation");
  EXPECT_EQ(classify_by_layers(trace_of("fssd")), "object detection");
}

TEST(TaskClassify, IoHeuristics) {
  EXPECT_EQ(classify_by_io(trace_of("unet")), "semantic segmentation");
  EXPECT_EQ(classify_by_io(trace_of("posenet")), "pose estimation");
  EXPECT_EQ(classify_by_io(trace_of("speechrnn", 16)), "speech recognition");
}

TEST(TaskClassify, MajorityVoteWins) {
  // Name says segmentation; structure of a unet agrees -> segmentation even
  // if one classifier abstains.
  const auto trace = trace_of("unet");
  EXPECT_EQ(classify_task("hair_segmentation_v3.tflite", trace),
            "semantic segmentation");
}

TEST(TaskClassify, NameBeatsAbstainers) {
  // A generic CNN with a task-hinting name: structure abstains, name wins.
  const auto trace = trace_of("vggnet");
  EXPECT_EQ(classify_task("nudity_detection_v1.tflite", trace),
            "nudity detection");
}

TEST(TaskClassify, StructuralFallbackWithoutName) {
  const auto trace = trace_of("wordrnn", 16);
  EXPECT_EQ(classify_task("model_42.tflite", trace), "auto-complete");
}

TEST(TaskClassify, UnidentifiableModelReported) {
  // Generic CNN, generic name, conflicting weak signals -> unidentified or
  // a harmless guess; must never crash. vggnet + meaningless name: the io
  // classifier says image classification, layers abstain -> single opinion.
  const auto trace = trace_of("vggnet");
  const std::string task = classify_task("m.tflite", trace);
  EXPECT_TRUE(task == "image classification" || task == kUnidentified);
}

}  // namespace
}  // namespace gauge::core
