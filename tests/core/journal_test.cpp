// Unit tests for the crash-safe run journal: frame round-trips, prototype
// dedup/sharing, torn-tail recovery, meta verification and the crash-plan
// grammar. The pipeline-level crash+resume identity lives in
// pipeline_resume_test.cpp.
#include "core/journal.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "core/outcome_codec.hpp"
#include "net/framing.hpp"
#include "util/fileio.hpp"

namespace gauge::core {
namespace {

std::string journal_path(const std::string& name) {
  const auto base =
      std::filesystem::temp_directory_path() / "gaugenn_test" / "journal";
  std::filesystem::create_directories(base);
  const auto path = base / name;
  std::filesystem::remove(path);
  return path.string();
}

JournalMeta sample_meta() {
  JournalMeta meta;
  meta.snapshot = android::Snapshot::Apr2021;
  meta.device_profile = "SM-G977B";
  meta.max_apps_per_category = 500;
  meta.categories = {"communication", "photography"};
  return meta;
}

std::shared_ptr<const ModelRecord> sample_proto(const std::string& checksum) {
  ModelRecord proto;
  proto.framework = formats::Framework::TfLite;
  proto.file_path = "assets/model.tflite";
  proto.file_bytes = 4096;
  proto.checksum = checksum;
  proto.architecture_checksum = "arch-" + checksum;
  proto.modality = nn::Modality::Image;
  proto.task = "image classification";
  proto.int8_weights = true;
  proto.near_zero_weight_fraction = 0.25;
  auto analysis = std::make_shared<ModelAnalysis>();
  nn::LayerCost layer;
  layer.type = nn::LayerType::Conv2D;
  layer.name = "conv_0";
  layer.macs = 1000;
  layer.flops = 2000;
  layer.params = 64;
  layer.bytes_read = 512;
  layer.bytes_written = 256;
  layer.output_shape.dims = {1, 16, 16, 8};
  analysis->trace.layers.push_back(layer);
  analysis->trace.total_macs = 1000;
  analysis->trace.total_flops = 2000;
  analysis->trace.total_params = 64;
  analysis->layer_digests = {"d41d8cd9"};
  analysis->op_family_counts["conv"] = 1;
  proto.analysis = std::move(analysis);
  return std::make_shared<const ModelRecord>(std::move(proto));
}

AppOutcome sample_outcome(const std::string& package, std::uint64_t key,
                          std::shared_ptr<const ModelRecord> proto) {
  AppOutcome out;
  out.package = package;
  out.app.package = package;
  out.app.title = "Title of " + package;
  out.app.category = "communication";
  out.app.installs = 1000000;
  out.app.uses_ml = true;
  out.app.ml_stacks = {"tflite"};
  out.app.cloud_providers = {"google-firebase"};
  out.app.candidate_files = 2;
  out.app.validated_models = 1;
  out.extracted.push_back({"assets/model.tflite", key, std::move(proto)});
  out.models_rejected = 1;
  out.no_parser["sklearn"] = 1;
  out.counters["gauge.pipeline.apps_crawled"] = 1;
  out.counters["gauge.pipeline.drop.bad_signature"] = 1;
  return out;
}

TEST(CrashPlan, GrammarParsesAllDirectives) {
  const auto plan =
      parse_crash_plan("die-after-app=3; die-mid-journal-write=7;torn-tail=9");
  ASSERT_TRUE(plan.ok()) << plan.error();
  EXPECT_EQ(plan.value().die_after_app, 3);
  EXPECT_EQ(plan.value().die_mid_journal_write, 7);
  EXPECT_EQ(plan.value().torn_tail, 9);
  EXPECT_TRUE(plan.value().armed());
}

TEST(CrashPlan, EmptySpecIsUnarmed) {
  const auto plan = parse_crash_plan("");
  ASSERT_TRUE(plan.ok());
  EXPECT_FALSE(plan.value().armed());
}

TEST(CrashPlan, RejectsBadIndexAndUnknownDirective) {
  EXPECT_FALSE(parse_crash_plan("die-after-app=0").ok());
  EXPECT_FALSE(parse_crash_plan("die-after-app=-2").ok());
  EXPECT_FALSE(parse_crash_plan("die-after-app=x").ok());
  EXPECT_FALSE(parse_crash_plan("die-after-app").ok());
  EXPECT_FALSE(parse_crash_plan("sleep=5").ok());
}

TEST(Journal, AppendReplayRoundtrip) {
  const std::string path = journal_path("roundtrip.jnl");
  const auto meta = sample_meta();
  auto opened = Journal::open(path, meta, /*resume=*/false);
  ASSERT_TRUE(opened.ok()) << opened.error();

  auto ok = sample_outcome("com.a", 11, sample_proto("c1"));
  AppOutcome failed;
  failed.status = AppOutcome::Status::DownloadFailed;
  failed.package = "com.b";
  failed.error = "device profile rejected";
  failed.counters["gauge.pipeline.drop.download_failed"] = 1;
  ASSERT_TRUE(opened.value().journal.append(ok).ok());
  ASSERT_TRUE(opened.value().journal.append(failed).ok());
  EXPECT_EQ(opened.value().journal.appended(), 2u);

  auto recovered = Journal::replay(path);
  ASSERT_TRUE(recovered.ok()) << recovered.error();
  EXPECT_TRUE(recovered.value().meta == meta);
  EXPECT_FALSE(recovered.value().torn_tail);
  ASSERT_EQ(recovered.value().outcomes.size(), 2u);

  const AppOutcome& r0 = recovered.value().outcomes[0];
  EXPECT_EQ(r0.status, AppOutcome::Status::Ok);
  EXPECT_EQ(r0.package, "com.a");
  EXPECT_EQ(r0.app.title, "Title of com.a");
  EXPECT_EQ(r0.app.installs, 1000000);
  EXPECT_TRUE(r0.app.uses_ml);
  EXPECT_EQ(r0.app.ml_stacks, std::vector<std::string>{"tflite"});
  ASSERT_EQ(r0.extracted.size(), 1u);
  EXPECT_EQ(r0.extracted[0].path, "assets/model.tflite");
  EXPECT_EQ(r0.extracted[0].content_key, 11u);
  ASSERT_NE(r0.extracted[0].proto, nullptr);
  EXPECT_EQ(r0.extracted[0].proto->checksum, "c1");
  EXPECT_EQ(r0.extracted[0].proto->task, "image classification");
  EXPECT_TRUE(r0.extracted[0].proto->int8_weights);
  EXPECT_DOUBLE_EQ(r0.extracted[0].proto->near_zero_weight_fraction, 0.25);
  ASSERT_NE(r0.extracted[0].proto->analysis, nullptr);
  const auto& trace = r0.extracted[0].proto->analysis->trace;
  ASSERT_EQ(trace.layers.size(), 1u);
  EXPECT_EQ(trace.layers[0].name, "conv_0");
  EXPECT_EQ(trace.layers[0].macs, 1000);
  EXPECT_EQ(trace.layers[0].output_shape.dims,
            (std::vector<std::int64_t>{1, 16, 16, 8}));
  EXPECT_EQ(r0.extracted[0].proto->analysis->op_family_counts.at("conv"), 1);
  EXPECT_EQ(r0.models_rejected, 1u);
  EXPECT_EQ(r0.no_parser.at("sklearn"), 1u);
  EXPECT_EQ(r0.counters.at("gauge.pipeline.apps_crawled"), 1);

  const AppOutcome& r1 = recovered.value().outcomes[1];
  EXPECT_EQ(r1.status, AppOutcome::Status::DownloadFailed);
  EXPECT_EQ(r1.error, "device profile rejected");
  EXPECT_TRUE(r1.extracted.empty());
}

TEST(Journal, PrototypeStoredOnceAndSharedOnReplay) {
  const std::string path = journal_path("dedup.jnl");
  auto opened = Journal::open(path, sample_meta(), false);
  ASSERT_TRUE(opened.ok());

  const auto proto = sample_proto("shared");
  ASSERT_TRUE(
      opened.value().journal.append(sample_outcome("com.a", 42, proto)).ok());
  const auto size_after_first = std::filesystem::file_size(path);
  ASSERT_TRUE(
      opened.value().journal.append(sample_outcome("com.b", 42, proto)).ok());
  const auto size_after_second = std::filesystem::file_size(path);
  // The second record references the content key instead of re-serialising
  // the prototype, so it is much smaller than the first (which carries the
  // meta frame too, making the bound generous).
  EXPECT_LT(size_after_second - size_after_first, size_after_first / 2);

  auto recovered = Journal::replay(path);
  ASSERT_TRUE(recovered.ok()) << recovered.error();
  ASSERT_EQ(recovered.value().outcomes.size(), 2u);
  const auto& a = recovered.value().outcomes[0].extracted[0];
  const auto& b = recovered.value().outcomes[1].extracted[0];
  ASSERT_NE(a.proto, nullptr);
  // Replay re-links duplicates to the SAME instance, mirroring the sharing
  // the analysis cache established during the original run.
  EXPECT_EQ(a.proto, b.proto);
  EXPECT_EQ(b.proto->checksum, "shared");
}

TEST(Journal, ReplayDiscardsTornTailAndResumeRepairsIt) {
  const std::string path = journal_path("torn.jnl");
  {
    auto opened = Journal::open(path, sample_meta(), false);
    ASSERT_TRUE(opened.ok());
    ASSERT_TRUE(opened.value()
                    .journal.append(sample_outcome("com.a", 1, sample_proto("c")))
                    .ok());
  }
  const auto intact_size = std::filesystem::file_size(path);
  // Simulate a crash mid-append: half of a fresh frame lands after the
  // intact records.
  auto bytes = util::read_file_bytes(path);
  ASSERT_TRUE(bytes.ok());
  util::Bytes torn = bytes.value();
  torn.insert(torn.end(), {0x47, 0x4a, 0x4c, 0x31, 0xff, 0xff});
  ASSERT_TRUE(util::AtomicFile{path}.write(torn).ok());

  auto recovered = Journal::replay(path);
  ASSERT_TRUE(recovered.ok()) << recovered.error();
  EXPECT_TRUE(recovered.value().torn_tail);
  EXPECT_EQ(recovered.value().valid_bytes, intact_size);
  ASSERT_EQ(recovered.value().outcomes.size(), 1u);

  // Resume repairs the file down to its valid prefix and keeps appending.
  auto resumed = Journal::open(path, sample_meta(), /*resume=*/true);
  ASSERT_TRUE(resumed.ok()) << resumed.error();
  EXPECT_TRUE(resumed.value().torn_tail);
  EXPECT_EQ(std::filesystem::file_size(path), intact_size);
  ASSERT_TRUE(resumed.value()
                  .journal.append(sample_outcome("com.b", 2, sample_proto("d")))
                  .ok());
  auto after = Journal::replay(path);
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after.value().torn_tail);
  ASSERT_EQ(after.value().outcomes.size(), 2u);
  EXPECT_EQ(after.value().outcomes[1].package, "com.b");
}

TEST(Journal, CorruptedPayloadEndsValidPrefix) {
  const std::string path = journal_path("corrupt.jnl");
  {
    auto opened = Journal::open(path, sample_meta(), false);
    ASSERT_TRUE(opened.ok());
    ASSERT_TRUE(opened.value()
                    .journal.append(sample_outcome("com.a", 1, sample_proto("c")))
                    .ok());
    ASSERT_TRUE(opened.value()
                    .journal.append(sample_outcome("com.b", 2, sample_proto("e")))
                    .ok());
  }
  auto bytes = util::read_file_bytes(path);
  ASSERT_TRUE(bytes.ok());
  util::Bytes flipped = bytes.value();
  flipped[flipped.size() - 10] ^= 0x40;  // inside the last frame
  ASSERT_TRUE(util::AtomicFile{path}.write(flipped).ok());

  auto recovered = Journal::replay(path);
  ASSERT_TRUE(recovered.ok()) << recovered.error();
  EXPECT_TRUE(recovered.value().torn_tail);
  ASSERT_EQ(recovered.value().outcomes.size(), 1u);
  EXPECT_EQ(recovered.value().outcomes[0].package, "com.a");
}

TEST(Journal, ResumeRefusesMetaMismatch) {
  const std::string path = journal_path("mismatch.jnl");
  ASSERT_TRUE(Journal::open(path, sample_meta(), false).ok());
  auto other = sample_meta();
  other.categories = {"dating"};
  const auto resumed = Journal::open(path, other, /*resume=*/true);
  ASSERT_FALSE(resumed.ok());
  EXPECT_NE(resumed.error().find("different options"), std::string::npos);
}

TEST(Journal, ReplayRejectsNonJournalFile) {
  const std::string path = journal_path("not_a_journal.bin");
  ASSERT_TRUE(
      util::write_file(path, std::string_view{"plain text, no frames"}).ok());
  EXPECT_FALSE(Journal::replay(path).ok());
  EXPECT_FALSE(Journal::open(path, sample_meta(), true).ok());
}

TEST(Journal, ReplayRefusesFutureCodecVersionWithClearError) {
  // A well-formed journal from a newer codec generation must be refused
  // outright (never treated as a torn tail), naming both versions.
  const std::string path = journal_path("future_codec.jnl");
  const auto frame = net::encode_frame_with_version(
      net::kFrameVersion + 1, encode_meta_record(sample_meta()));
  ASSERT_TRUE(util::AtomicFile{path}.write(frame).ok());

  const auto recovered = Journal::replay(path);
  ASSERT_FALSE(recovered.ok());
  EXPECT_NE(recovered.error().find(
                "v" + std::to_string(net::kFrameVersion + 1)),
            std::string::npos)
      << recovered.error();
  EXPECT_NE(recovered.error().find(
                "v" + std::to_string(net::kFrameVersion)),
            std::string::npos);
  const auto resumed = Journal::open(path, sample_meta(), /*resume=*/true);
  ASSERT_FALSE(resumed.ok());
  EXPECT_NE(resumed.error().find("re-run the crawl"), std::string::npos);
}

TEST(Journal, ReplayNamesLegacyV1Journals) {
  // PR 5's journals framed records with a bare "GJL1" magic and no version
  // byte. The replay recognises the magic and reports a v1 skew instead of
  // the generic "not a pipeline journal".
  // (The path deliberately avoids the substring "v1" so the assertions can
  // only match the error's version text.)
  const std::string path = journal_path("legacy_journal.jnl");
  // "GJL1" magic | u32 len | payload — and a bare-magic truncation, which is
  // shorter than the new codec's 9-byte header.
  for (const auto& legacy :
       {util::Bytes{0x47, 0x4a, 0x4c, 0x31, 0x04, 0x00, 0x00, 0x00, 0xde,
                    0xad, 0xbe, 0xef, 0x00, 0x00, 0x00, 0x00},
        util::Bytes{0x47, 0x4a, 0x4c, 0x31}}) {
    ASSERT_TRUE(util::AtomicFile{path}.write(legacy).ok());
    const auto recovered = Journal::replay(path);
    ASSERT_FALSE(recovered.ok());
    EXPECT_NE(recovered.error().find("codec v1"), std::string::npos)
        << recovered.error();
    EXPECT_NE(recovered.error().find("re-run the crawl"), std::string::npos);
  }
}

TEST(Journal, SkewedFrameAfterValidPrefixIsAHardError) {
  // A version-skewed frame mid-file means the file was appended to by a
  // different binary — refuse rather than silently truncating to the prefix.
  const std::string path = journal_path("mid_file_skew.jnl");
  {
    auto opened = Journal::open(path, sample_meta(), false);
    ASSERT_TRUE(opened.ok());
    ASSERT_TRUE(opened.value()
                    .journal.append(sample_outcome("com.a", 1, sample_proto("c")))
                    .ok());
  }
  auto bytes = util::read_file_bytes(path);
  ASSERT_TRUE(bytes.ok());
  util::Bytes tampered = bytes.value();
  const auto skewed = net::encode_frame_with_version(
      net::kFrameVersion + 2, encode_outcome_standalone(
                                  sample_outcome("com.b", 2, sample_proto("d"))));
  tampered.insert(tampered.end(), skewed.begin(), skewed.end());
  ASSERT_TRUE(util::AtomicFile{path}.write(tampered).ok());

  const auto recovered = Journal::replay(path);
  ASSERT_FALSE(recovered.ok());
  EXPECT_NE(recovered.error().find(
                "v" + std::to_string(net::kFrameVersion + 2)),
            std::string::npos);
}

TEST(Journal, ResumeOnMissingFileFails) {
  EXPECT_FALSE(
      Journal::open(journal_path("missing.jnl"), sample_meta(), true).ok());
}

TEST(Journal, DieAfterAppLeavesDurableRecord) {
  const std::string path = journal_path("die_after.jnl");
  CrashPlan plan;
  plan.die_after_app = 2;
  auto opened = Journal::open(path, sample_meta(), false, plan);
  ASSERT_TRUE(opened.ok());
  ASSERT_TRUE(opened.value()
                  .journal.append(sample_outcome("com.a", 1, sample_proto("c")))
                  .ok());
  EXPECT_THROW(opened.value().journal.append(
                   sample_outcome("com.b", 2, sample_proto("d"))),
               CrashInjected);
  // The record that triggered the crash is already durable — die-after-app
  // crashes AFTER the fsync.
  auto recovered = Journal::replay(path);
  ASSERT_TRUE(recovered.ok());
  EXPECT_FALSE(recovered.value().torn_tail);
  EXPECT_EQ(recovered.value().outcomes.size(), 2u);
}

TEST(Journal, DieMidWriteLeavesRecoverableTorn) {
  for (const bool torn_tail_mode : {false, true}) {
    SCOPED_TRACE(torn_tail_mode);
    const std::string path = journal_path(
        torn_tail_mode ? "mid_torn.jnl" : "mid_half.jnl");
    CrashPlan plan;
    if (torn_tail_mode) {
      plan.torn_tail = 2;
    } else {
      plan.die_mid_journal_write = 2;
    }
    auto opened = Journal::open(path, sample_meta(), false, plan);
    ASSERT_TRUE(opened.ok());
    ASSERT_TRUE(
        opened.value()
            .journal.append(sample_outcome("com.a", 1, sample_proto("c")))
            .ok());
    EXPECT_THROW(opened.value().journal.append(
                     sample_outcome("com.b", 2, sample_proto("d"))),
                 CrashInjected);
    // Only the fragment of record 2 hit the disk; replay keeps record 1 and
    // flags the tail — even in torn-tail mode where just one byte (the last
    // CRC byte) is missing.
    auto recovered = Journal::replay(path);
    ASSERT_TRUE(recovered.ok());
    EXPECT_TRUE(recovered.value().torn_tail);
    ASSERT_EQ(recovered.value().outcomes.size(), 1u);
    EXPECT_EQ(recovered.value().outcomes[0].package, "com.a");
  }
}

}  // namespace
}  // namespace gauge::core
