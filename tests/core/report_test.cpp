#include "core/report.hpp"

#include <gtest/gtest.h>

#include "core/records.hpp"

namespace gauge::core {
namespace {

// Hand-built miniature dataset: report builders must not depend on the
// generator, only on records.
SnapshotDataset tiny_dataset() {
  SnapshotDataset data;

  auto add_model = [&](const std::string& pkg, const std::string& category,
                       formats::Framework fw, const std::string& task,
                       nn::Modality modality, double flops, double params) {
    ModelRecord m;
    m.record_id = static_cast<int>(data.models.size());
    m.app_package = pkg;
    m.category = category;
    m.framework = fw;
    m.task = task;
    m.modality = modality;
    m.file_path = "assets/models/m" + std::to_string(m.record_id) + ".tflite";
    m.file_bytes = 1000;
    m.checksum = "sum-" + std::to_string(m.record_id);
    m.architecture_checksum = "arch";
    m.mutable_analysis().layer_digests = {"d1", "d2"};
    m.mutable_analysis().trace.total_flops = static_cast<std::int64_t>(flops);
    m.mutable_analysis().trace.total_params = static_cast<std::int64_t>(params);
    m.mutable_analysis().op_family_counts = {{"conv", 4}, {"dense", 1}};
    data.model_docs.insert(to_document(m));
    data.models.push_back(std::move(m));
  };

  AppRecord app;
  app.package = "com.a";
  app.category = "photography";
  app.installs = 1000;
  app.uses_ml = true;
  app.cloud_providers = {"Google Firebase ML"};
  app.side_container_files = 3;
  add_model("com.a", "photography", formats::Framework::TfLite,
            "object detection", nn::Modality::Image, 2e6, 1e4);
  add_model("com.a", "photography", formats::Framework::Caffe,
            "semantic segmentation", nn::Modality::Image, 8e6, 5e4);
  app.model_record_ids = {0, 1};
  app.validated_models = 2;
  app.candidate_files = 3;
  data.app_docs.insert(to_document(app));
  data.apps.push_back(app);

  AppRecord app2;
  app2.package = "com.b";
  app2.category = "finance";
  app2.uses_ml = true;
  add_model("com.b", "finance", formats::Framework::TfLite, "auto-complete",
            nn::Modality::Text, 1e5, 2e3);
  app2.model_record_ids = {2};
  app2.validated_models = 1;
  app2.candidate_files = 1;
  data.app_docs.insert(to_document(app2));
  data.apps.push_back(app2);

  return data;
}

TEST(Report, Table2OnTinyDataset) {
  const auto table = table2_dataset(tiny_dataset());
  const std::string csv = table.to_csv();
  EXPECT_NE(csv.find("Apps crawled,2"), std::string::npos);
  EXPECT_NE(csv.find("Models extracted & validated,3"), std::string::npos);
}

TEST(Report, Fig4RendersBothFrameworks) {
  const auto table = fig4_frameworks(tiny_dataset(), 1);
  const std::string csv = table.to_csv();
  EXPECT_NE(csv.find("photography,2"), std::string::npos);
  const auto totals = fig4_framework_totals(tiny_dataset());
  const std::string tcsv = totals.to_csv();
  EXPECT_NE(tcsv.find("TFLite,2"), std::string::npos);
  EXPECT_NE(tcsv.find("caffe,1"), std::string::npos);
}

TEST(Report, Table3GroupsAndShares) {
  const auto table = table3_tasks(tiny_dataset());
  const std::string csv = table.to_csv();
  EXPECT_NE(csv.find("image,object detection,1,50.0%"), std::string::npos);
  EXPECT_NE(csv.find("text,auto-complete,1,100.0%"), std::string::npos);
}

TEST(Report, Fig7OrdersByMedianFlops) {
  const auto table = fig7_flops_params(tiny_dataset());
  const std::string csv = table.to_csv();
  // Segmentation (8 MFLOPs) must come before auto-complete (0.1 MFLOPs).
  EXPECT_LT(csv.find("semantic segmentation"), csv.find("auto-complete"));
}

TEST(Report, Fig15CountsProviders) {
  const auto table = fig15_cloud(tiny_dataset(), 1);
  const std::string csv = table.to_csv();
  EXPECT_NE(csv.find("photography,1,1,0"), std::string::npos);
  EXPECT_NE(csv.find("(total),1,1,0"), std::string::npos);
}

TEST(Report, Sec42CountsSweeps) {
  const auto table = sec42_distribution(tiny_dataset());
  const std::string csv = table.to_csv();
  EXPECT_NE(csv.find("Files swept in side containers,3"), std::string::npos);
  EXPECT_NE(csv.find("Model candidates found there,0"), std::string::npos);
}

TEST(Report, EmptyDatasetDoesNotCrash) {
  SnapshotDataset empty;
  // Table 2 divides by apps_crawled; an empty crawl is a caller error the
  // other builders must still survive.
  EXPECT_NO_THROW(fig4_frameworks(empty, 1));
  EXPECT_NO_THROW(table3_tasks(empty));
  EXPECT_NO_THROW(fig6_layer_composition(empty));
  EXPECT_NO_THROW(fig7_flops_params(empty));
  EXPECT_NO_THROW(fig15_cloud(empty, 1));
  EXPECT_NO_THROW(sec42_distribution(empty));
}

TEST(Records, AppDocumentFields) {
  const auto data = tiny_dataset();
  const auto& doc = data.app_docs.doc(0);
  EXPECT_EQ(doc.at("package").as_string(), "com.a");
  EXPECT_TRUE(doc.at("uses_ml").as_bool());
  EXPECT_TRUE(doc.at("cloud").as_bool());
  EXPECT_EQ(doc.at("model_count").as_int(), 2);
}

TEST(Records, ModelDocumentFields) {
  const auto data = tiny_dataset();
  const auto& doc = data.model_docs.doc(1);
  EXPECT_EQ(doc.at("framework").as_string(), "caffe");
  EXPECT_EQ(doc.at("task").as_string(), "semantic segmentation");
  EXPECT_DOUBLE_EQ(doc.at("flops").as_double(), 8e6);
}

TEST(Records, DocStoreAggregationOverDataset) {
  const auto data = tiny_dataset();
  const auto rows = data.model_docs.query().group_by({"framework"}, "flops");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].keys[0].str(), "TFLite");
  EXPECT_EQ(rows[0].count, 2);
  EXPECT_DOUBLE_EQ(rows[0].sum, 2e6 + 1e5);
}

// The DocStore port guarantee: every query-backed table renders byte-for-
// byte identically to its pre-port record-scanning implementation.
TEST(Report, QueryBackedTablesMatchRecordScanOracle) {
  EXPECT_EQ(report_parity_diff(tiny_dataset()), "");
  SnapshotDataset empty;
  EXPECT_EQ(report_parity_diff(empty), "");
}

}  // namespace
}  // namespace gauge::core
