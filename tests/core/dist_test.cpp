// Coordinator/worker cluster tests (DESIGN.md §15). Workers run via the
// thread launcher — the same real TCP protocol as forked processes, but
// visible to TSan (which cannot follow a multi-threaded fork) and to gtest
// assertions. The invariant under test throughout: the SnapshotDataset
// digest is byte-identical to a serial run, under every worker/thread
// combination and every injected fault. (Thread workers share the process
// metrics registry, so pipeline.* counters double-count here; the digest
// does not include them.)
#include "core/dist.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <string>

#include "core/journal.hpp"
#include "core/pipeline.hpp"
#include "net/framing.hpp"
#include "telemetry/metrics.hpp"
#include "util/bytes.hpp"

namespace gauge::core {
namespace {

constexpr std::size_t kAppsPerCategory = 60;

const android::PlayStore& play() {
  static const android::PlayStore kPlay{android::StoreConfig{}};
  return kPlay;
}

PipelineOptions dist_options(unsigned workers, unsigned threads) {
  PipelineOptions options;
  options.categories = {"communication"};
  options.max_apps_per_category = kAppsPerCategory;
  options.threads = threads;
  options.workers = workers;
  options.worker_launcher = thread_worker_launcher();
  return options;
}

std::uint64_t serial_digest() {
  static const std::uint64_t kDigest = [] {
    PipelineOptions options;
    options.categories = {"communication"};
    options.max_apps_per_category = kAppsPerCategory;
    options.threads = 0;
    return dataset_digest(run_pipeline(play(), options));
  }();
  return kDigest;
}

std::int64_t counter_value(const telemetry::MetricsRegistry& registry,
                           const std::string& name) {
  for (const auto& [counter, value] : registry.counters()) {
    if (counter == name) return value;
  }
  return 0;
}

std::string journal_path(const std::string& name) {
  const auto base =
      std::filesystem::temp_directory_path() / "gaugenn_test" / "dist";
  std::filesystem::create_directories(base);
  const auto path = base / name;
  std::filesystem::remove(path);
  return path.string();
}

// --- fault-plan grammar --------------------------------------------------

TEST(DistFaultPlan, GrammarParsesAllDirectives) {
  const auto plan = parse_worker_fault_plan(
      "kill-after=0:3; drop-result=1:2;stall=2:1:4");
  ASSERT_TRUE(plan.ok()) << plan.error();
  EXPECT_EQ(plan.value().kill_after.at(0), 3);
  EXPECT_EQ(plan.value().drop_result.at(1), 2);
  EXPECT_EQ(plan.value().stall.at(2).outcome, 1);
  EXPECT_EQ(plan.value().stall.at(2).seconds, 4);
  EXPECT_TRUE(plan.value().armed());
}

TEST(DistFaultPlan, EmptySpecIsUnarmed) {
  const auto plan = parse_worker_fault_plan("");
  ASSERT_TRUE(plan.ok());
  EXPECT_FALSE(plan.value().armed());
}

TEST(DistFaultPlan, RejectsMalformedDirectives) {
  EXPECT_FALSE(parse_worker_fault_plan("kill-after=0").ok());
  EXPECT_FALSE(parse_worker_fault_plan("kill-after=0:0").ok());
  EXPECT_FALSE(parse_worker_fault_plan("kill-after=x:1").ok());
  EXPECT_FALSE(parse_worker_fault_plan("stall=0:1").ok());
  EXPECT_FALSE(parse_worker_fault_plan("stall=0:1:0").ok());
  EXPECT_FALSE(parse_worker_fault_plan("reboot=0:1").ok());
}

// --- determinism ---------------------------------------------------------

class DistDeterminism
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>> {};

TEST_P(DistDeterminism, DigestMatchesSerialRun) {
  const auto& [workers, threads] = GetParam();
  telemetry::MetricsRegistry registry;
  telemetry::ScopedRegistry scope{registry};
  const auto data = run_pipeline(play(), dist_options(workers, threads));
  EXPECT_FALSE(data.interrupted);
  EXPECT_EQ(data.apps.size(), kAppsPerCategory);
  EXPECT_EQ(dataset_digest(data), serial_digest());
  EXPECT_EQ(counter_value(registry, "gauge.dist.workers"),
            static_cast<std::int64_t>(workers));
  EXPECT_EQ(counter_value(registry, "gauge.dist.worker_deaths"), 0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, DistDeterminism,
                         ::testing::Combine(::testing::Values(1u, 2u, 4u),
                                            ::testing::Values(1u, 4u)),
                         [](const auto& info) {
                           return "workers" +
                                  std::to_string(std::get<0>(info.param)) +
                                  "_threads" +
                                  std::to_string(std::get<1>(info.param));
                         });

// --- fault recovery ------------------------------------------------------

TEST(DistFaults, WorkerKilledMidCrawlIsRequeuedAndDigestHolds) {
  telemetry::MetricsRegistry registry;
  telemetry::ScopedRegistry scope{registry};
  auto options = dist_options(/*workers=*/2, /*threads=*/2);
  options.worker_faults.kill_after[0] = 3;  // worker 0 dies at its 3rd result
  const auto data = run_pipeline(play(), options);
  EXPECT_EQ(data.apps.size(), kAppsPerCategory);
  EXPECT_EQ(dataset_digest(data), serial_digest());
  EXPECT_EQ(counter_value(registry, "gauge.dist.worker_deaths"), 1);
  EXPECT_GE(counter_value(registry, "gauge.dist.requeues"), 1);
}

TEST(DistFaults, AllWorkersKilledStillCompletesInline) {
  telemetry::MetricsRegistry registry;
  telemetry::ScopedRegistry scope{registry};
  auto options = dist_options(/*workers=*/2, /*threads=*/1);
  options.worker_faults.kill_after[0] = 1;
  options.worker_faults.kill_after[1] = 2;
  const auto data = run_pipeline(play(), options);
  EXPECT_EQ(data.apps.size(), kAppsPerCategory);
  EXPECT_EQ(dataset_digest(data), serial_digest());
  EXPECT_EQ(counter_value(registry, "gauge.dist.worker_deaths"), 2);
  // With no workers left, the remaining chart runs inline on the
  // coordinator (quarantine path).
  EXPECT_GE(counter_value(registry, "gauge.dist.quarantined"), 1);
}

TEST(DistFaults, DroppedResultIsRecoveredByTheDeadline) {
  telemetry::MetricsRegistry registry;
  telemetry::ScopedRegistry scope{registry};
  auto options = dist_options(/*workers=*/1, /*threads=*/1);
  options.worker_faults.drop_result[0] = 2;  // 2nd result silently vanishes
  options.worker_deadline = std::chrono::milliseconds{300};
  options.worker_retry.max_attempts = 3;
  const auto data = run_pipeline(play(), options);
  EXPECT_EQ(data.apps.size(), kAppsPerCategory);
  EXPECT_EQ(dataset_digest(data), serial_digest());
  EXPECT_GE(counter_value(registry, "gauge.dist.requeues"), 1);
  EXPECT_EQ(counter_value(registry, "gauge.dist.worker_deaths"), 0);
}

TEST(DistFaults, StragglerIsStolenByAnIdleWorker) {
  telemetry::MetricsRegistry registry;
  telemetry::ScopedRegistry scope{registry};
  auto options = dist_options(/*workers=*/2, /*threads=*/1);
  options.worker_faults.stall[0] = {/*outcome=*/2, /*seconds=*/2};
  options.steal_after = std::chrono::milliseconds{150};
  options.worker_deadline = std::chrono::milliseconds{20'000};  // steal, not requeue
  const auto data = run_pipeline(play(), options);
  EXPECT_EQ(data.apps.size(), kAppsPerCategory);
  EXPECT_EQ(dataset_digest(data), serial_digest());
  EXPECT_GE(counter_value(registry, "gauge.dist.steals"), 1);
  // The stalled worker eventually delivers too; the duplicate is dropped.
  EXPECT_EQ(counter_value(registry, "gauge.dist.worker_deaths"), 0);
}

// --- handshake -----------------------------------------------------------

TEST(DistHandshake, ProtocolVersionSkewIsRejectedByName) {
  telemetry::MetricsRegistry registry;
  telemetry::ScopedRegistry scope{registry};
  std::atomic<bool> saw_reject{false};
  std::string reject_reason;
  std::mutex reason_mutex;

  auto options = dist_options(/*workers=*/1, /*threads=*/1);
  options.max_apps_per_category = 10;
  // A "worker" from a binary speaking a newer cluster protocol: the
  // coordinator must refuse it, naming both versions, and fall back to
  // running the chart inline.
  options.worker_launcher = [&](const android::PlayStore&,
                                const PipelineOptions&,
                                const WorkerConfig& config) -> WorkerHandle {
    auto thread = std::make_shared<std::thread>([&, config] {
      auto stream = net::TcpStream::connect("127.0.0.1", config.port);
      ASSERT_TRUE(stream.ok()) << stream.error();
      util::ByteWriter hello;
      hello.u8(static_cast<std::uint8_t>(DistMsg::Hello));
      hello.u16(kDistProtocolVersion + 1);
      hello.u64(config.token);
      hello.u32(config.index);
      ASSERT_TRUE(net::send_frame(stream.value(), std::move(hello).take(),
                                  std::chrono::milliseconds{2000})
                      .ok());
      auto reply = net::recv_frame_for(stream.value(), 1 << 20,
                                       std::chrono::milliseconds{5000});
      ASSERT_TRUE(reply.ok()) << reply.error();
      util::ByteReader reader{std::span<const std::uint8_t>{reply.value()}};
      if (static_cast<DistMsg>(reader.u8()) == DistMsg::Reject) {
        saw_reject.store(true);
        const std::lock_guard<std::mutex> guard{reason_mutex};
        reject_reason = reader.str();
      }
    });
    WorkerHandle handle;
    handle.join = [thread] {
      if (thread->joinable()) thread->join();
    };
    return handle;
  };

  const auto data = run_pipeline(play(), options);
  EXPECT_EQ(data.apps.size(), 10u);
  EXPECT_TRUE(saw_reject.load());
  {
    const std::lock_guard<std::mutex> guard{reason_mutex};
    EXPECT_NE(reject_reason.find("protocol version skew"), std::string::npos)
        << reject_reason;
    EXPECT_NE(reject_reason.find(
                  "v" + std::to_string(kDistProtocolVersion + 1)),
              std::string::npos);
  }
  EXPECT_EQ(counter_value(registry, "gauge.dist.handshake_rejects"), 1);
  EXPECT_EQ(counter_value(registry, "gauge.dist.workers"), 0);
}

// --- journal composition -------------------------------------------------

TEST(DistResume, CoordinatorCrashThenDistributedResumeIsByteIdentical) {
  const std::string path = journal_path("coordinator_crash.jnl");
  {
    // The coordinator owns the journal; an injected crash after the 20th
    // durable append kills the whole cluster mid-crawl.
    auto options = dist_options(/*workers=*/2, /*threads=*/2);
    options.journal_path = path;
    options.crash_plan.die_after_app = 20;
    EXPECT_THROW(run_pipeline(play(), options), CrashInjected);
  }
  telemetry::MetricsRegistry registry;
  telemetry::ScopedRegistry scope{registry};
  auto options = dist_options(/*workers=*/2, /*threads=*/2);
  options.journal_path = path;
  options.resume = true;
  const auto data = run_pipeline(play(), options);
  EXPECT_FALSE(data.interrupted);
  EXPECT_EQ(dataset_digest(data), serial_digest());
  EXPECT_EQ(counter_value(registry, "gauge.pipeline.resume.skipped"), 20);
}

TEST(DistResume, CancelledDistributedCrawlResumesToSerialDigest) {
  const std::string path = journal_path("cancel_dist.jnl");
  {
    std::atomic<bool> cancel{true};  // drain immediately: nothing crawled
    auto options = dist_options(/*workers=*/2, /*threads=*/1);
    options.journal_path = path;
    options.cancel = &cancel;
    const auto data = run_pipeline(play(), options);
    EXPECT_TRUE(data.interrupted);
  }
  auto options = dist_options(/*workers=*/2, /*threads=*/1);
  options.journal_path = path;
  options.resume = true;
  const auto data = run_pipeline(play(), options);
  EXPECT_FALSE(data.interrupted);
  EXPECT_EQ(dataset_digest(data), serial_digest());
}

}  // namespace
}  // namespace gauge::core
