// Crash + resume identity for the journaled pipeline: a run killed at any
// injection point — after a durable append, halfway through a frame, or one
// byte short of a complete frame — must, after resume at any thread count,
// produce a SnapshotDataset byte-identical to an uninterrupted run, with
// telemetry counters to match and without re-analysing replayed apps.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <map>
#include <string>

#include "core/journal.hpp"
#include "core/pipeline.hpp"
#include "telemetry/metrics.hpp"

namespace gauge::core {
namespace {

constexpr std::size_t kAppsPerCategory = 120;

std::string journal_path(const std::string& name) {
  const auto base =
      std::filesystem::temp_directory_path() / "gaugenn_test" / "resume";
  std::filesystem::create_directories(base);
  const auto path = base / name;
  std::filesystem::remove(path);
  return path.string();
}

PipelineOptions base_options(unsigned threads) {
  PipelineOptions options;
  options.categories = {"communication"};
  options.max_apps_per_category = kAppsPerCategory;
  options.threads = threads;
  return options;
}

const android::PlayStore& play() {
  static const android::PlayStore kPlay{android::StoreConfig{}};
  return kPlay;
}

// Pipeline counters that must match an uninterrupted run exactly. The
// resume.* counters are the resume mechanism's own bookkeeping and are
// asserted separately.
std::map<std::string, std::int64_t> pipeline_counters(
    const telemetry::MetricsRegistry& registry) {
  std::map<std::string, std::int64_t> out;
  for (const auto& [name, value] : registry.counters()) {
    if (name.starts_with("gauge.pipeline.") &&
        !name.starts_with("gauge.pipeline.resume.")) {
      out[name] = value;
    }
  }
  return out;
}

std::int64_t counter_value(const telemetry::MetricsRegistry& registry,
                           const std::string& name) {
  for (const auto& [counter, value] : registry.counters()) {
    if (counter == name) return value;
  }
  return 0;
}

std::size_t span_count(const telemetry::MetricsRegistry& registry,
                       const std::string& name) {
  std::size_t count = 0;
  for (const auto& span : registry.spans()) {
    if (span.name == name) ++count;
  }
  return count;
}

struct Baseline {
  std::uint64_t digest = 0;
  std::map<std::string, std::int64_t> counters;
};

const Baseline& baseline() {
  static const Baseline kBaseline = [] {
    telemetry::MetricsRegistry registry;
    telemetry::ScopedRegistry scope{registry};
    const auto data = run_pipeline(play(), base_options(/*threads=*/8));
    Baseline b;
    b.digest = dataset_digest(data);
    b.counters = pipeline_counters(registry);
    return b;
  }();
  return kBaseline;
}

// Runs the pipeline with `plan` armed at threads=0 (merge order == compute
// order, so journaled counter attribution is exact) and expects the injected
// crash. Returns the journal path.
std::string crashed_run(const std::string& name, const CrashPlan& plan) {
  const std::string path = journal_path(name);
  telemetry::MetricsRegistry registry;
  telemetry::ScopedRegistry scope{registry};
  auto options = base_options(/*threads=*/0);
  options.journal_path = path;
  options.crash_plan = plan;
  EXPECT_THROW(run_pipeline(play(), options), CrashInjected);
  return path;
}

class PipelineResume
    : public ::testing::TestWithParam<std::tuple<std::string, int, unsigned>> {
};

TEST_P(PipelineResume, CrashThenResumeIsByteIdentical) {
  const auto& [mode, record, resume_threads] = GetParam();
  CrashPlan plan;
  std::size_t expect_skipped = 0;
  bool expect_torn = false;
  if (mode == "die-after-app") {
    plan.die_after_app = record;
    expect_skipped = static_cast<std::size_t>(record);
  } else if (mode == "die-mid-journal-write") {
    plan.die_mid_journal_write = record;
    expect_skipped = static_cast<std::size_t>(record) - 1;
    expect_torn = true;
  } else {
    plan.torn_tail = record;
    expect_skipped = static_cast<std::size_t>(record) - 1;
    expect_torn = true;
  }
  const std::string path = crashed_run(
      mode + "_" + std::to_string(record) + "_t" +
          std::to_string(resume_threads) + ".jnl",
      plan);

  telemetry::MetricsRegistry registry;
  telemetry::ScopedRegistry scope{registry};
  auto options = base_options(resume_threads);
  options.journal_path = path;
  options.resume = true;
  const auto data = run_pipeline(play(), options);

  EXPECT_FALSE(data.interrupted);
  EXPECT_EQ(dataset_digest(data), baseline().digest);
  EXPECT_EQ(pipeline_counters(registry), baseline().counters);
  EXPECT_EQ(counter_value(registry, "gauge.pipeline.resume.skipped"),
            static_cast<std::int64_t>(expect_skipped));
  EXPECT_EQ(counter_value(registry, "gauge.pipeline.resume.torn_tail"),
            expect_torn ? 1 : 0);
  // Replayed apps are not re-processed: only the fresh tail gets app spans
  // (and with counter parity above, no replayed model was re-analysed).
  EXPECT_EQ(span_count(registry, "pipeline.app"),
            kAppsPerCategory - expect_skipped);
}

INSTANTIATE_TEST_SUITE_P(
    Injections, PipelineResume,
    ::testing::Combine(::testing::Values("die-after-app",
                                         "die-mid-journal-write", "torn-tail"),
                       ::testing::Values(1, 60, 119),
                       ::testing::Values(0u, 1u, 8u)),
    [](const auto& info) {
      auto name = std::get<0>(info.param) + "_" +
                  std::to_string(std::get<1>(info.param)) + "_threads" +
                  std::to_string(std::get<2>(info.param));
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(PipelineResumeExtra, ParallelCrashStillResumesByteIdentical) {
  // Crashing a parallel run journals whatever prefix was merged before the
  // injected crash; resume must still converge to the identical dataset.
  const std::string path = journal_path("parallel_crash.jnl");
  {
    telemetry::MetricsRegistry registry;
    telemetry::ScopedRegistry scope{registry};
    auto options = base_options(/*threads=*/8);
    options.journal_path = path;
    options.crash_plan.die_after_app = 60;
    EXPECT_THROW(run_pipeline(play(), options), CrashInjected);
  }
  telemetry::MetricsRegistry registry;
  telemetry::ScopedRegistry scope{registry};
  auto options = base_options(/*threads=*/8);
  options.journal_path = path;
  options.resume = true;
  const auto data = run_pipeline(play(), options);
  EXPECT_EQ(dataset_digest(data), baseline().digest);
  EXPECT_EQ(counter_value(registry, "gauge.pipeline.resume.skipped"), 60);
}

TEST(PipelineResumeExtra, CrashInSecondCategoryResumesAcrossBoundary) {
  PipelineOptions uninterrupted;
  uninterrupted.categories = {"communication", "photography"};
  uninterrupted.max_apps_per_category = 40;
  uninterrupted.threads = 4;
  const auto expected = dataset_digest(run_pipeline(play(), uninterrupted));

  const std::string path = journal_path("cross_category.jnl");
  {
    auto options = uninterrupted;
    options.threads = 0;
    options.journal_path = path;
    options.crash_plan.die_after_app = 55;  // 15 apps into photography
    EXPECT_THROW(run_pipeline(play(), options), CrashInjected);
  }
  telemetry::MetricsRegistry registry;
  telemetry::ScopedRegistry scope{registry};
  auto options = uninterrupted;
  options.journal_path = path;
  options.resume = true;
  const auto data = run_pipeline(play(), options);
  EXPECT_EQ(dataset_digest(data), expected);
  EXPECT_EQ(counter_value(registry, "gauge.pipeline.resume.skipped"), 55);
}

TEST(PipelineResumeExtra, ResumeAfterCompletionReplaysEverything) {
  const std::string path = journal_path("complete.jnl");
  {
    auto options = base_options(/*threads=*/4);
    options.journal_path = path;
    EXPECT_EQ(dataset_digest(run_pipeline(play(), options)),
              baseline().digest);
  }
  telemetry::MetricsRegistry registry;
  telemetry::ScopedRegistry scope{registry};
  auto options = base_options(/*threads=*/4);
  options.journal_path = path;
  options.resume = true;
  const auto data = run_pipeline(play(), options);
  EXPECT_EQ(dataset_digest(data), baseline().digest);
  EXPECT_EQ(pipeline_counters(registry), baseline().counters);
  // Nothing left to do: every app replays, none re-runs.
  EXPECT_EQ(span_count(registry, "pipeline.app"), 0u);
}

TEST(PipelineResumeExtra, JournalWithoutResumeStartsOver) {
  const std::string path = journal_path("start_over.jnl");
  {
    CrashPlan plan;
    plan.die_after_app = 30;
    auto options = base_options(/*threads=*/0);
    options.journal_path = path;
    options.crash_plan = plan;
    EXPECT_THROW(run_pipeline(play(), options), CrashInjected);
  }
  // resume=false truncates: the run recomputes everything and the journal
  // ends up holding the complete run.
  telemetry::MetricsRegistry registry;
  telemetry::ScopedRegistry scope{registry};
  auto options = base_options(/*threads=*/4);
  options.journal_path = path;
  const auto data = run_pipeline(play(), options);
  EXPECT_EQ(dataset_digest(data), baseline().digest);
  EXPECT_EQ(counter_value(registry, "gauge.pipeline.resume.skipped"), 0);
  auto recovered = Journal::replay(path);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered.value().outcomes.size(), kAppsPerCategory);
}

TEST(PipelineResumeExtra, ResumeWithDifferentOptionsThrows) {
  const std::string path = journal_path("meta_mismatch.jnl");
  {
    auto options = base_options(/*threads=*/0);
    options.journal_path = path;
    options.crash_plan.die_after_app = 5;
    EXPECT_THROW(run_pipeline(play(), options), CrashInjected);
  }
  auto options = base_options(/*threads=*/0);
  options.categories = {"photography"};  // not what the journal was built for
  options.journal_path = path;
  options.resume = true;
  EXPECT_THROW(run_pipeline(play(), options), std::runtime_error);
}

TEST(PipelineResumeExtra, CancelProducesResumableInterruptedDataset) {
  const std::string path = journal_path("cancel.jnl");
  {
    std::atomic<bool> cancel{true};  // cancel before the first app
    auto options = base_options(/*threads=*/4);
    options.journal_path = path;
    options.cancel = &cancel;
    const auto data = run_pipeline(play(), options);
    EXPECT_TRUE(data.interrupted);
    EXPECT_EQ(data.apps.size(), 0u);
  }
  std::atomic<bool> cancel{false};
  auto options = base_options(/*threads=*/4);
  options.journal_path = path;
  options.resume = true;
  options.cancel = &cancel;
  const auto data = run_pipeline(play(), options);
  EXPECT_FALSE(data.interrupted);
  EXPECT_EQ(dataset_digest(data), baseline().digest);
}

}  // namespace
}  // namespace gauge::core
