#include "core/pipeline.hpp"

#include <gtest/gtest.h>

#include <set>

#include "core/analysis.hpp"
#include "core/report.hpp"
#include "core/runtime.hpp"
#include "core/scenarios.hpp"
#include "core/taskclassify.hpp"
#include "telemetry/export.hpp"
#include "telemetry/metrics.hpp"

namespace gauge::core {
namespace {

const android::PlayStore& play() {
  static const android::PlayStore kPlay{android::StoreConfig{}};
  return kPlay;
}

// A slice of ML-heavy categories keeps per-test runtime low; the full-crawl
// integration checks live in FullSnapshot below.
const SnapshotDataset& slice21() {
  static const SnapshotDataset kDataset = [] {
    PipelineOptions options;
    options.categories = {"communication", "finance", "photography"};
    return run_pipeline(play(), options);
  }();
  return kDataset;
}

const SnapshotDataset& slice20() {
  static const SnapshotDataset kDataset = [] {
    PipelineOptions options;
    options.snapshot = android::Snapshot::Feb2020;
    options.categories = {"communication", "finance", "photography"};
    return run_pipeline(play(), options);
  }();
  return kDataset;
}

TEST(Pipeline, CrawlsChartCap) {
  EXPECT_EQ(slice21().apps_crawled(), 1500u);  // 3 categories x 500
}

TEST(Pipeline, ExtractsValidatedModels) {
  const auto& data = slice21();
  EXPECT_GT(data.total_models(), 100u);
  EXPECT_GT(data.ml_apps(), data.apps_with_models());
  for (const auto& model : data.models) {
    EXPECT_FALSE(model.checksum.empty());
    EXPECT_GT(model.trace().total_params, 0);
    EXPECT_FALSE(model.file_path.empty());
  }
}

TEST(Pipeline, CandidatesExceedValidated) {
  // Decoy .json/.bin files and obfuscated models inflate candidates.
  std::int64_t candidates = 0, validated = 0;
  for (const auto& app : slice21().apps) {
    candidates += app.candidate_files;
    validated += app.validated_models;
  }
  EXPECT_GT(candidates, validated);
  EXPECT_GT(validated, 0);
}

TEST(Pipeline, ObfuscatedModelsAreNotValidated) {
  // Apps flagged lazy/obfuscated in the generator yield candidates but no
  // validated models.
  const auto& data = slice21();
  bool found_hidden_ml_app = false;
  for (const auto& app : data.apps) {
    if (app.uses_ml && app.model_record_ids.empty()) {
      found_hidden_ml_app = true;
      break;
    }
  }
  EXPECT_TRUE(found_hidden_ml_app);
}

TEST(Pipeline, ModelDocsQueryable) {
  const auto& data = slice21();
  EXPECT_EQ(data.model_docs.size(), data.models.size());
  const auto tflite =
      data.model_docs.query().where("framework", "TFLite").count();
  EXPECT_GT(tflite, data.models.size() / 2);
  const auto rows = data.model_docs.query().group_by({"category"});
  EXPECT_EQ(rows.size(), 3u);
}

TEST(Pipeline, TaskCoverageHigh) {
  const auto& data = slice21();
  std::size_t identified = 0;
  for (const auto& model : data.models) {
    if (model.task != kUnidentified) ++identified;
  }
  const double coverage =
      static_cast<double>(identified) / static_cast<double>(data.models.size());
  // Paper: 91.9% of models identified. Heuristic voting should land near.
  EXPECT_GT(coverage, 0.8);
}

TEST(Pipeline, SideContainersSweptAndClean) {
  const auto& data = slice21();
  std::int64_t swept = 0, models = 0;
  for (const auto& app : data.apps) {
    swept += app.side_container_files;
    models += app.side_container_models;
  }
  EXPECT_GT(swept, 0);      // OBBs/asset packs were actually opened
  EXPECT_EQ(models, 0);     // and carried no models (§4.2)
}

TEST(Pipeline, DeterministicAcrossRuns) {
  PipelineOptions options;
  options.categories = {"dating"};
  const auto a = run_pipeline(play(), options);
  const auto b = run_pipeline(play(), options);
  ASSERT_EQ(a.models.size(), b.models.size());
  for (std::size_t i = 0; i < a.models.size(); ++i) {
    EXPECT_EQ(a.models[i].checksum, b.models[i].checksum);
  }
}

TEST(Pipeline, OldDeviceProfileSeesSameModels) {
  // §4.2: crawling with a 3-generation-older device profile yields the same
  // model set (no device-specific distribution).
  PipelineOptions s10, s7;
  s10.categories = s7.categories = {"beauty"};
  s7.device_profile = "SM-G935F";
  const auto a = run_pipeline(play(), s10);
  const auto b = run_pipeline(play(), s7);
  ASSERT_EQ(a.models.size(), b.models.size());
  std::multiset<std::string> ca, cb;
  for (const auto& model : a.models) ca.insert(model.checksum);
  for (const auto& model : b.models) cb.insert(model.checksum);
  EXPECT_EQ(ca, cb);
}

TEST(Pipeline, ZipLimitsClassifyBombDropsWithoutKillingApps) {
  // An aggressive inflation cap (4 KiB sits above every manifest/dex in the
  // store but below most model payloads) must drop the oversized entries as
  // `zip_bomb` — per-entry, not per-APK: the apps themselves still crawl.
  telemetry::MetricsRegistry registry;
  telemetry::ScopedRegistry scoped{registry};
  PipelineOptions options;
  options.categories = {"dating"};
  options.max_apps_per_category = 30;
  options.threads = 0;
  options.zip_limits.max_entry_bytes = 4096;
  const auto capped = run_pipeline(play(), options);

  options.zip_limits = {};
  const auto uncapped = run_pipeline(play(), options);

  EXPECT_GT(registry.counter("gauge.pipeline.drop.zip_bomb").value(), 0);
  EXPECT_LT(capped.models.size(), uncapped.models.size());
  EXPECT_EQ(capped.apps.size(), uncapped.apps.size());
  // Generic read failures are a different bucket and stay untouched here.
  EXPECT_EQ(registry.counter("gauge.pipeline.drop.entry_read_failed").value(),
            0);
}

TEST(Pipeline, TelemetryStageMetricsPopulated) {
  telemetry::MetricsRegistry registry;
  std::size_t model_count = 0;
  {
    telemetry::ScopedRegistry scoped{registry};
    PipelineOptions options;
    options.categories = {"dating"};
    options.threads = 0;  // serial: span parentage is checked below
    const auto data = run_pipeline(play(), options);
    model_count = data.models.size();

    // The validated-model counter is the dataset's model count, exactly.
    EXPECT_EQ(registry.counter("gauge.pipeline.models_validated").value(),
              static_cast<std::int64_t>(model_count));
    EXPECT_EQ(registry.counter("gauge.pipeline.apps_crawled").value(), 500);
    EXPECT_EQ(registry.counter("gauge.pipeline.categories").value(), 1);
    // Every validated model either hit the analysis cache or was parsed
    // fresh; parse failures explain the difference.
    const auto hits = registry.counter("gauge.pipeline.cache_hits").value();
    const auto misses =
        registry.counter("gauge.pipeline.cache_misses").value();
    const auto parse_failed =
        registry.counter("gauge.pipeline.drop.parse_failed").value();
    EXPECT_GT(hits, 0);  // off-the-shelf models repeat across apps
    EXPECT_EQ(hits + misses - parse_failed,
              static_cast<std::int64_t>(model_count));
    // Obfuscated decoys are dropped with a recorded reason, not silently.
    EXPECT_GT(registry.counter("gauge.pipeline.drop.bad_signature").value(),
              0);
  }

  // Every pipeline stage produced at least one span, and stage spans nest
  // under the category span which nests under the run root.
  const auto spans = registry.spans();
  for (const char* stage :
       {"pipeline.run", "pipeline.category", "pipeline.app",
        "pipeline.download", "pipeline.apk_open", "pipeline.detect",
        "pipeline.extract", "pipeline.validate", "pipeline.parse",
        "pipeline.analyse"}) {
    bool found = false;
    for (const auto& span : spans) {
      if (span.name == stage) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "no span for stage " << stage;
  }
  std::uint64_t run_id = 0, category_id = 0;
  std::set<std::uint64_t> app_ids;
  for (const auto& span : spans) {
    if (span.name == "pipeline.run") run_id = span.id;
    if (span.name == "pipeline.category") category_id = span.id;
    if (span.name == "pipeline.app") app_ids.insert(span.id);
  }
  for (const auto& span : spans) {
    if (span.name == "pipeline.category") {
      EXPECT_EQ(span.parent_id, run_id);
    }
    if (span.name == "pipeline.app") {
      EXPECT_EQ(span.parent_id, category_id);
    }
    if (span.name == "pipeline.download") {
      EXPECT_EQ(app_ids.count(span.parent_id), 1u);
    }
  }

  // The DocStore bridge makes the run queryable like any other dataset.
  store::DocStore docs;
  telemetry::export_to_docstore(registry, docs);
  const auto ids =
      docs.query().where("metric", "gauge.pipeline.models_validated").ids();
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(docs.doc(ids[0]).at("value").as_int(),
            static_cast<std::int64_t>(model_count));
}

// ------------------------------------------------------------- analyses

TEST(Analysis, UniquenessOnSlice) {
  const auto report = analyze_uniqueness(slice21());
  EXPECT_GT(report.total_models, report.unique_models);
  EXPECT_GT(report.unique_fraction, 0.05);
  EXPECT_LT(report.unique_fraction, 0.7);
  EXPECT_GT(report.shared_across_apps_fraction, 0.4);
}

TEST(Analysis, OptimisationCensusOnSlice) {
  const auto report = analyze_optimisations(slice21());
  EXPECT_EQ(report.clustering_models, 0u);  // paper found none
  EXPECT_EQ(report.pruning_models, 0u);
  EXPECT_GT(report.int8_weight_fraction, 0.05);
  EXPECT_LT(report.int8_weight_fraction, 0.45);
  EXPECT_GT(report.dequantize_fraction, 0.0);
  EXPECT_LE(report.dequantize_fraction, report.int8_weight_fraction);
  EXPECT_GT(report.near_zero_weight_share, 0.003);
  EXPECT_LT(report.near_zero_weight_share, 0.12);
}

TEST(Analysis, TemporalDiffDirections) {
  const auto rows = temporal_diff(slice20(), slice21());
  ASSERT_FALSE(rows.empty());
  // Communication gained the most models between snapshots (Fig. 5).
  EXPECT_EQ(rows.front().category, "communication");
  EXPECT_GT(rows.front().delta(), 0);
  std::int64_t added = 0, removed = 0;
  for (const auto& row : rows) {
    added += row.added;
    removed += row.removed;
  }
  EXPECT_GT(added, removed);  // the ecosystem roughly doubled
}

TEST(Analysis, TemporalSelfDiffIsEmpty) {
  const auto rows = temporal_diff(slice21(), slice21());
  for (const auto& row : rows) {
    EXPECT_EQ(row.added, 0);
    EXPECT_EQ(row.removed, 0);
  }
}

// -------------------------------------------------------------- runtime

TEST(Runtime, SweepProducesRowsPerDeviceAndModel) {
  const auto devices = device::phones();
  const auto rows = sweep_devices(slice21(), devices);
  const auto models = distinct_models(slice21());
  EXPECT_EQ(rows.size(), models.size() * devices.size());
  for (const auto& row : rows) {
    EXPECT_GT(row.latency_ms, 0.0);
    EXPECT_GT(row.energy_mj, 0.0);
    EXPECT_GT(row.power_w, 0.0);
  }
}

TEST(Runtime, ConfigSweepLabelsRows) {
  std::vector<device::RunConfig> configs(2);
  configs[0].threads = {2, 0};
  configs[1].threads = {4, 2};
  const auto rows =
      sweep_configs(slice21(), device::make_device("S21"), configs);
  ASSERT_FALSE(rows.empty());
  EXPECT_EQ(rows.front().thread_label, "2");
  EXPECT_EQ(rows.back().thread_label, "4a2");
}

// ------------------------------------------------------------- scenarios

TEST(Scenarios, Table4Shape) {
  const auto reports = run_scenarios(slice21(), device::boards());
  ASSERT_EQ(reports.size(), 3u);
  for (const auto& report : reports) {
    // Slice has few audio models; segmentation must dominate where present.
    if (report.segmentation.models > 0 && report.typing.models > 0) {
      EXPECT_GT(report.segmentation.avg_mah, report.typing.avg_mah * 50);
    }
    if (report.typing.models > 0) {
      EXPECT_LT(report.typing.avg_mah, 1.0);  // typing is nearly free
    }
  }
}

TEST(Scenarios, BatteryShareHelper) {
  EXPECT_DOUBLE_EQ(battery_share(1000.0, 4000.0), 0.25);
  EXPECT_DOUBLE_EQ(battery_share(10.0, 0.0), 0.0);
}

// --------------------------------------------------------------- reports

TEST(Report, Table2Renders) {
  const auto table = table2_dataset(slice21());
  const std::string out = table.render();
  EXPECT_NE(out.find("Apps crawled"), std::string::npos);
  EXPECT_NE(out.find("1500"), std::string::npos);
}

TEST(Report, Fig4ExcludesSmallCategories) {
  const auto table = fig4_frameworks(slice21(), /*min_models=*/1000000);
  EXPECT_EQ(table.rows(), 0u);
  const auto all = fig4_frameworks(slice21(), 1);
  EXPECT_GT(all.rows(), 0u);
}

TEST(Report, Table3GroupsByModality) {
  const auto table = table3_tasks(slice21());
  const std::string out = table.render();
  EXPECT_NE(out.find("image"), std::string::npos);
  EXPECT_NE(out.find("object detection"), std::string::npos);
}

TEST(Report, Fig6SharesSumToOnePerModality) {
  const auto table = fig6_layer_composition(slice21());
  EXPECT_GT(table.rows(), 0u);
}

TEST(Report, Fig15TotalsRow) {
  const auto table = fig15_cloud(slice21(), 1);
  const std::string csv = table.to_csv();
  EXPECT_NE(csv.find("(total)"), std::string::npos);
}

}  // namespace
}  // namespace gauge::core
