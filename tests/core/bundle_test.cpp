#include "core/bundle.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>

#include "core/pipeline.hpp"
#include "util/fileio.hpp"

namespace gauge::core {
namespace {

std::string temp_dir(const std::string& name) {
  const auto base = std::filesystem::temp_directory_path() / "gaugenn_test";
  return (base / name).string();
}

TEST(FileIo, WriteReadRoundtrip) {
  const std::string dir = temp_dir("fileio");
  ASSERT_TRUE(util::make_directories(dir).ok());
  const std::string path = dir + "/x.txt";
  ASSERT_TRUE(util::write_file(path, std::string_view{"hello\nworld"}).ok());
  const auto back = util::read_text_file(path);
  ASSERT_TRUE(back.ok()) << back.error();
  EXPECT_EQ(back.value(), "hello\nworld");
}

TEST(FileIo, ReadMissingFileFails) {
  EXPECT_FALSE(util::read_text_file(temp_dir("nope") + "/missing").ok());
}

TEST(FileIo, MakeDirectoriesIsIdempotent) {
  const std::string dir = temp_dir("a/b/c");
  EXPECT_TRUE(util::make_directories(dir).ok());
  EXPECT_TRUE(util::make_directories(dir).ok());
}

TEST(Bundle, WritesAllArtifacts) {
  const android::PlayStore play{android::StoreConfig{}};
  PipelineOptions options;
  options.categories = {"dating"};
  const auto data = run_pipeline(play, options);

  const std::string dir = temp_dir("bundle");
  const auto written = write_report_bundle(data, dir);
  ASSERT_TRUE(written.ok()) << written.error();
  EXPECT_EQ(written.value(), 11);

  for (const char* name :
       {"index.md", "apps.csv", "models.csv", "apps.jsonl", "models.jsonl",
        "frameworks.csv", "tasks.csv", "layer_families.csv", "uniqueness.csv",
        "optimisations.csv", "cloud.csv"}) {
    const auto contents = util::read_text_file(dir + "/" + name);
    ASSERT_TRUE(contents.ok()) << name;
    EXPECT_FALSE(contents.value().empty()) << name;
  }

  // apps.csv has a header plus one row per crawled app.
  const auto apps = util::read_text_file(dir + "/apps.csv");
  ASSERT_TRUE(apps.ok());
  const auto lines = std::count(apps.value().begin(), apps.value().end(), '\n');
  EXPECT_EQ(static_cast<std::size_t>(lines), data.apps_crawled() + 1);

  // index.md carries the headline counts.
  const auto index = util::read_text_file(dir + "/index.md");
  ASSERT_TRUE(index.ok());
  EXPECT_NE(index.value().find("apps crawled: 500"), std::string::npos);

  // JSONL export: one JSON object per model document.
  const auto jsonl = util::read_text_file(dir + "/models.jsonl");
  ASSERT_TRUE(jsonl.ok());
  const auto json_lines =
      std::count(jsonl.value().begin(), jsonl.value().end(), '\n');
  EXPECT_EQ(static_cast<std::size_t>(json_lines), data.models.size());
  EXPECT_EQ(jsonl.value().front(), '{');
  EXPECT_NE(jsonl.value().find("\"framework\": \"TFLite\""), std::string::npos);
}

TEST(Bundle, FailsOnUnwritableDirectory) {
  SnapshotDataset empty;
  EXPECT_FALSE(write_report_bundle(empty, "/proc/definitely/not/writable").ok());
}

}  // namespace
}  // namespace gauge::core
