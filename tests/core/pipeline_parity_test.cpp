// Two guarantees of the plugin refactor. First, the registry-driven
// pipeline is *byte-identical* to the pre-refactor switch-based one: the
// digest below was pinned on the old code over the same store slice, and
// covers both DocStore JSONL mirrors (ids, insertion order, every field) at
// serial and parallel thread counts. Second, the extended store actually
// exercises the new surface end-to-end: ONNX and MNN models flow through
// crawl -> extract -> validate -> parse -> report, their runtimes are
// detected from APK markers, and the sklearn decoy lands in the no-parser
// drop accounting instead of vanishing.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>

#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "telemetry/metrics.hpp"

namespace gauge::core {
namespace {

// Digest comes from core::dataset_digest — the same function the resume
// tests and `gaugenn_cli --digest` use, pinned here against the
// pre-refactor pipeline's output.

TEST(PipelineParity, ByteIdenticalToPreRefactorPipeline) {
  // Re-pinned for the DocStore rebuild: doubles now serialise in round-trip
  // form (store::format_double) instead of 6-digit %g, and app documents
  // carry the side_files/side_models fields, so the JSONL mirrors — and
  // hence the digest — changed representation without changing content.
  constexpr std::uint64_t kPinnedDigest = 0x1ca1d61aa4e96b2fULL;
  const android::PlayStore play{android::StoreConfig{}};
  for (unsigned threads : {0u, 1u, 8u}) {
    SCOPED_TRACE(threads);
    PipelineOptions options;
    options.categories = {"communication", "photography"};
    options.threads = threads;
    const auto data = run_pipeline(play, options);
    EXPECT_EQ(data.apps.size(), 1000u);
    EXPECT_EQ(data.models.size(), 417u);
    EXPECT_EQ(dataset_digest(data), kPinnedDigest);
    // Every seed-corpus candidate extension has a plugin-backed candidate,
    // so the no-parser path never fires in paper mode.
    EXPECT_TRUE(data.no_parser_drops.empty());
  }
}

TEST(PipelineParity, ExtendedStoreShipsOnnxAndMnnEndToEnd) {
  android::StoreConfig config;
  config.extended_frameworks = true;
  const android::PlayStore play{config};

  // Ground truth: the extended calibration appends exactly 30 ONNX and 24
  // MNN instances to the Apr'21 deck.
  std::size_t onnx_instances = 0;
  std::size_t mnn_instances = 0;
  std::set<std::string> categories;  // categories holding the new models
  for (const auto& app : play.apps()) {
    for (int inst_id : app.model_instances) {
      const auto& inst = play.instances()[static_cast<std::size_t>(inst_id)];
      if (!inst.present_2021) continue;
      const auto fw =
          play.unique_models()[static_cast<std::size_t>(inst.unique_id)]
              .framework;
      if (fw != formats::Framework::Onnx && fw != formats::Framework::Mnn) {
        continue;
      }
      (fw == formats::Framework::Onnx ? onnx_instances : mnn_instances)++;
      categories.insert(app.category);
    }
  }
  EXPECT_EQ(onnx_instances, 30u);
  EXPECT_EQ(mnn_instances, 24u);
  ASSERT_FALSE(categories.empty());

  telemetry::MetricsRegistry registry;
  telemetry::ScopedRegistry scoped{registry};
  PipelineOptions options;
  options.categories = {categories.begin(), categories.end()};
  options.threads = 4;
  const auto data = run_pipeline(play, options);

  std::size_t onnx_models = 0;
  std::size_t mnn_models = 0;
  for (const auto& model : data.models) {
    if (model.framework == formats::Framework::Onnx) ++onnx_models;
    if (model.framework == formats::Framework::Mnn) ++mnn_models;
  }
  EXPECT_GT(onnx_models, 0u);
  EXPECT_GT(mnn_models, 0u);

  // The new runtimes are detected from the planted APK markers.
  bool onnx_stack = false;
  bool mnn_stack = false;
  for (const auto& app : data.apps) {
    for (const auto& stack : app.ml_stacks) {
      if (stack == "ONNX Runtime") onnx_stack = true;
      if (stack == "MNN") mnn_stack = true;
    }
  }
  EXPECT_TRUE(onnx_stack);
  EXPECT_TRUE(mnn_stack);

  // The .joblib decoy is a candidate no plugin can parse: it must surface
  // in the per-framework drop accounting, not disappear silently.
  ASSERT_EQ(data.no_parser_drops.count("Sklearn"), 1u);
  EXPECT_GT(data.no_parser_drops.at("Sklearn"), 0u);
  EXPECT_GT(registry.counter("gauge.pipeline.drop.no_parser").value(), 0);
  EXPECT_EQ(
      registry.counter("gauge.pipeline.drop.no_parser.Sklearn").value(),
      static_cast<std::int64_t>(data.no_parser_drops.at("Sklearn")));

  // The Fig. 4 report grows the new columns from the registry.
  const std::string totals = fig4_framework_totals(data).render();
  EXPECT_NE(totals.find("ONNX"), std::string::npos);
  EXPECT_NE(totals.find("MNN"), std::string::npos);
  EXPECT_NE(sec31_no_parser(data).render().find("Sklearn"),
            std::string::npos);
}

}  // namespace
}  // namespace gauge::core
