// Concurrency guarantees of the parallel pipeline: a thread count of 0, 1 or
// N must produce byte-identical datasets, and the once-only analysis cache
// must collapse duplicate work even under a deliberate stampede. These tests
// are the ones scripts/check.sh re-runs under ThreadSanitizer.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <latch>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/analysis_cache.hpp"
#include "core/pipeline.hpp"
#include "telemetry/metrics.hpp"

namespace gauge::core {
namespace {

const android::PlayStore& play() {
  static const android::PlayStore kPlay{android::StoreConfig{}};
  return kPlay;
}

SnapshotDataset crawl(unsigned threads) {
  PipelineOptions options;
  options.categories = {"communication", "finance", "photography"};
  options.threads = threads;
  return run_pipeline(play(), options);
}

void expect_identical(const SnapshotDataset& a, const SnapshotDataset& b) {
  ASSERT_EQ(a.apps.size(), b.apps.size());
  ASSERT_EQ(a.models.size(), b.models.size());
  for (std::size_t i = 0; i < a.apps.size(); ++i) {
    EXPECT_EQ(a.apps[i].package, b.apps[i].package);
    EXPECT_EQ(a.apps[i].model_record_ids, b.apps[i].model_record_ids);
  }
  for (std::size_t i = 0; i < a.models.size(); ++i) {
    EXPECT_EQ(a.models[i].record_id, b.models[i].record_id);
    EXPECT_EQ(a.models[i].checksum, b.models[i].checksum);
    EXPECT_EQ(a.models[i].file_path, b.models[i].file_path);
    EXPECT_EQ(a.models[i].app_package, b.models[i].app_package);
    EXPECT_EQ(a.models[i].file_bytes, b.models[i].file_bytes);
  }
  // The DocStore mirrors must match document-for-document, which pins ids,
  // insertion order and every serialised field.
  EXPECT_EQ(a.app_docs.size(), b.app_docs.size());
  EXPECT_EQ(a.model_docs.size(), b.model_docs.size());
  EXPECT_EQ(a.app_docs.query().to_jsonl(), b.app_docs.query().to_jsonl());
  EXPECT_EQ(a.model_docs.query().to_jsonl(), b.model_docs.query().to_jsonl());
}

TEST(PipelineConcurrency, DatasetIdenticalAcrossThreadCounts) {
  const auto serial = crawl(0);
  const auto one = crawl(1);
  const auto eight = crawl(8);
  expect_identical(serial, one);
  expect_identical(serial, eight);
}

TEST(PipelineConcurrency, ThreadsBeyondChartSize) {
  // More workers than apps: the in-flight window must drain cleanly.
  PipelineOptions narrow, wide;
  narrow.categories = wide.categories = {"dating"};
  narrow.max_apps_per_category = wide.max_apps_per_category = 6;
  narrow.threads = 0;
  wide.threads = 16;
  expect_identical(run_pipeline(play(), narrow), run_pipeline(play(), wide));
}

TEST(PipelineConcurrency, CounterParityAcrossThreadCounts) {
  // The cache/drop accounting must be schedule-independent: parallel runs
  // record exactly the serial counts.
  const char* names[] = {
      "gauge.pipeline.apps_crawled",         "gauge.pipeline.models_validated",
      "gauge.pipeline.cache_hits",           "gauge.pipeline.cache_misses",
      "gauge.pipeline.drop.bad_signature",   "gauge.pipeline.drop.parse_failed",
      "gauge.pipeline.drop.weights_companion"};
  std::map<std::string, std::int64_t> serial, parallel;
  std::size_t serial_models = 0, parallel_models = 0;
  {
    telemetry::MetricsRegistry registry;
    telemetry::ScopedRegistry scoped{registry};
    serial_models = crawl(0).models.size();
    for (const char* name : names) serial[name] = registry.counter(name).value();
  }
  {
    telemetry::MetricsRegistry registry;
    telemetry::ScopedRegistry scoped{registry};
    parallel_models = crawl(8).models.size();
    for (const char* name : names) {
      parallel[name] = registry.counter(name).value();
    }
  }
  EXPECT_EQ(serial_models, parallel_models);
  EXPECT_EQ(serial, parallel);
  // Every validated model either adopted a cached analysis or was analysed
  // fresh; parse failures explain the difference (identity invariant).
  EXPECT_EQ(parallel["gauge.pipeline.cache_hits"] +
                parallel["gauge.pipeline.cache_misses"] -
                parallel["gauge.pipeline.drop.parse_failed"],
            static_cast<std::int64_t>(parallel_models));
  EXPECT_GT(parallel["gauge.pipeline.cache_hits"], 0);
}

TEST(AnalysisCache, StampedeComputesOnce) {
  // N workers race on one key (a model shipped by N apps crawled at once):
  // exactly one computes, the rest block and adopt the owner's prototype.
  telemetry::MetricsRegistry registry;
  telemetry::ScopedRegistry scoped{registry};
  AnalysisCache cache;
  constexpr int kThreads = 8;
  std::atomic<int> computed{0};
  std::latch start{kThreads};
  std::vector<AnalysisCache::Proto> results(kThreads);
  {
    std::vector<std::jthread> workers;
    for (int i = 0; i < kThreads; ++i) {
      workers.emplace_back([&, i] {
        start.arrive_and_wait();  // maximise contention on the key
        results[i] = cache.find_or_compute(0xfeedbeef, [&] {
          computed.fetch_add(1);
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
          auto record = std::make_shared<ModelRecord>();
          record->checksum = "stampede";
          return record;
        });
      });
    }
  }
  EXPECT_EQ(computed.load(), 1);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(registry.counter("gauge.pipeline.cache_misses").value(), 1);
  EXPECT_EQ(registry.counter("gauge.pipeline.cache_hits").value(),
            kThreads - 1);
  for (const auto& result : results) {
    ASSERT_NE(result, nullptr);
    EXPECT_EQ(result->checksum, "stampede");
    EXPECT_EQ(result.get(), results[0].get());  // shared, not cloned
  }
}

TEST(AnalysisCache, FailuresAreNotCached) {
  // A failed analysis must not poison the key: every caller re-attempts and
  // records its own miss, exactly like a serial pipeline would.
  telemetry::MetricsRegistry registry;
  telemetry::ScopedRegistry scoped{registry};
  AnalysisCache cache;
  int attempts = 0;
  for (int i = 0; i < 3; ++i) {
    const auto result = cache.find_or_compute(42, [&]() -> AnalysisCache::Proto {
      ++attempts;
      return nullptr;
    });
    EXPECT_EQ(result, nullptr);
  }
  EXPECT_EQ(attempts, 3);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(registry.counter("gauge.pipeline.cache_misses").value(), 3);
  EXPECT_EQ(registry.counter("gauge.pipeline.cache_hits").value(), 0);

  // ... and a later success for the same key caches normally.
  const auto result = cache.find_or_compute(42, [] {
    auto record = std::make_shared<ModelRecord>();
    record->checksum = "recovered";
    return record;
  });
  ASSERT_NE(result, nullptr);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(AnalysisCache, DistinctKeysComputeIndependently) {
  AnalysisCache cache;
  std::atomic<int> computed{0};
  std::vector<std::jthread> workers;
  for (int i = 0; i < 16; ++i) {
    workers.emplace_back([&, i] {
      cache.find_or_compute(static_cast<std::uint64_t>(i), [&] {
        computed.fetch_add(1);
        return std::make_shared<ModelRecord>();
      });
    });
  }
  workers.clear();  // join
  EXPECT_EQ(computed.load(), 16);
  EXPECT_EQ(cache.size(), 16u);
}

}  // namespace
}  // namespace gauge::core
