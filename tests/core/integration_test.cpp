// Full-snapshot integration: the entire Apr'21 crawl (16,653 apps) through
// the pipeline, asserting the paper's Table 2 exactly plus the headline
// shares of §4.3–§6.1. This is the end-to-end guarantee behind every bench.
#include <gtest/gtest.h>

#include <map>

#include "core/analysis.hpp"
#include "core/pipeline.hpp"
#include "core/taskclassify.hpp"

namespace gauge::core {
namespace {

const SnapshotDataset& full21() {
  static const SnapshotDataset kDataset = [] {
    const android::PlayStore play{android::StoreConfig{}};
    return run_pipeline(play, {});
  }();
  return kDataset;
}

TEST(FullSnapshot, Table2Exact) {
  const auto& data = full21();
  EXPECT_EQ(data.apps_crawled(), 16653u);
  EXPECT_EQ(data.ml_apps(), 377u);
  EXPECT_EQ(data.apps_with_models(), 342u);
  EXPECT_EQ(data.total_models(), 1666u);
  EXPECT_EQ(data.unique_model_count(), 318u);
}

TEST(FullSnapshot, Fig4FrameworkCountsExact) {
  std::map<std::string, int> counts;
  for (const auto& model : full21().models) {
    counts[formats::framework_name(model.framework)]++;
  }
  EXPECT_EQ(counts["TFLite"], 1436);
  EXPECT_EQ(counts["caffe"], 176);
  EXPECT_EQ(counts["ncnn"], 46);
  EXPECT_EQ(counts["TF"], 5);
  EXPECT_EQ(counts["SNPE"], 3);
}

TEST(FullSnapshot, TaskCoverageMatchesPaper) {
  std::size_t identified = 0;
  for (const auto& model : full21().models) {
    if (model.task != kUnidentified) ++identified;
  }
  const double coverage =
      static_cast<double>(identified) / static_cast<double>(full21().models.size());
  EXPECT_NEAR(coverage, 0.919, 0.04);  // paper: 91.9%
}

TEST(FullSnapshot, VisionDominates) {
  std::map<std::string, int> tasks;
  int vision = 0;
  for (const auto& model : full21().models) {
    if (model.modality == nn::Modality::Image) ++vision;
    if (model.task != kUnidentified) tasks[model.task]++;
  }
  EXPECT_GT(static_cast<double>(vision) / 1666.0, 0.89);
  // Object detection is the top task by a wide margin.
  int best = 0;
  std::string best_task;
  for (const auto& [task, count] : tasks) {
    if (count > best) {
      best = count;
      best_task = task;
    }
  }
  EXPECT_EQ(best_task, "object detection");
  EXPECT_GT(static_cast<double>(best) / static_cast<double>(vision), 0.45);
}

TEST(FullSnapshot, UniquenessMatchesPaper) {
  const auto report = analyze_uniqueness(full21());
  EXPECT_NEAR(report.unique_fraction, 0.191, 0.005);
  EXPECT_NEAR(report.shared_across_apps_fraction, 0.809, 0.005);
  EXPECT_NEAR(report.finetuned_fraction, 0.0902, 0.02);
  EXPECT_NEAR(report.small_delta_fraction, 0.042, 0.015);
}

TEST(FullSnapshot, OptimisationCensusMatchesPaper) {
  const auto report = analyze_optimisations(full21());
  EXPECT_EQ(report.clustering_models, 0u);
  EXPECT_EQ(report.pruning_models, 0u);
  EXPECT_NEAR(report.dequantize_fraction, 0.103, 0.02);
  EXPECT_NEAR(report.int8_weight_fraction, 0.2027, 0.02);
  EXPECT_NEAR(report.int8_act_fraction, 0.1031, 0.02);
  EXPECT_NEAR(report.near_zero_weight_share, 0.0315, 0.02);
}

TEST(FullSnapshot, CloudApiCountsExact) {
  int cloud = 0, google = 0, amazon = 0;
  for (const auto& app : full21().apps) {
    if (app.cloud_providers.empty()) continue;
    ++cloud;
    if (app.cloud_providers.front() == "Amazon AWS") ++amazon;
    else ++google;
  }
  EXPECT_EQ(cloud, 524);
  EXPECT_EQ(google, 452);
  EXPECT_EQ(amazon, 72);
}

TEST(FullSnapshot, AcceleratorTraceCounts) {
  int nnapi = 0, xnnpack = 0, snpe = 0;
  for (const auto& app : full21().apps) {
    for (const auto& stack : app.ml_stacks) {
      if (stack == "NNAPI") ++nnapi;
      if (stack == "XNNPACK") ++xnnpack;
      if (stack == "SNPE") ++snpe;
    }
  }
  EXPECT_EQ(nnapi, 71);   // §6.3: 71 apps using NNAPI
  EXPECT_EQ(xnnpack, 1);  // a single app using XNNPACK
  EXPECT_GE(snpe, 3);     // three SNPE apps (dlc models)
}

TEST(FullSnapshot, NoModelsInSideContainers) {
  std::int64_t side_models = 0, side_files = 0;
  for (const auto& app : full21().apps) {
    side_models += app.side_container_models;
    side_files += app.side_container_files;
  }
  EXPECT_GT(side_files, 500);
  EXPECT_EQ(side_models, 0);
}

TEST(FullSnapshot, EveryModelRecordIsComplete) {
  for (const auto& model : full21().models) {
    EXPECT_FALSE(model.checksum.empty());
    EXPECT_FALSE(model.architecture_checksum.empty());
    EXPECT_FALSE(model.layer_digests().empty());
    EXPECT_GT(model.trace().total_params, 0);
    EXPECT_GT(model.trace().total_flops, 0);
    EXPECT_GT(model.file_bytes, 0u);
    EXPECT_NE(model.modality, nn::Modality::Unknown);
  }
}

}  // namespace
}  // namespace gauge::core
