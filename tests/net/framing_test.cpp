// The shared frame codec: byte-level encode/decode invariants and the
// socket helpers' behaviour against slow, hostile and dying peers. This is
// the one framing under the journal, the crawl cluster protocol and the
// inference payload path, so the edge cases live here once.
#include "net/framing.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>

#include "net/socket.hpp"

namespace gauge::net {
namespace {

using namespace std::chrono_literals;

constexpr auto kDeadline = 2000ms;

util::Bytes bytes_of(const std::string& text) {
  return util::Bytes{text.begin(), text.end()};
}

// A connected loopback socket pair via the real listener/connector.
struct Loopback {
  TcpListener listener;
  TcpStream client;
  TcpStream server;

  static Loopback make() {
    auto listener = TcpListener::bind(0);
    EXPECT_TRUE(listener.ok()) << listener.error();
    auto client = TcpStream::connect("127.0.0.1", listener.value().port());
    EXPECT_TRUE(client.ok()) << client.error();
    auto server = listener.value().accept_for(kDeadline);
    EXPECT_TRUE(server.ok()) << server.error();
    return Loopback{std::move(listener.value()), std::move(client.value()),
                    std::move(server.value())};
  }
};

TEST(NetFraming, EncodeDecodeRoundtrip) {
  const auto payload = bytes_of("the wire unit of the whole system");
  const auto frame = encode_frame(payload);
  EXPECT_EQ(frame.size(), payload.size() + kFrameOverheadBytes);

  FrameView view;
  ASSERT_EQ(decode_frame(frame, &view), FrameDecode::Ok);
  EXPECT_EQ(view.version, kFrameVersion);
  EXPECT_EQ(view.frame_bytes, frame.size());
  EXPECT_EQ(util::Bytes(view.payload.begin(), view.payload.end()), payload);
}

TEST(NetFraming, EmptyPayloadIsAValidFrame) {
  const auto frame = encode_frame(util::Bytes{});
  FrameView view;
  ASSERT_EQ(decode_frame(frame, &view), FrameDecode::Ok);
  EXPECT_TRUE(view.payload.empty());
}

TEST(NetFraming, DecodeReportsIncompleteForEveryTruncation) {
  const auto frame = encode_frame(bytes_of("truncate me"));
  for (std::size_t keep = 0; keep < frame.size(); ++keep) {
    const std::span<const std::uint8_t> prefix{frame.data(), keep};
    FrameView view;
    EXPECT_EQ(decode_frame(prefix, &view), FrameDecode::Incomplete)
        << "prefix of " << keep << " bytes";
  }
}

TEST(NetFraming, DecodeRejectsBadMagicAndCorruptCrc) {
  auto frame = encode_frame(bytes_of("payload"));
  FrameView view;

  auto bad_magic = frame;
  bad_magic[0] ^= 0xFF;
  EXPECT_EQ(decode_frame(bad_magic, &view), FrameDecode::BadMagic);

  auto corrupt = frame;
  corrupt[kFrameHeaderBytes] ^= 0x01;  // first payload byte
  EXPECT_EQ(decode_frame(corrupt, &view), FrameDecode::Corrupt);

  auto bad_crc = frame;
  bad_crc[bad_crc.size() - 1] ^= 0x01;
  EXPECT_EQ(decode_frame(bad_crc, &view), FrameDecode::Corrupt);
}

TEST(NetFraming, DecodeFlagsVersionSkewAndNamesTheVersion) {
  const auto frame =
      encode_frame_with_version(kFrameVersion + 1, bytes_of("future"));
  FrameView view;
  EXPECT_EQ(decode_frame(frame, &view), FrameDecode::VersionSkew);
  EXPECT_EQ(view.version, kFrameVersion + 1);
}

TEST(NetFraming, SendRecvRoundtripOverLoopback) {
  auto pair = Loopback::make();
  const auto payload = bytes_of("hello over tcp");
  ASSERT_TRUE(send_frame(pair.client, payload, kDeadline).ok());
  const auto got = recv_frame_for(pair.server, 1 << 20, kDeadline);
  ASSERT_TRUE(got.ok()) << got.error();
  EXPECT_EQ(got.value(), payload);
}

TEST(NetFraming, RecvReassemblesAPartiallyDeliveredFrame) {
  // The sender dribbles the frame in three chunks with pauses; the
  // deadline-bounded receiver must reassemble it (poll loop, not one recv).
  auto pair = Loopback::make();
  const auto payload = bytes_of(std::string(1024, 'x') + "tail");
  const auto frame = encode_frame(payload);
  std::thread dribble{[&] {
    const std::string raw{reinterpret_cast<const char*>(frame.data()),
                          frame.size()};
    ASSERT_TRUE(pair.client.send_raw_for(raw.substr(0, 5), kDeadline).ok());
    std::this_thread::sleep_for(20ms);
    ASSERT_TRUE(pair.client.send_raw_for(raw.substr(5, 600), kDeadline).ok());
    std::this_thread::sleep_for(20ms);
    ASSERT_TRUE(pair.client.send_raw_for(raw.substr(605), kDeadline).ok());
  }};
  const auto got = recv_frame_for(pair.server, 1 << 20, kDeadline);
  dribble.join();
  ASSERT_TRUE(got.ok()) << got.error();
  EXPECT_EQ(got.value(), payload);
}

TEST(NetFraming, RecvRejectsOversizeFrameBeforeReadingTheBody) {
  // A hostile length prefix larger than the cap is refused from the header
  // alone — no allocation, no draining of a body that may never come.
  auto pair = Loopback::make();
  const auto payload = bytes_of(std::string(2048, 'z'));
  ASSERT_TRUE(send_frame(pair.client, payload, kDeadline).ok());
  const auto got = recv_frame_for(pair.server, /*max_payload=*/1024, kDeadline);
  ASSERT_FALSE(got.ok());
  EXPECT_NE(got.error().find("oversize frame"), std::string::npos)
      << got.error();
}

TEST(NetFraming, RecvFailsCleanlyWhenPeerClosesMidFrame) {
  auto pair = Loopback::make();
  const auto frame = encode_frame(bytes_of("doomed"));
  {
    // Send the header plus two payload bytes, then close the connection.
    TcpStream dying = std::move(pair.client);
    const std::string raw{reinterpret_cast<const char*>(frame.data()),
                          kFrameHeaderBytes + 2};
    ASSERT_TRUE(dying.send_raw_for(raw, kDeadline).ok());
  }
  const auto got = recv_frame_for(pair.server, 1 << 20, kDeadline);
  ASSERT_FALSE(got.ok());
  EXPECT_FALSE(is_timeout(got.error())) << got.error();
}

TEST(NetFraming, RecvSurfacesVersionSkewAsTypedError) {
  auto pair = Loopback::make();
  const auto frame =
      encode_frame_with_version(kFrameVersion + 3, bytes_of("from the future"));
  const std::string raw{reinterpret_cast<const char*>(frame.data()),
                        frame.size()};
  ASSERT_TRUE(pair.client.send_raw_for(raw, kDeadline).ok());
  const auto got = recv_frame_for(pair.server, 1 << 20, kDeadline);
  ASSERT_FALSE(got.ok());
  EXPECT_TRUE(is_version_skew(got.error())) << got.error();
  EXPECT_NE(got.error().find("v" + std::to_string(kFrameVersion + 3)),
            std::string::npos);
}

TEST(NetFraming, RecvTimesOutOnASilentPeer) {
  auto pair = Loopback::make();
  const auto got = recv_frame_for(pair.server, 1 << 20, 50ms);
  ASSERT_FALSE(got.ok());
  EXPECT_TRUE(is_timeout(got.error())) << got.error();
}

TEST(NetFraming, BackToBackFramesStayInSync) {
  auto pair = Loopback::make();
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(
        send_frame(pair.client, bytes_of("frame " + std::to_string(i)),
                   kDeadline)
            .ok());
  }
  for (int i = 0; i < 8; ++i) {
    const auto got = recv_frame_for(pair.server, 1 << 20, kDeadline);
    ASSERT_TRUE(got.ok()) << got.error();
    EXPECT_EQ(got.value(), bytes_of("frame " + std::to_string(i)));
  }
}

}  // namespace
}  // namespace gauge::net
