#include "store/docstore.hpp"

#include <gtest/gtest.h>

namespace gauge::store {
namespace {

DocStore sample_store() {
  DocStore db;
  db.insert({{"framework", "TFLite"}, {"category", "photography"}, {"flops", 1000}});
  db.insert({{"framework", "TFLite"}, {"category", "finance"}, {"flops", 2000}});
  db.insert({{"framework", "caffe"}, {"category", "photography"}, {"flops", 500}});
  db.insert({{"framework", "ncnn"}, {"category", "beauty"}, {"flops", 4000.0}});
  db.insert({{"framework", "TFLite"}, {"category", "photography"}, {"flops", 3000}});
  return db;
}

TEST(Value, TypePredicatesAndAccessors) {
  EXPECT_TRUE(Value{}.is_null());
  EXPECT_TRUE(Value{true}.is_bool());
  EXPECT_TRUE(Value{42}.is_int());
  EXPECT_TRUE(Value{3.5}.is_double());
  EXPECT_TRUE(Value{"x"}.is_string());
  EXPECT_DOUBLE_EQ(Value{42}.as_double(), 42.0);
  EXPECT_EQ(Value{42}.str(), "42");
  EXPECT_EQ(Value{"abc"}.str(), "abc");
  EXPECT_EQ(Value{true}.str(), "true");
  EXPECT_EQ(Value{}.str(), "null");
}

TEST(Value, NumericCrossTypeEquality) {
  EXPECT_TRUE(Value{2}.equals(Value{2.0}));
  EXPECT_FALSE(Value{2}.equals(Value{3}));
  EXPECT_FALSE(Value{"2"}.equals(Value{2}));
  EXPECT_TRUE(Value{1}.less(Value{1.5}));
  EXPECT_TRUE(Value{"a"}.less(Value{"b"}));
}

TEST(DocStore, InsertAndCount) {
  const DocStore db = sample_store();
  EXPECT_EQ(db.size(), 5u);
  EXPECT_EQ(db.query().count(), 5u);
}

TEST(DocStore, TermQuery) {
  const DocStore db = sample_store();
  EXPECT_EQ(db.query().where("framework", "TFLite").count(), 3u);
  EXPECT_EQ(db.query()
                .where("framework", "TFLite")
                .where("category", "photography")
                .count(),
            2u);
  EXPECT_EQ(db.query().where("framework", "PyTorch").count(), 0u);
}

TEST(DocStore, RangeQuery) {
  const DocStore db = sample_store();
  EXPECT_EQ(db.query().where_range("flops", 1000, 3000).count(), 3u);
  EXPECT_EQ(db.query().where_range("flops", std::nullopt, 999).count(), 1u);
  EXPECT_EQ(db.query().where_range("flops", 3500, std::nullopt).count(), 1u);
  EXPECT_EQ(db.query().where_range("missing", 0, 1).count(), 0u);
}

TEST(DocStore, ExistsQuery) {
  DocStore db;
  db.insert({{"a", 1}});
  db.insert({{"b", 2}});
  db.insert({{"a", Value{}}});
  EXPECT_EQ(db.query().where_exists("a").count(), 1u);
}

TEST(DocStore, GroupByCounts) {
  const DocStore db = sample_store();
  const auto rows = db.query().group_by({"framework"});
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].keys[0].str(), "TFLite");  // sorted by count desc
  EXPECT_EQ(rows[0].count, 3);
  EXPECT_EQ(rows[1].count, 1);
}

TEST(DocStore, GroupByTwoFieldsWithMetric) {
  const DocStore db = sample_store();
  const auto rows = db.query().group_by({"framework", "category"}, "flops");
  // TFLite/photography: 2 docs, sum 4000.
  bool found = false;
  for (const auto& row : rows) {
    if (row.keys[0].str() == "TFLite" && row.keys[1].str() == "photography") {
      EXPECT_EQ(row.count, 2);
      EXPECT_DOUBLE_EQ(row.sum, 4000.0);
      EXPECT_DOUBLE_EQ(row.avg(), 2000.0);
      EXPECT_DOUBLE_EQ(row.min, 1000.0);
      EXPECT_DOUBLE_EQ(row.max, 3000.0);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(DocStore, NumbersAndStrings) {
  const DocStore db = sample_store();
  const auto flops = db.query().where("framework", "TFLite").numbers("flops");
  EXPECT_EQ(flops.size(), 3u);
  const auto cats = db.query().strings("category");
  EXPECT_EQ(cats.size(), 5u);
}

TEST(Json, SerialisesAllValueKinds) {
  Document doc;
  doc["s"] = "he said \"hi\"\n";
  doc["i"] = 42;
  doc["d"] = 2.5;
  doc["b"] = true;
  doc["n"] = Value{};
  const std::string json = to_json(doc);
  EXPECT_EQ(json,
            "{\"b\": true, \"d\": 2.5, \"i\": 42, \"n\": null, "
            "\"s\": \"he said \\\"hi\\\"\\n\"}");
}

TEST(Json, EscapesControlCharacters) {
  Document doc;
  doc["x"] = std::string{"a\x01z"};
  EXPECT_EQ(to_json(doc), "{\"x\": \"a\\u0001z\"}");
}

TEST(Json, QueryToJsonlFilters) {
  const DocStore db = sample_store();
  const std::string jsonl =
      db.query().where("framework", "caffe").to_jsonl();
  EXPECT_EQ(std::count(jsonl.begin(), jsonl.end(), '\n'), 1);
  EXPECT_NE(jsonl.find("\"framework\": \"caffe\""), std::string::npos);
}

TEST(DocStore, FilteredAggregation) {
  const DocStore db = sample_store();
  const auto rows =
      db.query().where("category", "photography").group_by({"framework"});
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].keys[0].str(), "TFLite");
  EXPECT_EQ(rows[0].count, 2);
}

// Regression: group_by used to seed min/max when `row.count == 1`, i.e. on
// the group's first *document*. A group whose first document lacked the
// metric kept the default-initialised 0.0 and folded it into min/max. All
// metric samples here are positive so the phantom 0.0 is detectable.
TEST(DocStoreBugfix, MinMaxSeedOnFirstSampleNotFirstDoc) {
  DocStore db;
  db.insert({{"category", "beauty"}});  // first in group, no metric
  db.insert({{"category", "beauty"}, {"flops", 5.0}});
  db.insert({{"category", "beauty"}, {"flops", 3.0}});
  const auto rows = db.query().group_by({"category"}, "flops");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].count, 3);
  EXPECT_EQ(rows[0].samples, 2);
  EXPECT_DOUBLE_EQ(rows[0].min, 3.0);  // old code reported 0.0
  EXPECT_DOUBLE_EQ(rows[0].max, 5.0);
  EXPECT_DOUBLE_EQ(rows[0].sum, 8.0);
  EXPECT_DOUBLE_EQ(rows[0].avg(), 4.0);  // mean over samples, not docs
}

// Mirror case for max: all-negative samples after a metric-less first doc.
TEST(DocStoreBugfix, MaxSeedWithNegativeSamples) {
  DocStore db;
  db.insert({{"g", 1}});
  db.insert({{"g", 1}, {"m", -5.0}});
  db.insert({{"g", 1}, {"m", -3.0}});
  const auto rows = db.query().group_by({"g"}, "m");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_DOUBLE_EQ(rows[0].max, -3.0);  // old code reported 0.0
  EXPECT_DOUBLE_EQ(rows[0].min, -5.0);
}

// Regression: doubles used to render through %g (6 significant digits), so
// install counts 1000001 and 1000002 both printed "1e+06" — and collapsed
// into one aggregation group.
TEST(DocStoreBugfix, RoundTripDoubleFormatting) {
  EXPECT_EQ(Value{1000001.0}.str(), "1000001");
  EXPECT_EQ(Value{1000002.0}.str(), "1000002");
  EXPECT_EQ(Value{2.5}.str(), "2.5");
  EXPECT_EQ(Value{0.1}.str(), "0.1");
  EXPECT_EQ(format_double(1.0 / 3.0), "0.3333333333333333");
  Document doc;
  doc["installs"] = 1000001.0;
  EXPECT_EQ(to_json(doc), "{\"installs\": 1000001}");
}

TEST(DocStoreBugfix, DistinctLargeDoublesDoNotMergeInGroupBy) {
  DocStore db;
  db.insert({{"installs", 1000001.0}});
  db.insert({{"installs", 1000002.0}});
  const auto rows = db.query().group_by({"installs"});
  ASSERT_EQ(rows.size(), 2u);  // old formatting merged both under "1e+06"
}

TEST(DocStoreBugfix, IntAndDoubleGroupKeysStayDistinct) {
  DocStore db;
  db.insert({{"v", 1}});
  db.insert({{"v", 1.0}});
  // Group keys are type-tagged: Value{1} and Value{1.0} are separate groups…
  EXPECT_EQ(db.query().group_by({"v"}).size(), 2u);
  // …while term matching keeps numeric equality (both docs match v == 1).
  EXPECT_EQ(db.query().where("v", Value{1}).count(), 2u);
  EXPECT_EQ(db.query().where("v", Value{1.0}).count(), 2u);
}

}  // namespace
}  // namespace gauge::store
