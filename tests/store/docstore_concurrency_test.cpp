// Concurrency coverage, run under TSan by scripts/check.sh: writers ingest
// while readers take snapshots and aggregate and a compactor merges
// segments. Snapshot isolation means every reader sees a consistent prefix
// count and queries never observe a partially-built segment.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "store/docstore.hpp"

namespace gauge::store {
namespace {

TEST(DocStoreConcurrency, WritersReadersAndCompactorInterleave) {
  StoreOptions options;
  options.shards = 4;
  options.segment_target_docs = 64;
  options.compact_trigger = 4;
  DocStore db{options};

  constexpr int kWriters = 4;
  constexpr int kDocsPerWriter = 1500;
  std::atomic<bool> done{false};

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&db, w] {
      for (int i = 0; i < kDocsPerWriter; ++i) {
        db.insert({{"writer", w}, {"seq", i}, {"flops", i * 2.0}});
      }
    });
  }

  std::thread reader{[&db, &done] {
    std::size_t last = 0;
    while (!done.load(std::memory_order_acquire)) {
      const Snapshot snap = db.snapshot();
      const std::size_t size = snap.size();
      EXPECT_GE(size, last);  // snapshots only ever grow
      last = size;
      // A snapshot is internally consistent: the group counts add up to
      // exactly its size even while writers race ahead.
      std::int64_t grouped = 0;
      for (const auto& row : snap.query().group_by({"writer"})) {
        grouped += row.count;
      }
      EXPECT_EQ(static_cast<std::size_t>(grouped), size);
    }
  }};

  std::thread compactor{[&db, &done] {
    while (!done.load(std::memory_order_acquire)) {
      db.compact();
    }
  }};

  for (auto& writer : writers) writer.join();
  done.store(true, std::memory_order_release);
  reader.join();
  compactor.join();

  EXPECT_EQ(db.size(), static_cast<std::size_t>(kWriters * kDocsPerWriter));
  EXPECT_EQ(db.query().count(),
            static_cast<std::size_t>(kWriters * kDocsPerWriter));
  for (int w = 0; w < kWriters; ++w) {
    EXPECT_EQ(db.query().where("writer", Value{w}).count(),
              static_cast<std::size_t>(kDocsPerWriter));
  }
}

}  // namespace
}  // namespace gauge::store
