// Persistence coverage: CRC-framed segment files plus an atomically-written
// MANIFEST, save/load round trips across compaction, stale-file cleanup,
// and corruption rejection.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "store/docstore.hpp"
#include "util/fileio.hpp"
#include "util/rng.hpp"

namespace gauge::store {
namespace {

std::string temp_dir(const std::string& name) {
  const auto dir =
      std::filesystem::temp_directory_path() / "gaugenn_test" / name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

std::size_t segment_files(const std::string& dir) {
  std::size_t count = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".seg") ++count;
  }
  return count;
}

DocStore fragmented_store(int docs) {
  StoreOptions options;
  options.shards = 4;
  options.segment_target_docs = 32;
  options.compact_trigger = 0;
  DocStore db{options};
  util::Rng rng{7};
  for (int i = 0; i < docs; ++i) {
    db.insert({{"i", i},
               {"tag", rng.bernoulli(0.5) ? "even" : "odd"},
               {"weight", rng.uniform(0.0, 1.0)}});
  }
  return db;
}

TEST(DocStorePersist, SaveLoadRoundTripsEveryDocument) {
  const auto dir = temp_dir("roundtrip");
  DocStore db = fragmented_store(500);
  ASSERT_TRUE(db.save(dir).ok());
  EXPECT_TRUE(std::filesystem::exists(dir + "/MANIFEST"));
  EXPECT_GT(segment_files(dir), 0u);

  auto loaded = DocStore::load(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.error();
  EXPECT_EQ(loaded.value().size(), db.size());
  // Byte-identical JSONL export means every id, field and value survived.
  EXPECT_EQ(loaded.value().query().to_jsonl(), db.query().to_jsonl());
  // Aggregations agree too.
  const auto before = db.query().group_by({"tag"}, "weight");
  const auto after = loaded.value().query().group_by({"tag"}, "weight");
  ASSERT_EQ(before.size(), after.size());
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(before[i].count, after[i].count);
    EXPECT_EQ(before[i].sum, after[i].sum);
  }
}

TEST(DocStorePersist, LoadedStoreKeepsAcceptingInserts) {
  const auto dir = temp_dir("resume");
  DocStore db = fragmented_store(100);
  ASSERT_TRUE(db.save(dir).ok());
  auto loaded = DocStore::load(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.error();
  const auto id = loaded.value().insert({{"i", 100}});
  EXPECT_EQ(id, 100u);  // ids continue where the saved store stopped
  EXPECT_EQ(loaded.value().query().count(), 101u);
}

TEST(DocStorePersist, CompactionThenSaveDropsStaleSegmentFiles) {
  const auto dir = temp_dir("compaction");
  DocStore db = fragmented_store(600);
  ASSERT_TRUE(db.save(dir).ok());
  const auto fragmented = segment_files(dir);
  EXPECT_GT(db.compaction_debt(), 0u);

  db.compact();
  EXPECT_EQ(db.compaction_debt(), 0u);
  ASSERT_TRUE(db.save(dir).ok());
  // One merged segment per non-empty shard; the orphaned files are gone.
  EXPECT_LT(segment_files(dir), fragmented);
  EXPECT_EQ(segment_files(dir), db.segment_count());

  auto loaded = DocStore::load(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.error();
  EXPECT_EQ(loaded.value().query().to_jsonl(), db.query().to_jsonl());
}

TEST(DocStorePersist, CompactionPreservesQueryResults) {
  DocStore db = fragmented_store(600);
  const auto before = db.query().to_jsonl();
  const auto rows_before = db.query().group_by({"tag"}, "weight");
  db.compact();
  EXPECT_EQ(db.query().to_jsonl(), before);
  const auto rows_after = db.query().group_by({"tag"}, "weight");
  ASSERT_EQ(rows_after.size(), rows_before.size());
  for (std::size_t i = 0; i < rows_before.size(); ++i) {
    EXPECT_EQ(rows_after[i].count, rows_before[i].count);
    EXPECT_EQ(rows_after[i].sum, rows_before[i].sum);
    EXPECT_EQ(rows_after[i].min, rows_before[i].min);
    EXPECT_EQ(rows_after[i].max, rows_before[i].max);
  }
}

TEST(DocStorePersist, RejectsCorruptedSegment) {
  const auto dir = temp_dir("corrupt");
  DocStore db = fragmented_store(200);
  ASSERT_TRUE(db.save(dir).ok());

  // Flip one payload byte in some segment file; CRC framing must catch it.
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".seg") continue;
    auto bytes = util::read_text_file(entry.path().string());
    ASSERT_TRUE(bytes.ok());
    std::string mutated = bytes.value();
    mutated[mutated.size() / 2] ^= 0x40;
    std::ofstream out{entry.path(), std::ios::binary | std::ios::trunc};
    out << mutated;
    break;
  }
  const auto loaded = DocStore::load(dir);
  EXPECT_FALSE(loaded.ok());
  EXPECT_NE(loaded.error().find("CRC"), std::string::npos) << loaded.error();
}

TEST(DocStorePersist, RejectsMissingOrMalformedManifest) {
  const auto dir = temp_dir("manifest");
  EXPECT_FALSE(DocStore::load(dir).ok());
  ASSERT_TRUE(util::write_file(dir + "/MANIFEST", "not-a-docstore\n").ok());
  EXPECT_FALSE(DocStore::load(dir).ok());
  ASSERT_TRUE(
      util::write_file(dir + "/MANIFEST",
                       "gauge-docstore 1\nshards 2\nnext_id 5\n"
                       "segment 9 missing.seg 1\n")
          .ok());
  EXPECT_FALSE(DocStore::load(dir).ok());  // shard out of range
}

}  // namespace
}  // namespace gauge::store
