// Query-layer coverage for the sharded DocStore: negative matches, mixed
// int/double semantics, snapshot isolation, and — the load-bearing one —
// randomised parity between the indexed execution path and the full-scan
// reference over every query shape the store supports.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "store/docstore.hpp"
#include "util/rng.hpp"

namespace gauge::store {
namespace {

// Options that force multi-segment stores even for small corpora so the
// indexed path exercises segment skips and per-segment postings.
StoreOptions tiny_segments() {
  StoreOptions options;
  options.shards = 4;
  options.segment_target_docs = 16;
  options.compact_trigger = 0;  // keep segments fragmented
  return options;
}

TEST(DocStoreQuery, TermNegatives) {
  DocStore db;
  db.insert({{"framework", "TFLite"}, {"flops", 1000}});
  EXPECT_EQ(db.query().where("framework", "tflite").count(), 0u);  // case
  EXPECT_EQ(db.query().where("absent", "TFLite").count(), 0u);
  EXPECT_EQ(db.query().where("flops", "1000").count(), 0u);  // string != int
  EXPECT_EQ(db.query().where("framework", Value{}).count(), 0u);
  EXPECT_EQ(db.query().where("flops", Value{1000}).count(), 1u);
}

TEST(DocStoreQuery, RangeNegatives) {
  DocStore db;
  db.insert({{"name", "a"}, {"flops", 100}});
  db.insert({{"name", "b"}});
  // Range over a string field never matches.
  EXPECT_EQ(db.query().where_range("name", 0, 1000).count(), 0u);
  // Docs lacking the field never match an open range.
  EXPECT_EQ(db.query().where_range("flops", std::nullopt, std::nullopt).count(),
            1u);
  // Empty interval.
  EXPECT_EQ(db.query().where_range("flops", 200, 50).count(), 0u);
  // Bounds are inclusive.
  EXPECT_EQ(db.query().where_range("flops", 100, 100).count(), 1u);
}

TEST(DocStoreQuery, ExistsNegatives) {
  DocStore db;
  db.insert({{"a", 1}});
  db.insert({{"a", Value{}}});
  db.insert({{"b", "x"}});
  EXPECT_EQ(db.query().where_exists("a").count(), 1u);  // null is not present
  EXPECT_EQ(db.query().where_exists("c").count(), 0u);
  // Explicit null is still findable as a term.
  EXPECT_EQ(db.query().where("a", Value{}).count(), 1u);
}

TEST(DocStoreQuery, MixedIntDoubleEqualityAndOrdering) {
  DocStore db{tiny_segments()};
  db.insert({{"v", 2}});
  db.insert({{"v", 2.0}});
  db.insert({{"v", 2.5}});
  db.insert({{"v", 3}});
  EXPECT_EQ(db.query().where("v", Value{2}).count(), 2u);
  EXPECT_EQ(db.query().where("v", Value{2.0}).count(), 2u);
  EXPECT_EQ(db.query().where_range("v", 2, 2.5).count(), 3u);
  EXPECT_EQ(db.query().where_range("v", 2.1, std::nullopt).count(), 2u);
}

TEST(DocStoreQuery, IdsAreAscendingAcrossShards) {
  DocStore db{tiny_segments()};
  for (int i = 0; i < 200; ++i) db.insert({{"i", i}});
  const auto ids = db.query().ids();
  ASSERT_EQ(ids.size(), 200u);
  for (std::size_t i = 0; i < ids.size(); ++i) EXPECT_EQ(ids[i], i);
}

TEST(DocStoreSnapshot, IsolatedFromLaterInsertsAndCompaction) {
  DocStore db{tiny_segments()};
  for (int i = 0; i < 50; ++i) db.insert({{"i", i}});
  const Snapshot snap = db.snapshot();
  EXPECT_EQ(snap.size(), 50u);

  for (int i = 50; i < 100; ++i) db.insert({{"i", i}});
  db.compact();
  // The snapshot still sees exactly the first 50 documents through its own
  // (pre-compaction) segment list; the store sees all 100.
  EXPECT_EQ(snap.size(), 50u);
  EXPECT_EQ(snap.query().count(), 50u);
  EXPECT_EQ(snap.query().where_range("i", 50, std::nullopt).count(), 0u);
  EXPECT_EQ(db.query().count(), 100u);
}

TEST(DocStoreSnapshot, QueryOverStoreSnapshotsAtExecution) {
  DocStore db{tiny_segments()};
  db.insert({{"i", 1}});
  const auto query = db.query();  // bound to the store, not a snapshot
  db.insert({{"i", 2}});
  EXPECT_EQ(query.count(), 2u);
}

// ------------------------------------------------------- randomised parity

Document random_doc(util::Rng& rng) {
  static const std::vector<std::string> kCategories{
      "photography", "communication", "finance", "beauty", "tools"};
  static const std::vector<std::string> kFrameworks{"TFLite", "ncnn", "caffe",
                                                    "MNN", "ONNX"};
  Document doc;
  doc["category"] = rng.choice(kCategories);
  doc["framework"] = rng.choice(kFrameworks);
  // Mix of int and double values for the same field, including collisions
  // (int 5 vs double 5.0) and near-collisions at 6 significant digits.
  if (rng.bernoulli(0.5)) {
    doc["installs"] = rng.uniform_int(1000000, 1000015);
  } else {
    doc["installs"] = static_cast<double>(rng.uniform_int(1000000, 1000015));
  }
  if (rng.bernoulli(0.8)) {  // sometimes absent — exercises samples/min/max
    doc["flops"] = rng.uniform(0.0, 5e9);
  }
  if (rng.bernoulli(0.1)) doc["flops_null"] = Value{};
  doc["uses_ml"] = rng.bernoulli(0.3);
  return doc;
}

std::vector<Query> query_shapes(const DocStore& db) {
  std::vector<Query> shapes;
  shapes.push_back(db.query());
  shapes.push_back(db.query().where("framework", "TFLite"));
  shapes.push_back(db.query().where("uses_ml", Value{true}));
  shapes.push_back(db.query().where("installs", Value{1000003}));
  shapes.push_back(db.query().where("installs", Value{1000003.0}));
  shapes.push_back(db.query().where_range("flops", 1e9, 4e9));
  shapes.push_back(db.query().where_range("flops", std::nullopt, 2.5e9));
  shapes.push_back(db.query().where_exists("flops"));
  shapes.push_back(db.query()
                       .where("category", "photography")
                       .where_range("flops", 5e8, std::nullopt)
                       .where_exists("installs"));
  shapes.push_back(db.query()
                       .where("framework", "ncnn")
                       .where("uses_ml", Value{false}));
  return shapes;
}

void expect_rows_identical(const std::vector<AggRow>& indexed,
                           const std::vector<AggRow>& scanned) {
  ASSERT_EQ(indexed.size(), scanned.size());
  for (std::size_t i = 0; i < indexed.size(); ++i) {
    SCOPED_TRACE(i);
    ASSERT_EQ(indexed[i].keys.size(), scanned[i].keys.size());
    for (std::size_t k = 0; k < indexed[i].keys.size(); ++k) {
      EXPECT_EQ(indexed[i].keys[k].group_key(), scanned[i].keys[k].group_key());
    }
    EXPECT_EQ(indexed[i].count, scanned[i].count);
    EXPECT_EQ(indexed[i].samples, scanned[i].samples);
    // Matches aggregate in id order on both paths, so double accumulation
    // is bitwise-identical, not just close.
    EXPECT_EQ(indexed[i].sum, scanned[i].sum);
    EXPECT_EQ(indexed[i].min, scanned[i].min);
    EXPECT_EQ(indexed[i].max, scanned[i].max);
  }
}

TEST(DocStoreQuery, IndexedMatchesFullScanOnRandomisedCorpus) {
  util::Rng rng{20260809};
  DocStore db{tiny_segments()};
  for (int i = 0; i < 3000; ++i) db.insert(random_doc(rng));
  db.compact();                                   // some big segments…
  for (int i = 0; i < 500; ++i) db.insert(random_doc(rng));  // …some small

  for (auto& query : query_shapes(db)) {
    auto indexed = query;
    auto scanned = query;
    indexed.mode(ExecMode::Indexed);
    scanned.mode(ExecMode::FullScan);
    EXPECT_EQ(indexed.ids(), scanned.ids());
    EXPECT_EQ(indexed.to_jsonl(), scanned.to_jsonl());
    expect_rows_identical(indexed.group_by({"category"}, "flops"),
                          scanned.group_by({"category"}, "flops"));
    expect_rows_identical(
        indexed.group_by({"category", "framework"}, "installs"),
        scanned.group_by({"category", "framework"}, "installs"));
    expect_rows_identical(indexed.group_by({"installs"}),
                          scanned.group_by({"installs"}));
  }
}

}  // namespace
}  // namespace gauge::store
