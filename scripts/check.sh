#!/usr/bin/env bash
# Build + test gate, optionally under a sanitizer.
#
#   scripts/check.sh             # plain build, full ctest
#   scripts/check.sh address     # ASan build, full ctest
#   scripts/check.sh thread      # TSan build, full ctest
#   scripts/check.sh thread test_telemetry   # TSan, one test binary's suite
#
# Each sanitizer gets its own build tree (build-check-<san>) so switching
# sanitizers never poisons an incremental build.
set -euo pipefail
cd "$(dirname "$0")/.."

SANITIZER="${1:-}"
FILTER="${2:-}"

case "$SANITIZER" in
  ""|address|thread|undefined) ;;
  *)
    echo "usage: $0 [address|thread|undefined] [ctest -R filter]" >&2
    exit 2
    ;;
esac

BUILD_DIR="build-check${SANITIZER:+-$SANITIZER}"

cmake -B "$BUILD_DIR" -S . ${SANITIZER:+-DGAUGE_SANITIZE=$SANITIZER}
cmake --build "$BUILD_DIR" -j "$(nproc)"

CTEST_ARGS=(--output-on-failure -j "$(nproc)")
if [[ -n "$FILTER" ]]; then
  CTEST_ARGS+=(-R "$FILTER")
fi
ctest --test-dir "$BUILD_DIR" "${CTEST_ARGS[@]}"
