#!/usr/bin/env bash
# Build + test gate, optionally under a sanitizer.
#
#   scripts/check.sh             # plain build, full ctest + TSan concurrency pass
#   scripts/check.sh address     # ASan build, full ctest
#   scripts/check.sh thread      # TSan build, full ctest
#   scripts/check.sh thread test_telemetry   # TSan, one test binary's suite
#
# The plain run finishes with a crash/resume smoke (kill a crawl with the
# deterministic crash seam, resume from the journal, require a byte-identical
# digest), a serve smoke (gaugenn_serve on an ephemeral port under a short
# bench_serve burst, asserting per-model p99 SLO lines and zero errors), a
# serve chaos smoke (the same server with a kill-backend fault plan while
# bench_serve steers at the doomed lane: zero client-visible errors, tickets
# redispatched, breaker opened), a docstore smoke (pipeline slice through the sharded store: query-backed
# report tables byte-identical to the record-scan oracle, across compaction
# and a save/load round trip), a distributed crawl smoke (--workers 4 digest
# byte-identical to serial, clean and under a kill-worker fault plan), and
# a targeted ThreadSanitizer pass over the concurrency-sensitive suites: the
# telemetry hammers, the thread pool, the parallel-pipeline
# determinism/stampede tests, the harness fault-injection suite (run_fleet
# drives one master thread per port), the journal/resume/hostile-zip
# robustness suites, the serving layer (batcher, protocol, loopback
# server under concurrent clients, and the ServeFault chaos/recovery
# suites), the kernel engine's multi-threaded
# dispatch (the Kernel parity suites), the DocStore suites (writers,
# snapshot readers and a compactor interleaving on a sharded store), and
# the crawl cluster (Dist* suites via thread-launched workers, plus the
# shared NetFraming codec).
#
# Each sanitizer gets its own build tree (build-check-<san>) so switching
# sanitizers never poisons an incremental build.
set -euo pipefail
cd "$(dirname "$0")/.."

SANITIZER="${1:-}"
FILTER="${2:-}"

# ---- format-plugin layering gates ------------------------------------------
# 1. No per-framework dispatch outside the plugin layer: every
#    `switch (Framework)` / `case Framework::` belongs in
#    src/formats/plugins/ (or plugin.cpp's unsupported table).
echo "== format-plugin layering gate =="
if grep -rnE 'switch \(.*[Ff]ramework|case (formats::)?Framework::' src \
    --include='*.cpp' --include='*.hpp' \
    | grep -v '^src/formats/plugins/' \
    | grep -v '^src/formats/plugin.cpp'; then
  echo "error: per-framework switch found outside src/formats/plugins/" >&2
  exit 1
fi
# 2. Registry coverage: every Framework enum entry is either implemented as
#    a plugin (Framework::X appears under src/formats/plugins/) or listed in
#    plugin.cpp's unsupported table.
while read -r fw; do
  if ! grep -rq "Framework::$fw" src/formats/plugins/ src/formats/plugin.cpp
  then
    echo "error: Framework::$fw has neither a plugin nor an unsupported-table entry" >&2
    exit 1
  fi
done < <(sed -n '/^enum class Framework/,/^};/p' src/formats/registry.hpp \
         | grep -oE '^  [A-Z][A-Za-z0-9]+' | tr -d ' ' | grep -v '^kCount$')
echo "ok: no framework switches outside the plugin layer; enum fully covered"

# ---- kernel-engine layering gate -------------------------------------------
# Scalar MAC loops over Tensor storage (`acc += ...f32()[...]`) belong in the
# reference backend only (src/nn/kernels/reference*): everything else must go
# through the packed-panel micro-kernels so the optimised/quantised paths
# never silently regress to per-element Tensor indexing.
echo "== kernel-engine layering gate =="
if grep -rnE 'acc \+=.*(f32|i8)\(\)\[' src \
    --include='*.cpp' --include='*.hpp' \
    | grep -v '^src/nn/kernels/reference'; then
  echo "error: scalar conv/GEMM accumulation outside src/nn/kernels/reference*" >&2
  exit 1
fi
echo "ok: scalar MAC loops confined to the reference backend"

case "$SANITIZER" in
  ""|address|thread|undefined) ;;
  *)
    echo "usage: $0 [address|thread|undefined] [ctest -R filter]" >&2
    exit 2
    ;;
esac

BUILD_DIR="build-check${SANITIZER:+-$SANITIZER}"

cmake -B "$BUILD_DIR" -S . ${SANITIZER:+-DGAUGE_SANITIZE=$SANITIZER}
cmake --build "$BUILD_DIR" -j "$(nproc)"

CTEST_ARGS=(--output-on-failure -j "$(nproc)")
if [[ -n "$FILTER" ]]; then
  CTEST_ARGS+=(-R "$FILTER")
fi
ctest --test-dir "$BUILD_DIR" "${CTEST_ARGS[@]}"

if [[ -z "$FILTER" ]]; then
  # ---- kernel parity gate ----------------------------------------------------
  # The optimised/quantised kernels must agree with the scalar reference
  # backend (tests/nn/kernels_test.cpp); run the suite standalone so a parity
  # break fails loudly under every build flavour, sanitized ones included.
  echo "== kernel parity gate${SANITIZER:+ ($SANITIZER)} =="
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)" -R 'Kernel'
fi

if [[ -z "$SANITIZER" && -z "$FILTER" ]]; then
  # ---- crash/resume smoke ----------------------------------------------------
  # Kill a crawl mid-run with the deterministic crash seam, resume it from the
  # journal, and require the resumed dataset digest to match an uninterrupted
  # run. Exercises the CLI wiring end to end (journal, --resume, --digest).
  echo "== crash/resume smoke =="
  SMOKE_DIR="$(mktemp -d)"
  trap 'rm -rf "$SMOKE_DIR"' EXIT
  CLI="$BUILD_DIR/examples/gaugenn_cli"
  BASELINE="$("$CLI" --digest crawl communication | grep 'dataset digest:')"
  set +e
  "$CLI" --journal "$SMOKE_DIR/run.jnl" --crash-plan die-after-app=200 \
    crawl communication >/dev/null 2>&1
  CRASH_RC=$?
  set -e
  if [[ "$CRASH_RC" -ne 70 ]]; then
    echo "error: crash run exited $CRASH_RC, expected 70 (CrashInjected)" >&2
    exit 1
  fi
  RESUMED="$("$CLI" --journal "$SMOKE_DIR/run.jnl" --resume --digest \
    crawl communication | grep 'dataset digest:')"
  if [[ "$BASELINE" != "$RESUMED" ]]; then
    echo "error: resumed digest differs from uninterrupted run" >&2
    echo "  baseline: $BASELINE" >&2
    echo "  resumed:  $RESUMED" >&2
    exit 1
  fi
  echo "ok: resumed run is byte-identical ($RESUMED)"

  # ---- serve smoke -----------------------------------------------------------
  # Boot gaugenn_serve on an ephemeral port, replay a short store-calibrated
  # open-loop burst with bench_serve, and require a healthy SLO report:
  # per-model p99 lines present and a zero-error total line.
  echo "== serve smoke =="
  SERVE_LOG="$SMOKE_DIR/serve.log"
  "$BUILD_DIR/examples/gaugenn_serve" --batch 8 --time-scale 0.05 \
    --duration-s 45 >"$SERVE_LOG" 2>&1 &
  SERVE_PID=$!
  for _ in $(seq 50); do
    grep -q 'listening on' "$SERVE_LOG" && break
    sleep 0.2
  done
  SERVE_PORT="$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$SERVE_LOG")"
  if [[ -z "$SERVE_PORT" ]]; then
    echo "error: gaugenn_serve did not come up" >&2
    cat "$SERVE_LOG" >&2
    exit 1
  fi
  "$BUILD_DIR/bench/bench_serve" --port "$SERVE_PORT" --rates 200 \
    --duration-s 3 --conns 16 >"$SMOKE_DIR/bench_serve.out"
  grep -q '^JSON .*"achieved_ips"' "$SMOKE_DIR/bench_serve.out" || {
    echo "error: bench_serve emitted no JSON row" >&2
    cat "$SMOKE_DIR/bench_serve.out" >&2
    exit 1
  }
  kill -INT "$SERVE_PID"
  wait "$SERVE_PID"
  grep -q 'SLO model=.*p99_ms=' "$SERVE_LOG" || {
    echo "error: serve SLO report missing per-model p99 lines" >&2
    cat "$SERVE_LOG" >&2
    exit 1
  }
  grep -q 'SLO total .*errors=0' "$SERVE_LOG" || {
    echo "error: serve run recorded request errors" >&2
    cat "$SERVE_LOG" >&2
    exit 1
  }
  echo "ok: serve smoke healthy ($(grep 'SLO total' "$SERVE_LOG"))"

  # ---- serve chaos smoke -----------------------------------------------------
  # Same server, hostile conditions: a fault plan kills the XNNPACK backend
  # after its 5th batch while bench_serve steers every request at that lane.
  # Recovery must be invisible to clients — zero errors, failed batches
  # redispatched onto the CPU lane, and the availability report showing the
  # breaker opened.
  echo "== serve chaos smoke =="
  CHAOS_LOG="$SMOKE_DIR/serve_chaos.log"
  "$BUILD_DIR/examples/gaugenn_serve" --batch 8 --time-scale 0.05 \
    --fault-plan 'kill-backend=XNNPACK:5' --duration-s 45 >"$CHAOS_LOG" 2>&1 &
  CHAOS_PID=$!
  for _ in $(seq 50); do
    grep -q 'listening on' "$CHAOS_LOG" && break
    sleep 0.2
  done
  CHAOS_PORT="$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$CHAOS_LOG")"
  if [[ -z "$CHAOS_PORT" ]]; then
    echo "error: gaugenn_serve (chaos) did not come up" >&2
    cat "$CHAOS_LOG" >&2
    exit 1
  fi
  "$BUILD_DIR/bench/bench_serve" --port "$CHAOS_PORT" --rates 150 \
    --duration-s 3 --conns 16 --backend XNNPACK >"$SMOKE_DIR/bench_chaos.out"
  grep -q '^JSON .*"retried"' "$SMOKE_DIR/bench_chaos.out" || {
    echo "error: bench_serve chaos run emitted no retried field" >&2
    cat "$SMOKE_DIR/bench_chaos.out" >&2
    exit 1
  }
  kill -INT "$CHAOS_PID"
  wait "$CHAOS_PID"
  grep -q 'SLO total .*errors=0' "$CHAOS_LOG" || {
    echo "error: chaos run surfaced request errors to clients" >&2
    cat "$CHAOS_LOG" >&2
    exit 1
  }
  grep -Eq 'SLO availability .*redispatched=[1-9]' "$CHAOS_LOG" || {
    echo "error: chaos run redispatched nothing (fault plan did not bite?)" >&2
    cat "$CHAOS_LOG" >&2
    exit 1
  }
  grep -Eq 'SLO availability breaker_opens=[1-9]' "$CHAOS_LOG" || {
    echo "error: chaos run never opened the XNNPACK breaker" >&2
    cat "$CHAOS_LOG" >&2
    exit 1
  }
  echo "ok: serve chaos recovered ($(grep 'SLO availability' "$CHAOS_LOG"))"

  # ---- docstore smoke --------------------------------------------------------
  # Ingest a real pipeline slice into the sharded DocStore, then require the
  # query-backed report tables to match the record-scan oracle byte for byte
  # and to survive a compaction plus a save/load round trip unchanged
  # (bench_docstore --smoke exits non-zero on any divergence).
  echo "== docstore smoke =="
  "$BUILD_DIR/bench/bench_docstore" --smoke

  # ---- distributed crawl smoke ----------------------------------------------
  # Shard the same crawl over 4 forked worker processes and require the
  # dataset digest to match the serial baseline — clean, and again with a
  # worker killed mid-crawl by the deterministic fault seam (requeue +
  # quarantine must still converge to the identical dataset).
  echo "== distributed crawl smoke =="
  DIST="$("$CLI" --workers 4 --threads 2 --digest crawl communication \
    | grep 'dataset digest:')"
  if [[ "$BASELINE" != "$DIST" ]]; then
    echo "error: --workers 4 digest differs from serial run" >&2
    echo "  serial:      $BASELINE" >&2
    echo "  distributed: $DIST" >&2
    exit 1
  fi
  FAULTED="$("$CLI" --workers 4 --threads 2 --digest \
    --worker-fault-plan 'kill-after=1:3' crawl communication 2>/dev/null \
    | grep 'dataset digest:')"
  if [[ "$BASELINE" != "$FAULTED" ]]; then
    echo "error: kill-worker fault run digest differs from serial run" >&2
    echo "  serial:  $BASELINE" >&2
    echo "  faulted: $FAULTED" >&2
    exit 1
  fi
  echo "ok: distributed crawl is byte-identical ($DIST), kill-worker fault recovered"
fi

if [[ -z "$SANITIZER" ]]; then
  echo "== targeted ThreadSanitizer pass (telemetry + threadpool + pipeline concurrency + harness faults) =="
  TSAN_DIR="build-check-thread"
  cmake -B "$TSAN_DIR" -S . -DGAUGE_SANITIZE=thread
  cmake --build "$TSAN_DIR" -j "$(nproc)"
  ctest --test-dir "$TSAN_DIR" --output-on-failure -j "$(nproc)" \
    -R 'Metrics|Span|ThreadPool|PipelineConcurrency|AnalysisCache|HarnessFault|PipelineResume|Journal|HostileZip|Serve|ServeFault|Kernel|DocStore|Dist|NetFraming'
fi
